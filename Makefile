# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make check` is the full local gate.
#
# ruff and mypy are optional locally — `repro check` skips a tool that
# is not installed and says so (CI installs both, so nothing slips
# through). simlint and the tests need only the standard library +
# numpy/pytest.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint typecheck test test-sanitize perf perf-compare profile help

help:
	@echo "make check          - aggregate gate: simlint + ruff + mypy"
	@echo "make lint           - simlint only (dependency-free)"
	@echo "make typecheck      - strict mypy profile from pyproject.toml"
	@echo "make test           - tier-1 test suite"
	@echo "make test-sanitize  - tier-1 suite with REPRO_SIM_SANITIZE=1"
	@echo "make perf           - refresh benchmarks/perf_baseline.json"
	@echo "make perf-compare   - profile the perf figures and print the"
	@echo "                      hotspot-delta table vs the baseline"
	@echo "make profile        - self-profile a small figure (hotspots + flamegraph)"

check:
	$(PYTHON) -m repro check src tests

lint:
	$(PYTHON) -m repro lint src tests

typecheck:
	mypy --config-file pyproject.toml

test:
	$(PYTHON) -m pytest -x -q

test-sanitize:
	REPRO_SIM_SANITIZE=1 $(PYTHON) -m pytest -x -q

perf:
	$(PYTHON) -m repro perf ext-anatomy ext-lightqueue --scale 0.1 \
		--no-cache --out benchmarks/perf_baseline.json

# Informational (never fails): per-figure wall/sim-events/s deltas plus
# the top-hotspot shift against the checked-in baseline.  The hard gate
# lives in CI's perf-smoke job.
perf-compare:
	$(PYTHON) -m repro perf ext-anatomy ext-lightqueue --scale 0.1 \
		--no-cache --profile --out /tmp/BENCH_compare.json \
		--compare benchmarks/perf_baseline.json --warn-only

profile:
	$(PYTHON) -m repro profile fig14b --scale 0.1 \
		--profile-out profile.speedscope.json --collapsed profile.folded
