"""The Linux NVMe storage stack (kernel 4.14-era), as a simulation.

Models the path the paper profiles: syscall -> VFS -> blk-mq software
and hardware queues -> kernel NVMe driver -> queue pair, with three
I/O completion methods (Section II-B3):

* interrupt-driven (MSI -> ISR -> context switch back),
* polled mode (``blk_mq_poll``/``nvme_poll`` spin, Linux 4.4+),
* hybrid polling (sleep half the mean completion time, Linux 4.10+).

Plus an ext4-like file-system cost model used by the server-client NBD
experiments (Fig. 23).
"""

from repro.kstack.blkmq import Bio, BlkMq, BlkRequest, Cookie
from repro.kstack.driver import KernelNvmeDriver
from repro.kstack.completion import (
    CompletionMethod,
    HybridPollEngine,
    InterruptEngine,
    PollEngine,
    make_engine,
)
from repro.kstack.filesystem import Ext4Model, FsCosts
from repro.kstack.stack import KernelStack

__all__ = [
    "Bio",
    "BlkRequest",
    "Cookie",
    "BlkMq",
    "KernelNvmeDriver",
    "CompletionMethod",
    "InterruptEngine",
    "PollEngine",
    "HybridPollEngine",
    "make_engine",
    "Ext4Model",
    "FsCosts",
    "KernelStack",
]
