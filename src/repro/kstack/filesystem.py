"""An ext4-like file-system cost model.

Used by the server-client NBD experiments (Fig. 23), where the client's
file system *cannot* be bypassed: reads only touch cached metadata (an
atime update deferred to writeback), while writes must update inodes and
block bitmaps and push a journal commit — extra CPU work and extra block
I/Os that dilute whatever the server-side kernel bypass saves.  That
asymmetry is the paper's explanation for SPDK NBD helping reads by ~39 %
but writes by under 5 %.

The model charges CPU steps for in-memory metadata work and issues real
block I/Os (through whatever block path it is mounted on) for cold
metadata reads, metadata writeback, and journal commits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from repro.host.accounting import CpuAccounting, ExecMode
from repro.host.costs import StepCost
from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout
from repro.ssd.device import IoOp
from repro.units import Bytes


@dataclass(frozen=True)
class FsCosts:
    """ext4 path costs (CPU) and amplification policy (extra I/Os)."""

    # In-memory work.
    inode_lookup: StepCost = StepCost(ns=600, loads=110, stores=45)
    atime_update: StepCost = StepCost(ns=250, loads=35, stores=40)
    write_prepare: StepCost = StepCost(ns=1_500, loads=260, stores=210)  # alloc + bitmap/inode dirtying
    journal_memcpy: StepCost = StepCost(ns=1_800, loads=320, stores=380)

    # Extra block traffic.
    metadata_miss_prob: float = 0.02  # cold inode/extent block read
    metadata_block_bytes: int = 4096
    journal_commit_interval: int = 8  # data writes per jbd2 commit
    journal_commit_bytes: int = 16_384  # descriptor + metadata + commit blocks
    metadata_writeback_interval: int = 16  # writes per inode/bitmap writeback

    def __post_init__(self) -> None:
        if not 0.0 <= self.metadata_miss_prob < 1.0:
            raise ValueError("metadata_miss_prob must be in [0, 1)")
        if self.journal_commit_interval < 1 or self.metadata_writeback_interval < 1:
            raise ValueError("intervals must be >= 1")


class Ext4Model:
    """File-system layer over a block I/O path.

    ``block_io`` is a generator function ``(op, offset, nbytes) ->
    latency_ns`` — a :class:`~repro.kstack.stack.KernelStack.sync_io`,
    an NBD round trip, or anything with the same contract.
    """

    #: Fraction of the device reserved (at the front) for metadata and
    #: the journal, so amplification I/Os never collide with file data.
    METADATA_REGION = 0.05

    def __init__(
        self,
        sim: Simulator,
        accounting: CpuAccounting,
        block_io: Callable,
        capacity_bytes: int,
        *,
        costs: FsCosts = FsCosts(),
        seed: int = 23,
    ) -> None:
        self.sim = sim
        self.accounting = accounting
        self.block_io = block_io
        self.costs = costs
        self.capacity_bytes = capacity_bytes
        self._rng = np.random.default_rng(seed)
        self._writes_since_commit = 0
        self._writes_since_writeback = 0
        meta_bytes = int(capacity_bytes * self.METADATA_REGION)
        self._meta_blocks = max(1, meta_bytes // costs.metadata_block_bytes)
        # Statistics.
        self.journal_commits = 0
        self.metadata_reads = 0
        self.metadata_writebacks = 0

    # ------------------------------------------------------------------
    @property
    def data_base(self) -> int:
        """First byte usable for file data."""
        return self._meta_blocks * self.costs.metadata_block_bytes

    def _charge_and_wait(self, step: StepCost, function: str) -> Timeout:
        self.accounting.charge(
            step.ns,
            ExecMode.KERNEL,
            "ext4",
            function,
            loads=step.loads,
            stores=step.stores,
        )
        return self.sim.timeout(step.ns)

    def _meta_offset(self, key: int) -> int:
        block = key % self._meta_blocks
        return block * self.costs.metadata_block_bytes

    # ------------------------------------------------------------------
    def read(self, offset: Bytes, nbytes: int) -> Generator[Event, Any, int]:
        """Process: file read.  Returns application latency (ns)."""
        costs = self.costs
        started = self.sim.now
        yield self._charge_and_wait(costs.inode_lookup, "ext4_file_read_iter")
        if self._rng.random() < costs.metadata_miss_prob:
            self.metadata_reads += 1
            yield from self.block_io(
                IoOp.READ, self._meta_offset(offset), costs.metadata_block_bytes
            )
        yield from self.block_io(IoOp.READ, self.data_base + offset, nbytes)
        yield self._charge_and_wait(costs.atime_update, "ext4_update_atime")
        return self.sim.now - started

    def write(self, offset: Bytes, nbytes: int) -> Generator[Event, Any, int]:
        """Process: file write with journaling.  Returns latency (ns)."""
        costs = self.costs
        started = self.sim.now
        yield self._charge_and_wait(costs.inode_lookup, "ext4_file_write_iter")
        yield self._charge_and_wait(costs.write_prepare, "ext4_map_blocks")
        yield self._charge_and_wait(costs.journal_memcpy, "jbd2_journal_dirty")
        yield from self.block_io(IoOp.WRITE, self.data_base + offset, nbytes)
        self._writes_since_commit += 1
        self._writes_since_writeback += 1
        if self._writes_since_commit >= costs.journal_commit_interval:
            self._writes_since_commit = 0
            self.journal_commits += 1
            yield from self.block_io(
                IoOp.WRITE, self._meta_offset(self.journal_commits),
                costs.journal_commit_bytes,
            )
        if self._writes_since_writeback >= costs.metadata_writeback_interval:
            self._writes_since_writeback = 0
            self.metadata_writebacks += 1
            yield from self.block_io(
                IoOp.WRITE, self._meta_offset(offset), costs.metadata_block_bytes
            )
        return self.sim.now - started
