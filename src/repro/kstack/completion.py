"""The three I/O completion methods (paper Section II-B3, Figs. 9-16).

Each engine is a generator that runs from "command submitted" to "request
completed back through blk-mq", charging CPU time and memory instructions
to the functions the paper's profiler attributes them to.

* :class:`InterruptEngine` — the process context-switches away; the MSI
  arrives, the ISR runs, the scheduler switches back.
* :class:`PollEngine` — ``blk_mq_poll``/``nvme_poll`` spin on the CQ
  phase tag.  The spin holds the core: every
  ``resched_check_period_ns`` the poller hits a need_resched window and,
  if deferred kernel work is pending, loses ``bg_yield`` — work the
  interrupt path absorbs for free during its idle wait.  That asymmetry
  is why polling's 99.999th percentile is *worse* than interrupts
  (Fig. 11) even though its average is better.
* :class:`HybridPollEngine` — sleeps half the running mean device wait,
  then polls (the Linux 4.10+ ``io_poll_delay`` heuristic).  Device-time
  variance makes the estimate misfire: oversleeping adds the timer
  wake-up to the latency, undersleeping wastes spin — hybrid lands
  between interrupts and pure polling (Fig. 16) while still burning
  half the core (Fig. 12).
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

import numpy as np

from repro.host.accounting import CpuAccounting, ExecMode
from repro.host.costs import SoftwareCosts, StepCost
from repro.kstack.driver import DriverRequest, KernelNvmeDriver
from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout


class CompletionMethod(enum.Enum):
    """Selector used by experiment configs."""

    INTERRUPT = "interrupt"
    POLL = "poll"
    HYBRID = "hybrid"


class _EngineBase:
    """Shared plumbing: sim, cost table, profiler, seeded randomness."""

    def __init__(
        self,
        sim: Simulator,
        costs: SoftwareCosts,
        accounting: CpuAccounting,
        *,
        seed: int = 11,
    ) -> None:
        self.sim = sim
        self.costs = costs
        self.accounting = accounting
        self.rng = np.random.default_rng(seed)
        registry = sim.obs.registry
        self._m_spin_iters = registry.counter(
            "kstack.poll.spin_iters", help="CQ poll loop iterations"
        )
        self._m_spin_ns = registry.counter(
            "kstack.poll.spin_ns", unit="ns", help="time spent spinning on the CQ"
        )
        self._m_deferred_ns = registry.counter(
            "kstack.poll.deferred_work_ns",
            unit="ns",
            help="scheduler-fairness penalty absorbed by long spins",
        )
        self._m_ctx_switches = registry.counter(
            "kstack.context_switches", help="switch-away/switch-back pairs halved"
        )
        self._m_isr = registry.counter("kstack.isr_count", help="nvme_irq entries")
        self._t_poll_burn = sim.obs.telemetry.series(
            "kstack.poll.burn", "busy", unit="frac"
        )

    # ------------------------------------------------------------------
    def _charge_and_wait(
        self, step: StepCost, mode: ExecMode, module: str, function: str
    ) -> Timeout:
        """Charge one step and advance the clock by its duration."""
        self.accounting.charge(
            step.ns, mode, module, function, loads=step.loads, stores=step.stores
        )
        return self.sim.timeout(step.ns)

    def _spin_until_cqe(
        self, driver_request: DriverRequest
    ) -> Generator[Event, Any, int]:
        """Generator: spin on the CQ until the CQE lands.

        Returns the nanoseconds spent spinning.  Wall time advances to
        one poll iteration past the CQE (the iteration that observes the
        phase-tag flip), plus the scheduler-fairness penalty for spins
        that outlive the grace window: the spinning thread holds the core
        with spin locks taken, so once it exceeds a scheduling quantum it
        loses CPU share to the kernel work it displaced.  Short spins are
        free — which is why polling's *average* wins while its
        *five-nines* (dominated by long device stalls) loses (Fig. 11).
        """
        costs = self.costs
        pending = driver_request.pending
        cqe_event = pending.cqe_event
        started = self.sim.now
        if not cqe_event.triggered:
            yield cqe_event
        if pending.trace is not None:
            # CQE landed; everything from here is completion software.
            pending.trace.phase("completion_poll", pending.cqe_ns)
        detect = costs.kernel_poll_iter_ns
        yield self.sim.timeout(detect)
        spun = self.sim.now - started
        self._charge_spin(spun)
        self._m_spin_ns.inc(spun)
        self._t_poll_burn.add_interval(started, self.sim.now)
        over = spun - costs.poll_preempt_grace_ns
        if over > 0:
            penalty = int(over * costs.poll_preempt_rate)
            density = costs.bg_yield
            self.accounting.charge(
                penalty,
                ExecMode.KERNEL,
                "sched",
                "deferred_kernel_work",
                loads=int(density.loads * penalty / density.ns),
                stores=int(density.stores * penalty / density.ns),
            )
            self._m_deferred_ns.inc(penalty)
            if pending.trace is not None:
                pending.trace.annotate(
                    "deferred_kernel_work", self.sim.now, self.sim.now + penalty
                )
            yield self.sim.timeout(penalty)
        return spun

    def _charge_spin(self, spun_ns: int) -> None:
        """Attribute spin time/instructions to blk_mq_poll + nvme_poll."""
        costs = self.costs
        period = costs.kernel_poll_iter_ns
        iters = max(1, round(spun_ns / period))
        self._m_spin_iters.inc(iters)
        blk_share = costs.blk_mq_poll_iter.ns / period
        self.accounting.charge(
            int(round(spun_ns * blk_share)),
            ExecMode.KERNEL,
            "blk-mq",
            "blk_mq_poll",
            loads=iters * costs.blk_mq_poll_iter.loads,
            stores=iters * costs.blk_mq_poll_iter.stores,
        )
        self.accounting.charge(
            spun_ns - int(round(spun_ns * blk_share)),
            ExecMode.KERNEL,
            "nvme-driver",
            "nvme_poll",
            loads=iters * costs.nvme_poll_iter.loads,
            stores=iters * costs.nvme_poll_iter.stores,
        )

    def _finish(
        self, driver: KernelNvmeDriver, driver_request: DriverRequest
    ) -> Generator[Event, Any, None]:
        """Complete the request through blk-mq (poll flavors)."""
        completed = driver.nvme_poll(driver_request.blk_request.cookie)
        assert completed is not None, "poll finished before CQE?"
        yield self._charge_and_wait(
            self.costs.poll_complete,
            ExecMode.KERNEL,
            "blk-mq",
            "blk_mq_complete_request",
        )


class InterruptEngine(_EngineBase):
    """MSI-driven completion: sleep, ISR, wake."""

    method = CompletionMethod.INTERRUPT

    def complete(
        self, driver: KernelNvmeDriver, driver_request: DriverRequest
    ) -> Generator[Event, Any, None]:
        costs = self.costs
        pending = driver_request.pending
        # Switch away; the core is free for other work while the device runs.
        self._m_ctx_switches.inc()
        yield self._charge_and_wait(
            costs.context_switch_out, ExecMode.KERNEL, "sched", "context_switch"
        )
        cqe_event = pending.cqe_event
        if not cqe_event.triggered:
            yield cqe_event
        if pending.trace is not None:
            # CQE landed; MSI flight, ISR, and wake-up follow.
            pending.trace.phase("completion_isr", pending.cqe_ns)
        # MSI flight, then the ISR completes the command.
        yield self.sim.timeout(costs.irq_delivery_ns)
        self._m_isr.inc()
        yield self._charge_and_wait(
            costs.isr, ExecMode.KERNEL, "nvme-driver", "nvme_irq"
        )
        driver.complete_by_cid(driver_request.pending.command.cid)
        yield self._charge_and_wait(
            costs.context_switch_in, ExecMode.KERNEL, "sched", "context_switch"
        )
        yield self._charge_and_wait(
            costs.blkmq_complete, ExecMode.KERNEL, "blk-mq", "blk_mq_complete_request"
        )


class PollEngine(_EngineBase):
    """Pure polled mode: spin from submission to completion."""

    method = CompletionMethod.POLL

    def complete(
        self, driver: KernelNvmeDriver, driver_request: DriverRequest
    ) -> Generator[Event, Any, None]:
        yield from self._spin_until_cqe(driver_request)
        yield from self._finish(driver, driver_request)


class HybridPollEngine(_EngineBase):
    """Sleep half the mean device wait, then poll.

    The kernel tracks a mean completion time per request class; we keep
    an exponential moving average (weight 1/8, matching the flavor of the
    kernel's statistics) of the submission-to-CQE wait.
    """

    method = CompletionMethod.HYBRID

    #: EMA weight for the wait estimate.
    EMA_WEIGHT = 0.125

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._mean_wait_ns: Optional[float] = None
        #: Fraction of the estimated wait to sleep (the kernel uses 1/2;
        #: the ablation study varies it).
        self.sleep_fraction = 0.5

    @property
    def mean_wait_ns(self) -> Optional[float]:
        return self._mean_wait_ns

    def complete(
        self, driver: KernelNvmeDriver, driver_request: DriverRequest
    ) -> Generator[Event, Any, None]:
        costs = self.costs
        wait_started = self.sim.now
        cqe_event = driver_request.pending.cqe_event
        yield self._charge_and_wait(
            costs.hybrid_timer_setup, ExecMode.KERNEL, "blk-mq", "blk_mq_poll_hybrid_sleep"
        )
        sleep_ns = (
            int(self._mean_wait_ns * self.sleep_fraction)
            if self._mean_wait_ns
            else 0
        )
        if sleep_ns > 0 and not cqe_event.triggered:
            # hrtimer slack: the wake-up lands a little late, sometimes
            # past the CQE — the oversleep the paper measures.
            slack = int(self.rng.integers(0, costs.hybrid_timer_slack_ns + 1))
            slept_from = self.sim.now
            yield self.sim.timeout(sleep_ns + slack)  # core released: no charge
            if driver_request.pending.trace is not None:
                driver_request.pending.trace.annotate(
                    "hybrid_sleep", slept_from, self.sim.now
                )
            yield self._charge_and_wait(
                costs.hybrid_wakeup, ExecMode.KERNEL, "sched", "timer_wakeup"
            )
            # Poll state comes back cache-cold after the sleep.
            yield self._charge_and_wait(
                costs.hybrid_cold_detect, ExecMode.KERNEL, "blk-mq", "blk_mq_poll"
            )
        if cqe_event.triggered:
            # Overslept: the CQE beat us; pay one observing iteration.
            if driver_request.pending.trace is not None:
                driver_request.pending.trace.phase(
                    "completion_poll", driver_request.pending.cqe_ns
                )
            detect = costs.kernel_poll_iter_ns
            yield self.sim.timeout(detect)
            self._charge_spin(detect)
            self._t_poll_burn.add_interval(self.sim.now - detect, self.sim.now)
        else:
            yield from self._spin_until_cqe(driver_request)
        self._update_mean(driver_request, wait_started)
        yield from self._finish(driver, driver_request)

    def _update_mean(self, driver_request: DriverRequest, wait_started: int) -> None:
        cqe_ns = driver_request.pending.cqe_ns
        observed = (cqe_ns if cqe_ns is not None else self.sim.now) - wait_started
        if self._mean_wait_ns is None:
            self._mean_wait_ns = float(observed)
        else:
            self._mean_wait_ns += self.EMA_WEIGHT * (observed - self._mean_wait_ns)


def make_engine(
    method: CompletionMethod,
    sim: Simulator,
    costs: SoftwareCosts,
    accounting: CpuAccounting,
    *,
    seed: int = 11,
) -> _EngineBase:
    """Build the completion engine for ``method``."""
    engines = {
        CompletionMethod.INTERRUPT: InterruptEngine,
        CompletionMethod.POLL: PollEngine,
        CompletionMethod.HYBRID: HybridPollEngine,
    }
    return engines[method](sim, costs, accounting, seed=seed)
