"""The kernel NVMe driver: submission and ``nvme_poll``.

Binds a blk-mq hardware queue to an NVMe queue pair.  ``submit`` turns a
tagged block request into an SQE; ``nvme_poll`` is the literal CQ check
the kernel's polled mode iterates — it peeks the completion queue's
head entry and compares the phase tag (Section II-B3).

The completion *engines* charge the CPU/instruction cost of calling
these functions; the driver itself is the functional substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.kstack.blkmq import BlkMq, BlkRequest, Cookie
from repro.nvme.controller import NvmeQueuePair, PendingCommand
from repro.ssd.device import IoOp
from repro.units import Bytes

if TYPE_CHECKING:
    from repro.obs.tracer import IoTrace


@dataclass
class DriverRequest:
    """Book-keeping tying a blk-mq request to its NVMe command."""

    blk_request: BlkRequest
    pending: PendingCommand


class KernelNvmeDriver:
    """One hardware-queue <-> queue-pair binding."""

    def __init__(self, blkmq: BlkMq, qpair: NvmeQueuePair) -> None:
        self.blkmq = blkmq
        self.qpair = qpair
        self._by_cookie: Dict[Cookie, DriverRequest] = {}
        self._by_cid: Dict[int, Cookie] = {}
        index = getattr(qpair, "index", 0)
        self._t_inflight = qpair.sim.obs.telemetry.series(
            f"kstack.hwq{index}.inflight", "level", unit="reqs"
        )

    @property
    def outstanding(self) -> int:
        return len(self._by_cookie)

    # ------------------------------------------------------------------
    def submit(self, cpu: int, op: IoOp, offset: Bytes, nbytes: int, *,
               hipri: bool = False, now_ns: int = 0,
               trace: "Optional[IoTrace]" = None) -> DriverRequest:
        """Stage a bio through blk-mq and issue the NVMe command."""
        from repro.kstack.blkmq import Bio, BioDirection

        bio = Bio(
            direction=BioDirection.from_op(op),
            offset=offset,
            nbytes=nbytes,
            hipri=hipri,
        )
        blk_request = self.blkmq.submit_bio(cpu, bio, now_ns)
        pending = self.qpair.submit(op, offset, nbytes, trace=trace)
        request = DriverRequest(blk_request=blk_request, pending=pending)
        self._by_cookie[blk_request.cookie] = request
        self._by_cid[pending.command.cid] = blk_request.cookie
        self._t_inflight.record(self.qpair.sim.now, len(self._by_cookie))
        return request

    # ------------------------------------------------------------------
    def nvme_poll(self, cookie: Cookie) -> Optional[DriverRequest]:
        """One CQ check: is the request behind ``cookie`` complete?

        Mirrors the kernel function: load the CQ head entry, compare the
        phase tag, and if it is ours, complete the request through
        blk-mq.  Returns the completed request or ``None``.
        """
        request = self._by_cookie.get(cookie)
        if request is None:
            raise KeyError(f"unknown cookie {cookie}")
        if not request.pending.cqe_event.triggered:
            return None
        return self._complete(cookie)

    def complete_by_cid(self, cid: int) -> DriverRequest:
        """ISR path: MSI names the queue; the CQE names the command."""
        cookie = self._by_cid.get(cid)
        if cookie is None:
            raise KeyError(f"no outstanding command with cid {cid}")
        return self._complete(cookie)

    def _complete(self, cookie: Cookie) -> DriverRequest:
        request = self._by_cookie.pop(cookie)
        cid = request.pending.command.cid
        # Shallow queues recycle cids; only drop the mapping if it still
        # points at this request's cookie.
        if self._by_cid.get(cid) == cookie:
            del self._by_cid[cid]
        self.blkmq.complete(cookie)
        self._t_inflight.record(self.qpair.sim.now, len(self._by_cookie))
        return request
