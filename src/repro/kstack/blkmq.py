"""blk-mq: the multi-queue block layer (Section II-B1).

Structure follows Bjorling et al. [11]: a *software queue* per CPU core
accepts file-system ``bio`` requests; *hardware queues* map one-to-one
onto the NVMe driver's queue pairs.  Submission returns a *cookie*
identifying the hardware queue and tag, which ``blk_mq_poll`` later uses
to find the completion queue to spin on.

The timing of these steps is charged by the stack layer; this module is
the structural substrate (queues, tags, cookies) that the driver and
completion engines operate on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ssd.device import IoOp


class BioDirection(enum.Enum):
    READ = "read"
    WRITE = "write"

    @classmethod
    def from_op(cls, op: IoOp) -> "BioDirection":
        return cls.READ if op is IoOp.READ else cls.WRITE


@dataclass(frozen=True)
class Bio:
    """A file-system block request (struct bio)."""

    direction: BioDirection
    offset: int
    nbytes: int
    hipri: bool = False  # high-priority flag set for polled I/O

    def __post_init__(self) -> None:
        if self.offset < 0 or self.nbytes <= 0:
            raise ValueError("bio must cover a positive byte range")


@dataclass(frozen=True)
class Cookie:
    """Returned at submission; identifies where to poll (hw queue, tag)."""

    hw_queue: int
    tag: int


@dataclass
class BlkRequest:
    """A bio after it has been tagged into a hardware queue."""

    bio: Bio
    cookie: Cookie
    submit_ns: int
    completed: bool = False


class SoftwareQueue:
    """Per-CPU staging queue (struct blk_mq_ctx)."""

    def __init__(self, cpu: int) -> None:
        self.cpu = cpu
        self.queued = 0  # lifetime count; requests pass straight through

    def enqueue(self, bio: Bio) -> Bio:
        self.queued += 1
        return bio


class HardwareQueue:
    """Dispatch queue mapped to one NVMe queue pair (struct blk_mq_hw_ctx)."""

    def __init__(self, index: int, tag_count: int) -> None:
        if tag_count < 1:
            raise ValueError("need at least one tag")
        self.index = index
        self.tag_count = tag_count
        self._free_tags: List[int] = list(range(tag_count))
        self.inflight: Dict[int, BlkRequest] = {}

    @property
    def has_free_tag(self) -> bool:
        return bool(self._free_tags)

    def allocate(self, bio: Bio, now_ns: int) -> BlkRequest:
        if not self._free_tags:
            raise RuntimeError(f"hardware queue {self.index} out of tags")
        tag = self._free_tags.pop()
        request = BlkRequest(
            bio=bio, cookie=Cookie(hw_queue=self.index, tag=tag), submit_ns=now_ns
        )
        self.inflight[tag] = request
        return request

    def complete(self, tag: int) -> BlkRequest:
        request = self.inflight.pop(tag, None)
        if request is None:
            raise KeyError(f"no in-flight request with tag {tag}")
        request.completed = True
        self._free_tags.append(tag)
        return request


class BlkMq:
    """The multi-queue block layer: software queues x hardware queues."""

    def __init__(self, *, cpus: int = 1, hw_queues: int = 1, tags_per_queue: int = 1024) -> None:
        if cpus < 1 or hw_queues < 1:
            raise ValueError("need at least one CPU and one hardware queue")
        self.software_queues = [SoftwareQueue(cpu) for cpu in range(cpus)]
        self.hardware_queues = [
            HardwareQueue(index, tags_per_queue) for index in range(hw_queues)
        ]

    def map_queue(self, cpu: int) -> HardwareQueue:
        """CPU -> hardware queue mapping (round-robin like blk_mq_map_queue)."""
        if not 0 <= cpu < len(self.software_queues):
            raise ValueError(f"cpu out of range: {cpu}")
        return self.hardware_queues[cpu % len(self.hardware_queues)]

    def submit_bio(self, cpu: int, bio: Bio, now_ns: int) -> BlkRequest:
        """The blk_mq_make_request path: stage, tag, dispatch."""
        self.software_queues[cpu].enqueue(bio)
        return self.map_queue(cpu).allocate(bio, now_ns)

    def complete(self, cookie: Cookie) -> BlkRequest:
        return self.hardware_queues[cookie.hw_queue].complete(cookie.tag)

    def request_of(self, cookie: Cookie) -> Optional[BlkRequest]:
        return self.hardware_queues[cookie.hw_queue].inflight.get(cookie.tag)
