"""The kernel storage stack facade.

Assembles blk-mq, the kernel NVMe driver, a queue pair, and a completion
engine into the object workload engines drive.  ``sync_io`` is the
pvsync2 path the paper uses for completion-method studies; the async
(libaio) path reuses the same submission plumbing through
:meth:`submit_async` with batched-amortized costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional, Tuple

from repro.host.accounting import CpuAccounting, ExecMode
from repro.host.costs import DEFAULT_COSTS, SoftwareCosts, StepCost
from repro.kstack.blkmq import BlkMq
from repro.kstack.completion import CompletionMethod, make_engine
from repro.kstack.driver import DriverRequest, KernelNvmeDriver
from repro.nvme.controller import NvmeController, NvmeQueuePair, NvmeTimings
from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout
from repro.ssd.device import IoOp, SsdDevice
from repro.units import Bytes

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.obs.tracer import IoTrace


class KernelStack:
    """Syscall-to-doorbell kernel I/O path over one queue pair."""

    def __init__(
        self,
        sim: Simulator,
        device: SsdDevice,
        *,
        completion: CompletionMethod = CompletionMethod.INTERRUPT,
        costs: Optional[SoftwareCosts] = None,
        accounting: Optional[CpuAccounting] = None,
        queue_depth: int = 1024,
        nvme_timings: Optional[NvmeTimings] = None,
        qpair: Optional[NvmeQueuePair] = None,
        thin_submit: bool = False,
        seed: int = 11,
        faults: "Optional[FaultPlan]" = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.costs = costs or DEFAULT_COSTS
        self.accounting = accounting or CpuAccounting()
        self.completion_method = completion
        self.thin_submit = thin_submit
        if qpair is None:
            controller = NvmeController(
                sim, device, timings=nvme_timings, faults=faults
            )
            qpair = controller.create_queue_pair(
                depth=queue_depth,
                interrupts_enabled=(completion is CompletionMethod.INTERRUPT),
            )
        self.qpair = qpair
        # Fault injection (repro.faults): BLK_STS_RESOURCE requeues.
        self._requeue_faults = (
            faults.injector("kstack") if faults is not None else None
        )
        self.requeues = 0
        if self._requeue_faults is not None:
            registry = sim.obs.registry
            self._m_requeues = registry.counter(
                "faults.kstack.requeues",
                help="injected blk-mq dispatch requeues",
            )
            self._m_backoff = registry.counter(
                "faults.kstack.backoff_ns",
                unit="ns",
                help="time spent in requeue backoff",
            )
        self._t_fault_recovery = sim.obs.telemetry.series(
            "faults.kstack.recovery", "busy", unit="frac"
        )
        self.blkmq = BlkMq(cpus=1, hw_queues=1, tags_per_queue=queue_depth)
        self.driver = KernelNvmeDriver(self.blkmq, self.qpair)
        self.engine = make_engine(
            completion, sim, self.costs, self.accounting, seed=seed
        )
        #: When set to a list, sync_io appends per-I/O stage timestamps
        #: ``(start, submitted, cqe, done)`` — the latency-anatomy probe.
        self.stage_log: Optional[List[Tuple[int, int, int, int]]] = None

    # ------------------------------------------------------------------
    @property
    def hipri(self) -> bool:
        """Polled submissions carry the high-priority flag."""
        return self.completion_method is not CompletionMethod.INTERRUPT

    def _charge_and_wait(
        self, step: StepCost, mode: ExecMode, module: str, function: str
    ) -> Timeout:
        self.accounting.charge(
            step.ns, mode, module, function, loads=step.loads, stores=step.stores
        )
        return self.sim.timeout(step.ns)

    # ------------------------------------------------------------------
    def sync_io(
        self, op: IoOp, offset: Bytes, nbytes: int
    ) -> Generator[Event, Any, int]:
        """Process: one synchronous (pvsync2-style) I/O.

        Returns the application-observed latency in nanoseconds.
        """
        costs = self.costs
        started = self.sim.now
        tracer = self.sim.obs.tracer
        ctx = (
            tracer.begin_io(op, offset, nbytes, started)
            if tracer.enabled
            else None
        )
        if ctx is not None:
            ctx.phase("submit", started)
        yield self._charge_and_wait(costs.user_io_prep, ExecMode.USER, "fio", "fio_rw")
        yield from self._submit_path(op, offset, nbytes, ctx)
        request = self.driver.submit(
            0, op, offset, nbytes, hipri=self.hipri, now_ns=self.sim.now, trace=ctx
        )
        submitted = self.sim.now
        yield from self.engine.complete(self.driver, request)
        yield self._charge_and_wait(
            costs.syscall_exit, ExecMode.KERNEL, "vfs", "syscall"
        )
        if self.stage_log is not None:
            self.stage_log.append(
                (started, submitted, request.pending.cqe_ns, self.sim.now)
            )
        if ctx is not None:
            ctx.finish(self.sim.now)
        return self.sim.now - started

    def _submit_path(
        self,
        op: IoOp,
        offset: int,
        nbytes: int,
        ctx: "Optional[IoTrace]" = None,
    ) -> Generator[Event, Any, None]:
        costs = self.costs
        yield self._charge_and_wait(
            costs.syscall_entry, ExecMode.KERNEL, "vfs", "syscall"
        )
        yield self._charge_and_wait(costs.vfs_submit, ExecMode.KERNEL, "vfs", "vfs_rw")
        if self.thin_submit:
            # Lightweight-protocol dispatch: no blk-mq tag machinery, no
            # SQE build — the driver latches the command into device
            # registers directly (Section IV-C's "lighter queue").
            if ctx is not None:
                ctx.phase("light_queue", self.sim.now)
            yield self._charge_and_wait(
                costs.light_queue_dispatch,
                ExecMode.KERNEL,
                "nvme-driver",
                "light_queue_issue",
            )
            return
        if ctx is not None:
            ctx.phase("blkmq_queue", self.sim.now)
        yield self._charge_and_wait(
            costs.blkmq_submit, ExecMode.KERNEL, "blk-mq", "blk_mq_make_request"
        )
        if self._requeue_faults is not None:
            yield from self._maybe_requeue(ctx)
        yield self._charge_and_wait(
            costs.nvme_driver_submit, ExecMode.KERNEL, "nvme-driver", "nvme_queue_rq"
        )
        yield self._charge_and_wait(
            costs.doorbell_write, ExecMode.KERNEL, "nvme-driver", "doorbell_write"
        )

    def _maybe_requeue(
        self, ctx: "Optional[IoTrace]" = None
    ) -> Generator[Event, Any, None]:
        """Process: injected ``BLK_STS_RESOURCE`` dispatch failures.

        Each failed dispatch requeues the request with exponential
        backoff (doubling from ``backoff_base_ns``, capped at
        ``backoff_max_ns``); after ``max_requeues`` attempts dispatch
        is forced through.  The requeue kworker's CPU time is charged
        to blk-mq.
        """
        fi = self._requeue_faults
        costs = self.costs
        attempt = 0
        while attempt < fi.spec.max_requeues and fi.roll(fi.spec.requeue_prob):
            delay = min(
                fi.spec.backoff_max_ns, fi.spec.backoff_base_ns << attempt
            )
            attempt += 1
            self.requeues += 1
            self._m_requeues.inc()
            self._m_backoff.inc(delay)
            start = self.sim.now
            self._t_fault_recovery.add_interval(start, start + delay)
            if ctx is not None:
                ctx.annotate(
                    "blkmq_requeue", start, start + delay, attempt=attempt
                )
                ctx.wait("kstack.hwq0", "requeue_backoff", start, start + delay)
            tracer = self.sim.obs.tracer
            if tracer.enabled:
                tracer.span(
                    "faults", "blkmq_requeue", start, start + delay,
                    attempt=attempt,
                )
            self.accounting.charge(
                costs.blkmq_submit.ns,
                ExecMode.KERNEL,
                "blk-mq",
                "blk_mq_requeue_work",
                loads=costs.blkmq_submit.loads,
                stores=costs.blkmq_submit.stores,
            )
            yield self.sim.timeout(delay)

    # ------------------------------------------------------------------
    def submit_async(
        self, op: IoOp, offset: Bytes, nbytes: int
    ) -> Generator[Event, Any, DriverRequest]:
        """Process: queue one libaio I/O (batched io_submit, amortized).

        Returns the :class:`DriverRequest`; the caller observes
        ``request.pending.cqe_event`` and applies the interrupt-side
        completion costs through :meth:`async_completion_ns`.
        """
        costs = self.costs
        tracer = self.sim.obs.tracer
        ctx = (
            tracer.begin_io(op, offset, nbytes, self.sim.now)
            if tracer.enabled
            else None
        )
        if ctx is not None:
            ctx.phase("submit", self.sim.now)
        yield self._charge_and_wait(
            costs.async_submit_user, ExecMode.USER, "fio", "io_submit"
        )
        if ctx is not None:
            ctx.phase("blkmq_queue", self.sim.now)
        yield self._charge_and_wait(
            costs.async_submit_kernel, ExecMode.KERNEL, "blk-mq", "aio_submit_path"
        )
        if self._requeue_faults is not None:
            yield from self._maybe_requeue(ctx)
        request = self.driver.submit(
            0, op, offset, nbytes, hipri=False, now_ns=self.sim.now, trace=ctx
        )
        return request

    def async_completion_ns(self) -> int:
        """Charge and return the CQE-to-application completion delay for
        the interrupt-driven async path (MSI + ISR + io_getevents)."""
        costs = self.costs
        self.accounting.charge(
            costs.async_complete_kernel.ns,
            ExecMode.KERNEL,
            "nvme-driver",
            "nvme_irq",
            loads=costs.async_complete_kernel.loads,
            stores=costs.async_complete_kernel.stores,
        )
        self.accounting.charge(
            costs.user_async_reap.ns,
            ExecMode.USER,
            "fio",
            "io_getevents",
            loads=costs.user_async_reap.loads,
            stores=costs.user_async_reap.stores,
        )
        return (
            costs.irq_delivery_ns
            + costs.async_complete_kernel.ns
            + costs.user_async_reap.ns
        )

    def complete_async(self, request: DriverRequest) -> None:
        """Release blk-mq/driver state for an async request."""
        completed = self.driver.nvme_poll(request.blk_request.cookie)
        assert completed is request
