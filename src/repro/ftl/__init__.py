"""Flash translation layer.

A page-mapped FTL with per-die block allocation, greedy garbage
collection, and a bad-block remap checker (the super-channel remap engine
of paper Section II-A2).  The FTL operates on *mapping units* — host-
visible 4 KB pages — independent of the physical flash page size; the SSD
controller translates a unit into the right physical operations
(super-channel striping for Z-NAND, page coalescing for 16 KB-page MLC).
"""

from repro.ftl.layout import FtlLayout
from repro.ftl.mapping import MappingTable, PageState
from repro.ftl.allocator import BlockAllocator, OutOfSpace, WriteStream
from repro.ftl.gc import CostBenefitVictimPolicy, GreedyVictimPolicy
from repro.ftl.badblocks import BadBlockTable, RemapChecker
from repro.ftl.core import PageMappedFtl, WritePlacement
from repro.ftl.wear import WearSummary, WearTracker

__all__ = [
    "FtlLayout",
    "MappingTable",
    "PageState",
    "BlockAllocator",
    "OutOfSpace",
    "WriteStream",
    "GreedyVictimPolicy",
    "CostBenefitVictimPolicy",
    "BadBlockTable",
    "RemapChecker",
    "PageMappedFtl",
    "WritePlacement",
    "WearTracker",
    "WearSummary",
]
