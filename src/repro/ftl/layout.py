"""The FTL's view of the flash array: dies x blocks x unit pages.

The FTL does not care about channels, planes, or the physical page size;
it allocates *mapping units* (host 4 KB pages) out of blocks that belong
to dies.  The SSD controller decides how a unit maps onto physical flash
operations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FtlLayout:
    """Flat description of the space the FTL manages."""

    dies: int
    blocks_per_die: int
    pages_per_block: int  # mapping units per block
    unit_size: int = 4096  # bytes per mapping unit

    def __post_init__(self) -> None:
        for field in ("dies", "blocks_per_die", "pages_per_block", "unit_size"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")

    @property
    def total_blocks(self) -> int:
        return self.dies * self.blocks_per_die

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.unit_size

    def die_of_block(self, block: int) -> int:
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block out of range: {block}")
        return block // self.blocks_per_die

    def die_of_page(self, ppa: int) -> int:
        return self.die_of_block(self.block_of_page(ppa))

    def block_of_page(self, ppa: int) -> int:
        if not 0 <= ppa < self.total_pages:
            raise ValueError(f"page out of range: {ppa}")
        return ppa // self.pages_per_block

    def first_page_of_block(self, block: int) -> int:
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block out of range: {block}")
        return block * self.pages_per_block

    def blocks_of_die(self, die: int) -> range:
        if not 0 <= die < self.dies:
            raise ValueError(f"die out of range: {die}")
        first = die * self.blocks_per_die
        return range(first, first + self.blocks_per_die)
