"""The FTL's view of the flash array: dies x blocks x unit pages.

The FTL does not care about channels, planes, or the physical page size;
it allocates *mapping units* (host 4 KB pages) out of blocks that belong
to dies.  The SSD controller decides how a unit maps onto physical flash
operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FtlLayout:
    """Flat description of the space the FTL manages.

    The derived sizes (``total_blocks``, ``total_pages``,
    ``capacity_bytes``) are precomputed once at construction — they sit
    on the mapping/allocator hot paths, where recomputing them per call
    measurably costs (see docs/sim-engine.md on the slot-cache layer).
    """

    dies: int
    blocks_per_die: int
    pages_per_block: int  # mapping units per block
    unit_size: int = 4096  # bytes per mapping unit

    # Derived, filled in by __post_init__; excluded from init/eq/repr
    # so the dataclass surface is unchanged from when these were
    # recomputed-per-call properties.
    total_blocks: int = field(init=False, repr=False, compare=False, default=0)
    total_pages: int = field(init=False, repr=False, compare=False, default=0)
    capacity_bytes: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        for field in ("dies", "blocks_per_die", "pages_per_block", "unit_size"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")
        total_blocks = self.dies * self.blocks_per_die
        total_pages = total_blocks * self.pages_per_block
        object.__setattr__(self, "total_blocks", total_blocks)
        object.__setattr__(self, "total_pages", total_pages)
        object.__setattr__(self, "capacity_bytes", total_pages * self.unit_size)

    def die_of_block(self, block: int) -> int:
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block out of range: {block}")
        return block // self.blocks_per_die

    def die_of_page(self, ppa: int) -> int:
        return self.die_of_block(self.block_of_page(ppa))

    def block_of_page(self, ppa: int) -> int:
        if not 0 <= ppa < self.total_pages:
            raise ValueError(f"page out of range: {ppa}")
        return ppa // self.pages_per_block

    def first_page_of_block(self, block: int) -> int:
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block out of range: {block}")
        return block * self.pages_per_block

    def blocks_of_die(self, die: int) -> range:
        if not 0 <= die < self.dies:
            raise ValueError(f"die out of range: {die}")
        first = die * self.blocks_per_die
        return range(first, first + self.blocks_per_die)
