"""Logical-to-physical page mapping state.

The table keeps the forward map (LPN -> PPA), the reverse map
(PPA -> LPN, needed by garbage collection to find whose data lives in a
victim block), the per-page state, and per-block valid-page counts.

Invariants (exercised by the property tests):

* ``l2p[lpn] == ppa`` implies ``p2l[ppa] == lpn`` and ``state[ppa] == VALID``;
* a block's valid count equals the number of its pages in state VALID;
* at most one PPA is VALID for any LPN.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.ftl.layout import FtlLayout

UNMAPPED = -1


class PageState(enum.IntEnum):
    """Lifecycle of a physical page between erases."""

    FREE = 0
    VALID = 1
    INVALID = 2


class MappingTable:
    """Page-level mapping with reverse map and valid counters."""

    def __init__(self, layout: FtlLayout, logical_pages: int) -> None:
        if logical_pages < 1:
            raise ValueError("logical_pages must be >= 1")
        if logical_pages > layout.total_pages:
            raise ValueError(
                "logical space cannot exceed physical space "
                f"({logical_pages} > {layout.total_pages})"
            )
        self.layout = layout
        self.logical_pages = logical_pages
        self._l2p = np.full(logical_pages, UNMAPPED, dtype=np.int64)
        self._p2l = np.full(layout.total_pages, UNMAPPED, dtype=np.int64)
        self._state = np.full(layout.total_pages, PageState.FREE, dtype=np.int8)
        self._valid_per_block = np.zeros(layout.total_blocks, dtype=np.int32)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lookup(self, lpn: int) -> int:
        """PPA holding ``lpn``'s data, or ``UNMAPPED`` if never written."""
        self._check_lpn(lpn)
        return int(self._l2p[lpn])

    def owner(self, ppa: int) -> int:
        """LPN whose data is at ``ppa``, or ``UNMAPPED``."""
        return int(self._p2l[ppa])

    def state(self, ppa: int) -> PageState:
        return PageState(self._state[ppa])

    def valid_count(self, block: int) -> int:
        return int(self._valid_per_block[block])

    def valid_counts(self) -> np.ndarray:
        """Per-block valid-page counts (a view; do not mutate)."""
        return self._valid_per_block

    def valid_lpns_in_block(self, block: int) -> list:
        """LPNs whose current data lives in ``block`` (GC migration set)."""
        first = self.layout.first_page_of_block(block)
        pages = slice(first, first + self.layout.pages_per_block)
        owners = self._p2l[pages]
        states = self._state[pages]
        return [int(lpn) for lpn, st in zip(owners, states) if st == PageState.VALID]

    @property
    def mapped_lpn_count(self) -> int:
        return int(np.count_nonzero(self._l2p != UNMAPPED))

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def bind(self, lpn: int, ppa: int) -> int:
        """Point ``lpn`` at freshly-programmed ``ppa``.

        Returns the previous PPA (now invalidated) or ``UNMAPPED``.
        """
        self._check_lpn(lpn)
        if self._state[ppa] != PageState.FREE:
            raise ValueError(f"cannot bind to non-free page {ppa}")
        previous = int(self._l2p[lpn])
        if previous != UNMAPPED:
            self._invalidate(previous)
        self._l2p[lpn] = ppa
        self._p2l[ppa] = lpn
        self._state[ppa] = PageState.VALID
        self._valid_per_block[self.layout.block_of_page(ppa)] += 1
        return previous

    def trim(self, lpn: int) -> int:
        """Discard ``lpn``'s mapping (TRIM); returns the freed PPA."""
        self._check_lpn(lpn)
        previous = int(self._l2p[lpn])
        if previous != UNMAPPED:
            self._invalidate(previous)
            self._l2p[lpn] = UNMAPPED
        return previous

    def erase_block(self, block: int) -> None:
        """Reset a block's pages to FREE.  All pages must be non-valid."""
        if self._valid_per_block[block] != 0:
            raise ValueError(
                f"block {block} still has {self._valid_per_block[block]} "
                "valid pages; migrate before erasing"
            )
        first = self.layout.first_page_of_block(block)
        pages = slice(first, first + self.layout.pages_per_block)
        self._p2l[pages] = UNMAPPED
        self._state[pages] = PageState.FREE

    def _invalidate(self, ppa: int) -> None:
        if self._state[ppa] != PageState.VALID:
            raise ValueError(f"page {ppa} is not valid")
        self._state[ppa] = PageState.INVALID
        self._p2l[ppa] = UNMAPPED
        self._valid_per_block[self.layout.block_of_page(ppa)] -= 1

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"logical page out of range: {lpn}")

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify the structural invariants (used by property tests)."""
        layout = self.layout
        valid = np.zeros(layout.total_blocks, dtype=np.int32)
        for ppa in range(layout.total_pages):
            state = self._state[ppa]
            lpn = self._p2l[ppa]
            if state == PageState.VALID:
                if lpn == UNMAPPED or self._l2p[lpn] != ppa:
                    raise AssertionError(f"broken forward/reverse map at ppa {ppa}")
                valid[layout.block_of_page(ppa)] += 1
            elif lpn != UNMAPPED:
                raise AssertionError(f"non-valid page {ppa} has an owner")
        if not np.array_equal(valid, self._valid_per_block):
            raise AssertionError("valid-per-block counters out of sync")
