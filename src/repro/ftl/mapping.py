"""Logical-to-physical page mapping state.

The table keeps the forward map (LPN -> PPA), the reverse map
(PPA -> LPN, needed by garbage collection to find whose data lives in a
victim block), the per-page state, and per-block valid-page counts.

Invariants (exercised by the property tests):

* ``l2p[lpn] == ppa`` implies ``p2l[ppa] == lpn`` and ``state[ppa] == VALID``;
* a block's valid count equals the number of its pages in state VALID;
* at most one PPA is VALID for any LPN.

Storage is plain Python lists rather than numpy arrays: every access on
the write path is a *scalar* index, where list indexing is several times
cheaper than ``ndarray.__getitem__`` plus the ``int()`` unboxing it
forces (numpy earns its keep on vector operations, which this table
never performs).  The hot paths also compare states against plain int
constants — ``PageState`` stays the public vocabulary, but enum
``__eq__``/``__hash__`` are off the per-write path.
"""

from __future__ import annotations

import enum
from typing import List

from repro.ftl.layout import FtlLayout

UNMAPPED = -1


class PageState(enum.IntEnum):
    """Lifecycle of a physical page between erases."""

    FREE = 0
    VALID = 1
    INVALID = 2


# Int twins of PageState for the hot paths (enum comparison costs a
# __getattr__ plus rich-compare per use; these are plain ints).
_FREE = int(PageState.FREE)
_VALID = int(PageState.VALID)
_INVALID = int(PageState.INVALID)


class MappingTable:
    """Page-level mapping with reverse map and valid counters."""

    def __init__(self, layout: FtlLayout, logical_pages: int) -> None:
        if logical_pages < 1:
            raise ValueError("logical_pages must be >= 1")
        if logical_pages > layout.total_pages:
            raise ValueError(
                "logical space cannot exceed physical space "
                f"({logical_pages} > {layout.total_pages})"
            )
        self.layout = layout
        self.logical_pages = logical_pages
        self._pages_per_block = layout.pages_per_block
        self._total_pages = layout.total_pages
        self._l2p: List[int] = [UNMAPPED] * logical_pages
        self._p2l: List[int] = [UNMAPPED] * layout.total_pages
        self._state: List[int] = [_FREE] * layout.total_pages
        self._valid_per_block: List[int] = [0] * layout.total_blocks
        self._mapped = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lookup(self, lpn: int) -> int:
        """PPA holding ``lpn``'s data, or ``UNMAPPED`` if never written."""
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"logical page out of range: {lpn}")
        return self._l2p[lpn]

    def owner(self, ppa: int) -> int:
        """LPN whose data is at ``ppa``, or ``UNMAPPED``."""
        return self._p2l[ppa]

    def state(self, ppa: int) -> PageState:
        return PageState(self._state[ppa])

    def valid_count(self, block: int) -> int:
        return self._valid_per_block[block]

    def valid_counts(self) -> List[int]:
        """Per-block valid-page counts (the live list; do not mutate)."""
        return self._valid_per_block

    def valid_lpns_in_block(self, block: int) -> List[int]:
        """LPNs whose current data lives in ``block`` (GC migration set)."""
        first = self.layout.first_page_of_block(block)
        stop = first + self._pages_per_block
        p2l = self._p2l
        state = self._state
        return [p2l[ppa] for ppa in range(first, stop) if state[ppa] == _VALID]

    @property
    def mapped_lpn_count(self) -> int:
        return self._mapped

    def is_pristine(self) -> bool:
        """True if no page was ever bound (every page still FREE).

        ``mapped_lpn_count == 0`` alone is not enough: a bind/trim pair
        leaves an INVALID page behind with zero mappings.  The state
        scan is a single C-speed ``list.count``.
        """
        return (
            self._mapped == 0
            and self._state.count(_FREE) == self._total_pages
        )

    def fill_sequential_striped(self, count: int) -> None:
        """Bulk-bind LPNs ``0..count-1`` round-robin striped across dies
        at consecutive per-die PPAs — the closed form of a sequential
        fill on a pristine table.

        The caller (:meth:`repro.ftl.core.PageMappedFtl.fill_sequential`)
        is responsible for checking :meth:`is_pristine` and the
        no-deflection guard; this method only applies the state.
        """
        layout = self.layout
        dies = layout.dies
        ppb = self._pages_per_block
        blocks_per_die = layout.blocks_per_die
        die_pages = blocks_per_die * ppb
        l2p, p2l, state = self._l2p, self._p2l, self._state
        valid_per_block = self._valid_per_block
        for die in range(dies):
            pages = (count - die + dies - 1) // dies
            if pages <= 0:
                continue
            base = die * die_pages
            l2p[die:count:dies] = range(base, base + pages)
            p2l[base : base + pages] = range(die, die + pages * dies, dies)
            state[base : base + pages] = [_VALID] * pages
            full, rem = divmod(pages, ppb)
            first_block = die * blocks_per_die
            valid_per_block[first_block : first_block + full] = [ppb] * full
            if rem:
                valid_per_block[first_block + full] = rem
        self._mapped = count

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def bind(self, lpn: int, ppa: int) -> int:
        """Point ``lpn`` at freshly-programmed ``ppa``.

        Returns the previous PPA (now invalidated) or ``UNMAPPED``.
        """
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"logical page out of range: {lpn}")
        if not 0 <= ppa < self._total_pages:
            raise ValueError(f"physical page out of range: {ppa}")
        state = self._state
        if state[ppa] != _FREE:
            raise ValueError(f"cannot bind to non-free page {ppa}")
        l2p = self._l2p
        previous = l2p[lpn]
        if previous != UNMAPPED:
            self._invalidate(previous)
        else:
            self._mapped += 1
        l2p[lpn] = ppa
        self._p2l[ppa] = lpn
        state[ppa] = _VALID
        self._valid_per_block[ppa // self._pages_per_block] += 1
        return previous

    def trim(self, lpn: int) -> int:
        """Discard ``lpn``'s mapping (TRIM); returns the freed PPA."""
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"logical page out of range: {lpn}")
        previous = self._l2p[lpn]
        if previous != UNMAPPED:
            self._invalidate(previous)
            self._l2p[lpn] = UNMAPPED
            self._mapped -= 1
        return previous

    def erase_block(self, block: int) -> None:
        """Reset a block's pages to FREE.  All pages must be non-valid."""
        if self._valid_per_block[block] != 0:
            raise ValueError(
                f"block {block} still has {self._valid_per_block[block]} "
                "valid pages; migrate before erasing"
            )
        first = self.layout.first_page_of_block(block)
        pages = self._pages_per_block
        self._p2l[first : first + pages] = [UNMAPPED] * pages
        self._state[first : first + pages] = [_FREE] * pages

    def _invalidate(self, ppa: int) -> None:
        state = self._state
        if state[ppa] != _VALID:
            raise ValueError(f"page {ppa} is not valid")
        state[ppa] = _INVALID
        self._p2l[ppa] = UNMAPPED
        self._valid_per_block[ppa // self._pages_per_block] -= 1

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify the structural invariants (used by property tests)."""
        layout = self.layout
        valid = [0] * layout.total_blocks
        for ppa in range(layout.total_pages):
            state = self._state[ppa]
            lpn = self._p2l[ppa]
            if state == _VALID:
                if lpn == UNMAPPED or self._l2p[lpn] != ppa:
                    raise AssertionError(f"broken forward/reverse map at ppa {ppa}")
                valid[layout.block_of_page(ppa)] += 1
            elif lpn != UNMAPPED:
                raise AssertionError(f"non-valid page {ppa} has an owner")
        if valid != self._valid_per_block:
            raise AssertionError("valid-per-block counters out of sync")
        mapped = sum(1 for ppa in self._l2p if ppa != UNMAPPED)
        if mapped != self._mapped:
            raise AssertionError("mapped-LPN counter out of sync")
