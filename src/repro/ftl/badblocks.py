"""Bad-block management and the super-channel remap checker.

Paper Section II-A2: super-channel striping spreads each host request
across a *pair* of channels at the same block offset.  If a block is worn
out on one channel of the pair, the naive design wastes its twin on the
other channel.  Z-SSD's split-DMA engine embeds a *remap checker* that
transparently redirects a bad physical block to a spare clean block and
exposes a semi-virtual block address space to the flash firmware, so the
full capacity stays usable.

:class:`BadBlockTable` records which physical blocks are factory- or
wear-marked bad; :class:`RemapChecker` provides the semi-virtual view.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np


class BadBlockTable:
    """Set of bad physical blocks, optionally seeded at manufacture."""

    def __init__(
        self,
        total_blocks: int,
        *,
        factory_bad_rate: float = 0.0,
        seed: int = 7,
    ) -> None:
        if total_blocks < 1:
            raise ValueError("total_blocks must be >= 1")
        if not 0.0 <= factory_bad_rate < 1.0:
            raise ValueError("factory_bad_rate must be in [0, 1)")
        self.total_blocks = total_blocks
        self._bad: set = set()
        if factory_bad_rate > 0.0:
            rng = np.random.default_rng(seed)
            count = int(total_blocks * factory_bad_rate)
            for block in rng.choice(total_blocks, size=count, replace=False):
                self._bad.add(int(block))

    def __contains__(self, block: int) -> bool:
        return block in self._bad

    def __len__(self) -> int:
        return len(self._bad)

    def mark_bad(self, block: int) -> None:
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block out of range: {block}")
        self._bad.add(block)

    def bad_blocks(self) -> Iterable[int]:
        return sorted(self._bad)


class RemapChecker:
    """Semi-virtual block address space over a bad-block table.

    Virtual blocks ``[0, usable)`` map to good physical blocks; spares
    cover the bad ones.  ``resolve`` is what the split-DMA engine does on
    every flash transaction before driving the channel pair.
    """

    def __init__(self, table: BadBlockTable, spare_blocks: int) -> None:
        if spare_blocks < 0:
            raise ValueError("spare_blocks must be >= 0")
        self.table = table
        self.spare_blocks = spare_blocks
        self._remap: Dict[int, int] = {}
        total = table.total_blocks
        self.usable = total - spare_blocks
        spares: List[int] = [
            block for block in range(self.usable, total) if block not in table
        ]
        for block in range(self.usable):
            if block in table:
                if not spares:
                    raise ValueError(
                        "not enough spare blocks to cover the bad-block table"
                    )
                self._remap[block] = spares.pop(0)
        self._spares_left = spares

    @property
    def remapped_count(self) -> int:
        return len(self._remap)

    @property
    def spares_remaining(self) -> int:
        return len(self._spares_left)

    def resolve(self, virtual_block: int) -> int:
        """Physical block backing ``virtual_block``."""
        if not 0 <= virtual_block < self.usable:
            raise ValueError(f"virtual block out of range: {virtual_block}")
        return self._remap.get(virtual_block, virtual_block)

    def retire(self, virtual_block: int) -> Optional[int]:
        """Grow the table: mark the backing block bad, remap to a spare.

        Returns the new physical block, or ``None`` when no spares
        remain (the device would drop to read-only mode).
        """
        physical = self.resolve(virtual_block)
        self.table.mark_bad(physical)
        if not self._spares_left:
            return None
        replacement = self._spares_left.pop(0)
        self._remap[virtual_block] = replacement
        return replacement
