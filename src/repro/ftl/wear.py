"""Wear tracking: per-block erase counts and endurance statistics.

Z-NAND is SLC-like and endures ~10x the program/erase cycles of MLC,
but a greedy GC policy can still concentrate erases on a few blocks.
The tracker records every erase and summarizes the wear distribution —
used by the GC tests and the endurance example, and available to any
future wear-leveling policy as its input signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WearSummary:
    """Distribution of per-block erase counts."""

    total_erases: int
    max_erases: int
    min_erases: int
    mean_erases: float
    stdev_erases: float

    @property
    def imbalance(self) -> float:
        """max/mean — 1.0 is perfectly level wear."""
        if self.mean_erases == 0:
            return 1.0
        return self.max_erases / self.mean_erases


class WearTracker:
    """Counts erases per physical block."""

    def __init__(self, total_blocks: int, *, endurance_limit: int = 0) -> None:
        if total_blocks < 1:
            raise ValueError("total_blocks must be >= 1")
        self.endurance_limit = endurance_limit
        self._erases = np.zeros(total_blocks, dtype=np.int64)

    def record_erase(self, block: int) -> int:
        """Count one erase; returns the block's new cycle count."""
        self._erases[block] += 1
        return int(self._erases[block])

    def erases_of(self, block: int) -> int:
        return int(self._erases[block])

    def worn_out_blocks(self) -> list:
        """Blocks past the endurance limit (empty if no limit set)."""
        if self.endurance_limit <= 0:
            return []
        return [int(b) for b in np.nonzero(self._erases >= self.endurance_limit)[0]]

    def summary(self) -> WearSummary:
        data = self._erases
        return WearSummary(
            total_erases=int(data.sum()),
            max_erases=int(data.max()),
            min_erases=int(data.min()),
            mean_erases=float(data.mean()),
            stdev_erases=float(data.std()),
        )
