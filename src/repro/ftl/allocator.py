"""Per-die block allocation with striped placement and dual streams.

Each die keeps a FIFO pool of erased blocks and *two* active blocks with
sequential write pointers (flash pages inside a block must be programmed
in order): one for **host** data and one for **GC** migrations.  Keeping
the streams separate is what lets garbage collection segregate cold data
from hot data — if migrations shared the host write point, every
reclaimed cold page would be re-mixed with fresh hot pages and
age-aware victim policies could never pay off.

Host writes stripe round-robin across dies — the channel-level striping
the paper credits for device parallelism.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.ftl.layout import FtlLayout


class OutOfSpace(Exception):
    """Raised when a die has no erased blocks left to open."""


class WriteStream(enum.Enum):
    """Which write point an allocation draws from."""

    HOST = "host"
    GC = "gc"


class BlockAllocator:
    """Erased-block pools and dual active write points, one set per die."""

    def __init__(self, layout: FtlLayout) -> None:
        self.layout = layout
        self._free: List[Deque[int]] = []
        for die in range(layout.dies):
            self._free.append(deque(layout.blocks_of_die(die)))
        self._active: Dict[Tuple[int, WriteStream], Optional[int]] = {}
        self._write_ptr: Dict[Tuple[int, WriteStream], int] = {}
        for die in range(layout.dies):
            for stream in WriteStream:
                self._active[(die, stream)] = None
                self._write_ptr[(die, stream)] = 0
        self._closed: List[set] = [set() for _ in range(layout.dies)]
        self._next_die = 0
        # Monotonic allocation clock; closed blocks remember when they
        # filled, which age-aware GC policies (cost-benefit) consume.
        self.sequence = 0
        self._closed_at: dict = {}

    # ------------------------------------------------------------------
    def free_blocks(self, die: int) -> int:
        """Erased blocks pooled on ``die`` (excluding active blocks)."""
        return len(self._free[die])

    def min_free_blocks(self) -> int:
        """The scarcest die's pool size — the GC trigger signal."""
        return min(len(pool) for pool in self._free)

    def active_block(
        self, die: int, stream: WriteStream = WriteStream.HOST
    ) -> Optional[int]:
        return self._active[(die, stream)]

    def is_active(self, block: int) -> bool:
        die = self.layout.die_of_block(block)
        return any(
            self._active[(die, stream)] == block for stream in WriteStream
        )

    # ------------------------------------------------------------------
    def next_die(self) -> int:
        """Round-robin die choice for the next striped host write."""
        die = self._next_die
        self._next_die = (die + 1) % self.layout.dies
        return die

    def can_host_write(self, die: int) -> bool:
        """True if a host write may land on ``die`` without consuming
        the erased block reserved for garbage collection.

        The last erased block of every die is a GC reserve: migrations
        must always have somewhere to land, otherwise a die that fills
        up with valid data can never be reclaimed (pages cannot migrate
        across dies).
        """
        if self.remaining_in_active(die, WriteStream.HOST) > 0:
            return True
        # Opening a host block must leave at least one erased block in
        # the pool: a GC migration may need a fresh block mid-cycle even
        # while its own write point is partially open.
        return len(self._free[die]) >= 2

    def allocate_page(
        self, die: int, stream: WriteStream = WriteStream.HOST
    ) -> int:
        """Take the next free page on ``die``'s ``stream`` write point;
        opens a new block as needed.

        Raises :class:`OutOfSpace` when the die's pool is empty and the
        stream's active block is full — the caller (GC) must reclaim
        first.
        """
        layout = self.layout
        key = (die, stream)
        block = self._active[key]
        if block is None:
            if not self._free[die]:
                raise OutOfSpace(f"die {die} has no erased blocks")
            block = self._free[die].popleft()
            self._active[key] = block
            self._write_ptr[key] = 0
        ppa = layout.first_page_of_block(block) + self._write_ptr[key]
        self._write_ptr[key] += 1
        self.sequence += 1
        if self._write_ptr[key] >= layout.pages_per_block:
            # Close eagerly: a full block is immediately GC-eligible.
            self._closed[die].add(block)
            self._closed_at[block] = self.sequence
            self._active[key] = None
        return ppa

    def closed_blocks(self, die: int) -> frozenset:
        """Fully-programmed blocks on ``die`` — the GC candidate set."""
        return frozenset(self._closed[die])

    def closed_at(self, block: int) -> int:
        """Allocation-clock reading when ``block`` filled (its "age"
        anchor for cost-benefit GC)."""
        return self._closed_at.get(block, 0)

    def release_block(self, block: int) -> None:
        """Return an erased block to its die's pool."""
        die = self.layout.die_of_block(block)
        if block in self._free[die]:
            raise ValueError(f"block {block} already in the free pool")
        if self.is_active(block):
            raise ValueError(f"block {block} is an active block")
        if block not in self._closed[die]:
            raise ValueError(f"block {block} was never fully programmed")
        self._closed[die].discard(block)
        self._free[die].append(block)

    def retire_block(self, die: int) -> Optional[int]:
        """Permanently remove one erased block from ``die``'s pool.

        Models bad-block retirement after a program failure: once the
        failed block's live data has been re-programmed elsewhere, the
        block leaves service for good, shrinking the die's erased pool.
        Refuses (returns ``None``) rather than dip below the two-block
        floor :meth:`can_host_write` relies on — a die cannot retire its
        GC reserve.
        """
        if len(self._free[die]) < 2:
            return None
        return self._free[die].pop()

    def remaining_in_active(
        self, die: int, stream: WriteStream = WriteStream.HOST
    ) -> int:
        """Unwritten pages left in the stream's active block."""
        key = (die, stream)
        if self._active[key] is None:
            return 0
        return self.layout.pages_per_block - self._write_ptr[key]
