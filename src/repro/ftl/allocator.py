"""Per-die block allocation with striped placement and dual streams.

Each die keeps a FIFO pool of erased blocks and *two* active blocks with
sequential write pointers (flash pages inside a block must be programmed
in order): one for **host** data and one for **GC** migrations.  Keeping
the streams separate is what lets garbage collection segregate cold data
from hot data — if migrations shared the host write point, every
reclaimed cold page would be re-mixed with fresh hot pages and
age-aware victim policies could never pay off.

Host writes stripe round-robin across dies — the channel-level striping
the paper credits for device parallelism.

Internally the write points live in plain lists indexed by die, one pair
of lists per stream — the ``(die, WriteStream)`` tuple keys this module
used to hash on every allocation put enum ``__hash__`` squarely on the
per-write hot path.  :class:`WriteStream` remains the public vocabulary;
stream dispatch is a single identity check.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.ftl.layout import FtlLayout


class OutOfSpace(Exception):
    """Raised when a die has no erased blocks left to open."""


class WriteStream(enum.Enum):
    """Which write point an allocation draws from."""

    HOST = "host"
    GC = "gc"


class BlockAllocator:
    """Erased-block pools and dual active write points, one set per die."""

    def __init__(self, layout: FtlLayout) -> None:
        self.layout = layout
        self._pages_per_block = layout.pages_per_block
        self._free: List[Deque[int]] = []
        for die in range(layout.dies):
            self._free.append(deque(layout.blocks_of_die(die)))
        # Index 0 = HOST, index 1 = GC; each entry is a per-die list.
        self._active: List[List[Optional[int]]] = [
            [None] * layout.dies,
            [None] * layout.dies,
        ]
        self._write_ptr: List[List[int]] = [
            [0] * layout.dies,
            [0] * layout.dies,
        ]
        self._closed: List[Set[int]] = [set() for _ in range(layout.dies)]
        self._next_die = 0
        # Monotonic allocation clock; closed blocks remember when they
        # filled, which age-aware GC policies (cost-benefit) consume.
        self.sequence = 0
        self._closed_at: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def free_blocks(self, die: int) -> int:
        """Erased blocks pooled on ``die`` (excluding active blocks)."""
        return len(self._free[die])

    def min_free_blocks(self) -> int:
        """The scarcest die's pool size — the GC trigger signal."""
        return min(len(pool) for pool in self._free)

    def active_block(
        self, die: int, stream: WriteStream = WriteStream.HOST
    ) -> Optional[int]:
        return self._active[0 if stream is WriteStream.HOST else 1][die]

    def is_active(self, block: int) -> bool:
        die = self.layout.die_of_block(block)
        return self._active[0][die] == block or self._active[1][die] == block

    # ------------------------------------------------------------------
    def next_die(self) -> int:
        """Round-robin die choice for the next striped host write."""
        die = self._next_die
        self._next_die = (die + 1) % self.layout.dies
        return die

    def can_host_write(self, die: int) -> bool:
        """True if a host write may land on ``die`` without consuming
        the erased block reserved for garbage collection.

        The last erased block of every die is a GC reserve: migrations
        must always have somewhere to land, otherwise a die that fills
        up with valid data can never be reclaimed (pages cannot migrate
        across dies).
        """
        if self._active[0][die] is not None:
            return True  # an open host block always has >=1 page left
        # Opening a host block must leave at least one erased block in
        # the pool: a GC migration may need a fresh block mid-cycle even
        # while its own write point is partially open.
        return len(self._free[die]) >= 2

    def allocate_page(
        self, die: int, stream: WriteStream = WriteStream.HOST
    ) -> int:
        """Take the next free page on ``die``'s ``stream`` write point;
        opens a new block as needed.

        Raises :class:`OutOfSpace` when the die's pool is empty and the
        stream's active block is full — the caller (GC) must reclaim
        first.
        """
        index = 0 if stream is WriteStream.HOST else 1
        active = self._active[index]
        write_ptr = self._write_ptr[index]
        block = active[die]
        if block is None:
            free = self._free[die]
            if not free:
                raise OutOfSpace(f"die {die} has no erased blocks")
            block = free.popleft()
            active[die] = block
            write_ptr[die] = 0
        ptr = write_ptr[die]
        ppa = block * self._pages_per_block + ptr
        ptr += 1
        write_ptr[die] = ptr
        self.sequence += 1
        if ptr >= self._pages_per_block:
            # Close eagerly: a full block is immediately GC-eligible.
            self._closed[die].add(block)
            self._closed_at[block] = self.sequence
            active[die] = None
        return ppa

    def is_pristine(self) -> bool:
        """True if no page was ever allocated and no block retired:
        every die's pool still holds all of its blocks in order."""
        return self.sequence == 0 and all(
            len(pool) == self.layout.blocks_per_die for pool in self._free
        )

    def fill_sequential_striped(self, count: int) -> None:
        """Apply the allocator state ``count`` round-robin host
        allocations leave behind on a pristine allocator.

        Each die hands out its blocks in pool (= block-number) order;
        the ``k``-th closed block of die ``d`` filled when its last page
        — the ``((k+1) * pages_per_block - 1)``-th page of the die, i.e.
        global allocation ``((k+1) * ppb - 1) * dies + d`` — was taken,
        so its age anchor is that allocation's sequence number.  Guarded
        by the caller (see
        :meth:`repro.ftl.core.PageMappedFtl.fill_sequential`).
        """
        layout = self.layout
        dies = layout.dies
        ppb = self._pages_per_block
        blocks_per_die = layout.blocks_per_die
        active_host = self._active[0]
        ptr_host = self._write_ptr[0]
        closed_at = self._closed_at
        for die in range(dies):
            pages = (count - die + dies - 1) // dies
            if pages <= 0:
                continue
            full, rem = divmod(pages, ppb)
            base = die * blocks_per_die
            consumed = full + (1 if rem else 0)
            self._free[die] = deque(range(base + consumed, base + blocks_per_die))
            if rem:
                active_host[die] = base + full
                ptr_host[die] = rem
            closed = self._closed[die]
            for k in range(full):
                block = base + k
                closed.add(block)
                closed_at[block] = ((k + 1) * ppb - 1) * dies + die + 1
        self.sequence = count
        self._next_die = count % dies

    def closed_blocks(self, die: int) -> frozenset:
        """Fully-programmed blocks on ``die`` — the GC candidate set."""
        return frozenset(self._closed[die])

    def closed_at(self, block: int) -> int:
        """Allocation-clock reading when ``block`` filled (its "age"
        anchor for cost-benefit GC)."""
        return self._closed_at.get(block, 0)

    def release_block(self, block: int) -> None:
        """Return an erased block to its die's pool."""
        die = self.layout.die_of_block(block)
        if block in self._free[die]:
            raise ValueError(f"block {block} already in the free pool")
        if self.is_active(block):
            raise ValueError(f"block {block} is an active block")
        if block not in self._closed[die]:
            raise ValueError(f"block {block} was never fully programmed")
        self._closed[die].discard(block)
        self._free[die].append(block)

    def retire_block(self, die: int) -> Optional[int]:
        """Permanently remove one erased block from ``die``'s pool.

        Models bad-block retirement after a program failure: once the
        failed block's live data has been re-programmed elsewhere, the
        block leaves service for good, shrinking the die's erased pool.
        Refuses (returns ``None``) rather than dip below the two-block
        floor :meth:`can_host_write` relies on — a die cannot retire its
        GC reserve.
        """
        if len(self._free[die]) < 2:
            return None
        return self._free[die].pop()

    def remaining_in_active(
        self, die: int, stream: WriteStream = WriteStream.HOST
    ) -> int:
        """Unwritten pages left in the stream's active block."""
        index = 0 if stream is WriteStream.HOST else 1
        if self._active[index][die] is None:
            return 0
        return self._pages_per_block - self._write_ptr[index][die]
