"""The page-mapped FTL facade.

Combines the mapping table, the per-die block allocator, and the greedy
GC policy into the object the SSD controller talks to.  The FTL is pure
*state*: it decides placement and victim sets, while the controller books
the corresponding flash operations on the simulated dies (so all timing
lives in one place).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ftl.allocator import BlockAllocator, OutOfSpace, WriteStream
from repro.ftl.gc import CostBenefitVictimPolicy, GreedyVictimPolicy
from repro.ftl.layout import FtlLayout
from repro.ftl.mapping import UNMAPPED, MappingTable
from repro.ftl.wear import WearTracker


@dataclass(frozen=True)
class WritePlacement:
    """Where a host (or GC) write landed."""

    lpn: int
    ppa: int
    die: int
    previous_ppa: int  # UNMAPPED if this was the first write of the LPN


@dataclass(frozen=True)
class GcPlan:
    """One block reclamation: the victim and the pages to migrate."""

    die: int
    victim_block: int
    victim_lpns: List[int]


class PageMappedFtl:
    """Page-level FTL with striped placement and greedy GC."""

    #: Available victim-selection policies.
    GC_POLICIES = {
        "greedy": GreedyVictimPolicy,
        "cost-benefit": CostBenefitVictimPolicy,
    }

    def __init__(
        self,
        layout: FtlLayout,
        *,
        overprovision: float = 0.125,
        gc_watermark_blocks: int = 2,
        gc_policy: str = "greedy",
    ) -> None:
        if not 0.0 < overprovision < 0.9:
            raise ValueError("overprovision must be in (0, 0.9)")
        if gc_watermark_blocks < 1:
            raise ValueError("gc_watermark_blocks must be >= 1")
        if layout.blocks_per_die <= gc_watermark_blocks + 1:
            raise ValueError(
                "layout too small: need more blocks per die than the GC watermark"
            )
        self.layout = layout
        self.overprovision = overprovision
        self.gc_watermark_blocks = gc_watermark_blocks
        self.logical_pages = int(layout.total_pages * (1.0 - overprovision))
        self.mapping = MappingTable(layout, self.logical_pages)
        self.allocator = BlockAllocator(layout)
        try:
            policy_cls = self.GC_POLICIES[gc_policy]
        except KeyError:
            raise ValueError(
                f"unknown gc_policy {gc_policy!r}; choose from "
                f"{sorted(self.GC_POLICIES)}"
            ) from None
        self.gc_policy = gc_policy
        self.victim_policy = policy_cls(layout)
        self.wear = WearTracker(layout.total_blocks)
        # Statistics.
        self.host_writes = 0
        self.gc_writes = 0
        self.gc_runs = 0
        self.erases = 0

    # ------------------------------------------------------------------
    # Host path
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Host-visible capacity."""
        return self.logical_pages * self.layout.unit_size

    def read_ppa(self, lpn: int) -> Optional[int]:
        """PPA to read for ``lpn``, or ``None`` if never written."""
        ppa = self.mapping.lookup(lpn)
        return None if ppa == UNMAPPED else ppa

    def write(self, lpn: int) -> WritePlacement:
        """Place a host write on the next die in the stripe order.

        Dies whose GC reserve would be consumed are skipped — the
        striping engine steers host data toward dies that still have
        room, leaving every die able to collect itself.
        """
        allocator = self.allocator
        for _ in range(self.layout.dies):
            die = allocator.next_die()
            if allocator.can_host_write(die):
                return self.write_to_die(lpn, die)
        # Pressure fallback: every host write point is blocked, but an
        # open GC block may still have room.  Borrowing it sacrifices
        # stream purity, not correctness — and the overwrite it admits
        # invalidates an old page somewhere, which is exactly what GC
        # needs to make progress again.
        for die in range(self.layout.dies):
            if allocator.remaining_in_active(die, WriteStream.GC) > 0:
                ppa = allocator.allocate_page(die, WriteStream.GC)
                previous = self.mapping.bind(lpn, ppa)
                self.host_writes += 1
                return WritePlacement(
                    lpn=lpn, ppa=ppa, die=die, previous_ppa=previous
                )
        raise OutOfSpace(
            "no die can accept a host write; garbage collection is not "
            "keeping up with the overwrite stream"
        )

    def write_to_die(self, lpn: int, die: int) -> WritePlacement:
        """Place a host write on a specific die (flush workers)."""
        ppa = self.allocator.allocate_page(die)
        previous = self.mapping.bind(lpn, ppa)
        self.host_writes += 1
        return WritePlacement(lpn=lpn, ppa=ppa, die=die, previous_ppa=previous)

    def fill_sequential(self, count: int) -> int:
        """Apply the exact state ``count`` sequential host writes
        (LPNs ``0..count-1``) leave behind, in bulk.

        Preconditioning writes the drive once before measuring; done
        through :meth:`write` it dominates simulation wall time (it is
        pure metadata churn, no simulated time passes).  On a pristine
        FTL the outcome has a closed form: with every die accepting,
        striping is perfectly round-robin (die = lpn % dies) and each
        die's FIFO pool hands out its blocks in order, so LPN ``lpn``
        lands at ``(lpn % dies) * pages_per_die + lpn // dies``.  The
        form holds while no die is ever deflected by
        :meth:`~repro.ftl.allocator.BlockAllocator.can_host_write`,
        i.e. while the busiest die opens at most ``blocks_per_die - 1``
        blocks; otherwise (or on a non-pristine FTL) this falls back to
        the write loop.  Equivalence is pinned by
        ``tests/test_ftl_fill.py``, which diffs the full FTL state
        against the loop across geometries.
        """
        if count < 0:
            raise ValueError(f"negative fill count: {count}")
        if count > self.logical_pages:
            raise ValueError(
                f"cannot fill {count} pages into {self.logical_pages} "
                "logical pages"
            )
        layout = self.layout
        dies = layout.dies
        # Pages landing on the busiest die (die 0 collects the ceiling).
        busiest = (count + dies - 1) // dies
        opened = (busiest + layout.pages_per_block - 1) // layout.pages_per_block
        if (
            count == 0
            or opened > layout.blocks_per_die - 1
            or not self.mapping.is_pristine()
            or not self.allocator.is_pristine()
        ):
            for lpn in range(count):
                self.write(lpn)
            return count
        self.mapping.fill_sequential_striped(count)
        self.allocator.fill_sequential_striped(count)
        self.host_writes += count
        return count

    def still_in_block(self, lpn: int, block: int) -> bool:
        """True if ``lpn``'s current data still lives inside ``block``."""
        ppa = self.mapping.lookup(lpn)
        if ppa == UNMAPPED:
            return False
        return self.layout.block_of_page(ppa) == block

    def trim(self, lpn: int) -> None:
        """Discard ``lpn``'s data."""
        self.mapping.trim(lpn)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def dies_needing_gc(self) -> List[int]:
        """Dies whose erased-block pool fell below the watermark."""
        return [
            die
            for die in range(self.layout.dies)
            if self.allocator.free_blocks(die) < self.gc_watermark_blocks
        ]

    def plan_gc(self, die: int) -> Optional[GcPlan]:
        """Choose a victim on ``die`` and list the pages to migrate."""
        victim = self.victim_policy.select(die, self.mapping, self.allocator)
        if victim is None:
            return None
        return GcPlan(
            die=die,
            victim_block=victim,
            victim_lpns=self.mapping.valid_lpns_in_block(victim),
        )

    def relocate(self, lpn: int, die: int) -> WritePlacement:
        """GC migration write of ``lpn`` onto ``die``'s GC stream.

        Migrated (cold-leaning) data lands on a separate write point, so
        it is not re-mixed with fresh host traffic — the hot/cold
        segregation age-aware GC policies rely on.
        """
        ppa = self.allocator.allocate_page(die, WriteStream.GC)
        previous = self.mapping.bind(lpn, ppa)
        self.gc_writes += 1
        return WritePlacement(lpn=lpn, ppa=ppa, die=die, previous_ppa=previous)

    def finish_gc(self, plan: GcPlan) -> None:
        """Erase the victim and return it to the die's pool.

        Call after every page in ``plan.victim_lpns`` has been relocated
        (or overwritten by the host in the meantime).
        """
        if self.mapping.valid_count(plan.victim_block) != 0:
            raise ValueError("victim still has valid pages; relocate them first")
        self.mapping.erase_block(plan.victim_block)
        self.allocator.release_block(plan.victim_block)
        self.wear.record_erase(plan.victim_block)
        self.gc_runs += 1
        self.erases += 1

    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Zero the write/GC counters (e.g. after preconditioning)."""
        self.host_writes = 0
        self.gc_writes = 0
        self.gc_runs = 0
        self.erases = 0

    def write_amplification(self) -> float:
        """(host + GC writes) / host writes — classic WAF."""
        if self.host_writes == 0:
            return 1.0
        return (self.host_writes + self.gc_writes) / self.host_writes
