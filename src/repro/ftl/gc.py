"""Garbage-collection victim selection policies.

* :class:`GreedyVictimPolicy` — reclaim the closed block with the
  fewest valid pages (cheapest migration *right now*).  Optimal for
  uniform traffic, short-sighted under skew: a hot block about to be
  invalidated anyway gets collected just before its pages die.
* :class:`CostBenefitVictimPolicy` — Kawaguchi et al.'s classic
  ``benefit/cost = age * (1 - u) / (2u)`` score (``u`` = valid ratio):
  prefers old, cold blocks whose valid pages are worth moving once,
  and leaves hot blocks to self-invalidate.  Wins under skewed
  (hot/cold) overwrite traffic — see the GC-policy ablation.

Ties break on the lower block number, keeping runs deterministic.
"""

from __future__ import annotations

from typing import Optional

from repro.ftl.allocator import BlockAllocator
from repro.ftl.layout import FtlLayout
from repro.ftl.mapping import MappingTable


class GreedyVictimPolicy:
    """Pick the min-valid-count closed block on a die."""

    def __init__(self, layout: FtlLayout) -> None:
        self.layout = layout

    def select(
        self,
        die: int,
        mapping: MappingTable,
        allocator: BlockAllocator,
    ) -> Optional[int]:
        """Best victim on ``die``, or ``None`` if nothing is reclaimable.

        A fully-valid block is never a victim: erasing it reclaims
        nothing (every page must be rewritten first), so collecting it
        would be pure churn — and when space is genuinely tight a
        partially-invalid block always exists (the valid total is capped
        by the logical space, which overprovisioning keeps strictly
        below the physical space).
        """
        candidates = allocator.closed_blocks(die)
        if not candidates:
            return None
        counts = mapping.valid_counts()
        victim = min(candidates, key=lambda block: (int(counts[block]), block))
        if counts[victim] >= self.layout.pages_per_block:
            return None
        return victim


class CostBenefitVictimPolicy:
    """Pick the closed block maximizing ``age * (1 - u) / (2u)``."""

    def __init__(self, layout: FtlLayout) -> None:
        self.layout = layout

    def select(
        self,
        die: int,
        mapping: MappingTable,
        allocator: BlockAllocator,
    ) -> Optional[int]:
        """Best victim on ``die``, or ``None`` if nothing is reclaimable."""
        candidates = allocator.closed_blocks(die)
        if not candidates:
            return None
        pages = self.layout.pages_per_block
        counts = mapping.valid_counts()
        now = allocator.sequence

        def score(block: int) -> float:
            valid = int(counts[block])
            if valid >= pages:
                return -1.0  # no gain: never a victim
            age = max(1, now - allocator.closed_at(block))
            if valid == 0:
                return float("inf")  # free win
            u = valid / pages
            return age * (1.0 - u) / (2.0 * u)

        victim = max(candidates, key=lambda block: (score(block), -block))
        if score(victim) < 0.0:
            return None
        return victim
