"""The per-layer fault RNG stream.

One :class:`FaultInjector` wraps one layer's spec plus a dedicated
``numpy`` generator seeded from the plan (see
:func:`repro.faults.plan.FaultPlan.injector`).  Layers hold the
injector they were given and call :meth:`roll` at each potential fault
site; because the stream is separate from every other RNG in the
simulator, the *sequence of fault sites visited* fully determines the
injected schedule — identical runs produce identical faults, and a
disabled layer (injector ``None``) draws nothing at all.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class FaultInjector:
    """A layer's fault spec bound to its seeded random stream."""

    __slots__ = ("spec", "rng")

    def __init__(self, spec: Any, seed: int) -> None:
        #: The layer's spec dataclass (NandFaults, NvmeFaults, ...);
        #: typed loosely because each layer reads its own fields.
        self.spec: Any = spec
        self.rng = np.random.default_rng(seed)

    def roll(self, prob: float) -> bool:
        """One Bernoulli draw from this layer's stream."""
        if prob <= 0.0:
            return False
        return bool(self.rng.random() < prob)
