"""repro.faults: the deterministic fault-injection plane.

See :mod:`repro.faults.plan` for the model and the determinism
contract.  Typical use::

    from repro.faults import FaultPlan, NandFaults

    plan = FaultPlan(seed=7, nand=NandFaults(read_fail_prob=0.01))
    testbed = repro.api.Testbed(faults=plan)

or ambiently (the CLI's ``--faults`` flag does this)::

    with plan.installed():
        run_figure("fig10")
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    KstackFaults,
    NandFaults,
    NetFaults,
    NvmeFaults,
    active_plan,
    install,
    parse_fault_spec,
    uninstall,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "NandFaults",
    "NvmeFaults",
    "KstackFaults",
    "NetFaults",
    "active_plan",
    "install",
    "uninstall",
    "parse_fault_spec",
]
