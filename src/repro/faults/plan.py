"""Declarative fault plans: what can break, how often, and how it heals.

A :class:`FaultPlan` is a frozen, purely-declarative description of the
failures a run should experience — per-layer probabilities and recovery
costs, plus one seed that fully determines every injected event.  The
plan itself never draws randomness; layers ask it for a
:class:`~repro.faults.injector.FaultInjector` (a per-layer RNG stream
derived from ``seed`` with :mod:`hashlib`, so streams are stable across
processes and interpreter restarts) and roll against that.

Two delivery paths reach the layers:

* explicitly, as the ``faults=`` constructor argument threaded through
  :class:`~repro.api.Testbed` and the device/stack constructors;
* ambiently, via :func:`install`/:func:`active_plan` — the CLI and the
  sweep engine install a plan around figure execution, and runners pick
  it up when no explicit plan was given (worker processes re-install it
  so parallel runs see the same plan as serial ones).

Determinism contract: a plan with every layer inactive (the default)
must change **nothing** — no RNG stream is created, no extra event is
scheduled, and byte-identical results to a fault-free build are
guaranteed.  Fault streams are separate from the layers' existing RNGs
(device stalls, pattern generation), so enabling one layer's faults
never perturbs another layer's draws.
"""

from __future__ import annotations

import dataclasses
import hashlib
from contextlib import contextmanager, suppress
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.faults.injector import FaultInjector

__all__ = [
    "NandFaults",
    "NvmeFaults",
    "KstackFaults",
    "NetFaults",
    "FaultPlan",
    "active_plan",
    "install",
    "uninstall",
    "parse_fault_spec",
]


# ----------------------------------------------------------------------
# Per-layer fault specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NandFaults:
    """Flash-array failures the SSD controller must recover from.

    A failed page read is retried with tuned read-reference voltages
    (one extra array read plus ``ecc_retry_ns`` of soft-decode work per
    attempt, up to ``max_read_retries``, after which the heroic-recovery
    path is modeled as succeeding).  A failed program burns its full
    tPROG, retires the block to the bad-block list, and re-programs the
    data on a fresh block.
    """

    read_fail_prob: float = 0.0
    ecc_retry_ns: int = 40_000
    max_read_retries: int = 3
    program_fail_prob: float = 0.0

    @property
    def active(self) -> bool:
        return self.read_fail_prob > 0.0 or self.program_fail_prob > 0.0


@dataclass(frozen=True)
class NvmeFaults:
    """Lost completions at the NVMe transport.

    With probability ``timeout_prob`` a fetched command's completion is
    dropped; the host's command timer expires ``timeout_ns`` later, the
    command is aborted and re-delivered.  The ``reset_after``-th timeout
    of the same command escalates to a controller reset costing
    ``reset_ns`` before the retry.  After ``max_retries`` timeouts the
    re-delivery is forced through (commands never fail permanently —
    the simulator has no error-return plumbing, only latency).
    """

    timeout_prob: float = 0.0
    timeout_ns: int = 2_000_000
    max_retries: int = 3
    reset_after: int = 2
    reset_ns: int = 5_000_000

    @property
    def active(self) -> bool:
        return self.timeout_prob > 0.0


@dataclass(frozen=True)
class KstackFaults:
    """blk-mq dispatch pressure: ``BLK_STS_RESOURCE`` requeues.

    Each dispatch attempt fails with ``requeue_prob``; the request is
    requeued with exponential backoff (``backoff_base_ns * 2^attempt``,
    capped at ``backoff_max_ns``) up to ``max_requeues`` times, after
    which dispatch is forced through.
    """

    requeue_prob: float = 0.0
    backoff_base_ns: int = 100_000
    backoff_max_ns: int = 1_600_000
    max_requeues: int = 6

    @property
    def active(self) -> bool:
        return self.requeue_prob > 0.0


@dataclass(frozen=True)
class NetFaults:
    """NBD link failures: periodic flaps and per-message drops.

    ``flap_interval_ns > 0`` takes the link down for ``outage_ns``
    starting at every multiple of the interval; transfers arriving
    during an outage wait for the link to return plus ``reconnect_ns``
    of NBD session re-establishment, then resend.  Independently, each
    message is dropped with ``drop_prob`` and resent after a
    ``retransmit_timeout_ns`` detection delay (at most ``max_resends``
    times).
    """

    flap_interval_ns: int = 0
    outage_ns: int = 200_000
    reconnect_ns: int = 50_000
    drop_prob: float = 0.0
    retransmit_timeout_ns: int = 100_000
    max_resends: int = 3

    @property
    def active(self) -> bool:
        return self.flap_interval_ns > 0 or self.drop_prob > 0.0


_LAYERS = ("nand", "nvme", "kstack", "net")
_LAYER_TYPES = {
    "nand": NandFaults,
    "nvme": NvmeFaults,
    "kstack": KstackFaults,
    "net": NetFaults,
}


def _derive_seed(seed: int, layer: str, index: int) -> int:
    """A per-layer-instance RNG seed, stable across processes.

    Python's builtin ``hash`` is salted per interpreter, so the stream
    identity goes through sha256 instead.
    """
    blob = f"repro.faults:{seed}:{layer}:{index}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "little")


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative schedule of faults for one run."""

    seed: int = 0
    nand: NandFaults = field(default_factory=NandFaults)
    nvme: NvmeFaults = field(default_factory=NvmeFaults)
    kstack: KstackFaults = field(default_factory=KstackFaults)
    net: NetFaults = field(default_factory=NetFaults)

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, layer).active for layer in _LAYERS)

    # ------------------------------------------------------------------
    def injector(self, layer: str, index: int = 0) -> Optional[FaultInjector]:
        """The seeded injector for one layer instance, or ``None`` when
        that layer's faults are inactive (callers skip all fault code).

        ``index`` separates the streams of sibling instances (multiple
        NVMe queue pairs, multiple links) so their draws never alias.
        """
        spec = getattr(self, layer)
        if not spec.active:
            return None
        return FaultInjector(spec, _derive_seed(self.seed, layer, index))

    # ------------------------------------------------------------------
    # Canonical-params round trip (sweep grids, cache keys, workers)
    # ------------------------------------------------------------------
    def to_params(self) -> Tuple[Tuple[str, Any], ...]:
        """The plan as sorted nested tuples — the sweep engine's
        canonical parameter form, usable directly as a point param."""
        sections: List[Tuple[str, Any]] = [("seed", self.seed)]
        for layer in _LAYERS:
            spec = getattr(self, layer)
            sections.append(
                (
                    layer,
                    tuple(
                        sorted(
                            (f.name, getattr(spec, f.name))
                            for f in dataclasses.fields(spec)
                        )
                    ),
                )
            )
        return tuple(sorted(sections))

    @classmethod
    def from_params(cls, params: Tuple[Tuple[str, Any], ...]) -> "FaultPlan":
        """Inverse of :meth:`to_params` (unknown fields raise)."""
        table = dict(params)
        kwargs: Dict[str, Any] = {"seed": int(table.pop("seed", 0))}
        for layer, items in table.items():
            kwargs[layer] = _LAYER_TYPES[layer](**dict(items))
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Ambient installation
    # ------------------------------------------------------------------
    def install(self) -> "FaultPlan":
        _ACTIVE.append(self)
        return self

    def uninstall(self) -> None:
        if _ACTIVE and _ACTIVE[-1] is self:
            _ACTIVE.pop()
            return
        with suppress(ValueError):
            _ACTIVE.remove(self)

    @contextmanager
    def installed(self) -> Iterator["FaultPlan"]:
        self.install()
        try:
            yield self
        finally:
            self.uninstall()


#: Stack of ambiently installed plans (last wins), mirroring
#: ``repro.obs.core``'s bundle stack.
_ACTIVE: List[FaultPlan] = []


def active_plan() -> Optional[FaultPlan]:
    """The innermost installed plan with any layer enabled, else None."""
    for plan in reversed(_ACTIVE):
        if plan.any_enabled:
            return plan
    return None


def install(plan: FaultPlan) -> FaultPlan:
    return plan.install()


def uninstall(plan: FaultPlan) -> None:
    plan.uninstall()


# ----------------------------------------------------------------------
# CLI spec parsing
# ----------------------------------------------------------------------
def parse_fault_spec(items: Iterable[object], *, seed: int = 0) -> FaultPlan:
    """Build a plan from ``layer.field=value`` strings.

    Accepts an iterable of specs, each optionally comma-separated, e.g.
    ``["nand.read_fail_prob=0.01", "nvme.timeout_prob=1e-3,nvme.timeout_ns=2000000"]``.
    Values are cast to the field's declared type (int fields accept
    ``250_000``-style underscores; float fields accept scientific
    notation).
    """
    overrides: Dict[str, Dict[str, Any]] = {}
    for item in items:
        for part in str(item).split(","):
            part = part.strip()
            if not part:
                continue
            try:
                dotted, raw = part.split("=", 1)
                layer, name = dotted.strip().split(".", 1)
            except ValueError:
                raise ValueError(
                    f"fault spec {part!r} is not of the form layer.field=value"
                ) from None
            layer = layer.strip()
            name = name.strip()
            if layer not in _LAYER_TYPES:
                raise ValueError(
                    f"unknown fault layer {layer!r} (expected one of {_LAYERS})"
                )
            spec_fields = {f.name: f for f in dataclasses.fields(_LAYER_TYPES[layer])}
            if name not in spec_fields:
                known = ", ".join(sorted(spec_fields))
                raise ValueError(
                    f"unknown fault field {layer}.{name} (known: {known})"
                )
            if spec_fields[name].type in ("int", int):
                value: Any = int(raw.strip().replace("_", ""), 0)
            else:
                value = float(raw.strip())
            overrides.setdefault(layer, {})[name] = value
    kwargs: Dict[str, Any] = {"seed": seed}
    for layer, fields in overrides.items():
        kwargs[layer] = _LAYER_TYPES[layer](**fields)
    return FaultPlan(**kwargs)
