"""repro — a mechanism-level reproduction of "Faster than Flash" (IISWC'19).

The paper characterizes an ultra-low-latency (Z-NAND) SSD against a
high-end NVMe SSD across the whole storage stack: device internals,
kernel completion methods (interrupt / poll / hybrid), SPDK kernel
bypass, and a server-client NBD deployment.  This package simulates that
entire system and regenerates every table and figure.

Quickstart::

    from repro import (
        Simulator, SsdDevice, ull_ssd_config, KernelStack,
        CompletionMethod, FioJob, IoEngineKind, run_job,
    )

    sim = Simulator()
    device = SsdDevice(sim, ull_ssd_config())
    device.precondition()
    stack = KernelStack(sim, device, completion=CompletionMethod.POLL)
    job = FioJob(name="demo", rw="randread", io_count=1000)
    result = run_job(sim, stack, job)
    print(result.latency.mean_us, "us")

Figure reproductions live in :data:`repro.core.figures.FIGURES`.
"""

from repro.core.experiment import DeviceKind, StackKind, build_device, build_stack
from repro.core.figures import FIGURES, run_figure
from repro.core.report import render_figure
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.net.nbd import NbdServerKind, NbdSystem
from repro.sim.engine import Simulator
from repro.spdk.stack import SpdkStack
from repro.ssd.config import SsdConfig
from repro.ssd.device import IoOp, SsdDevice
from repro.ssd.presets import nvme_ssd_config, ull_ssd_config
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import JobResult, run_job

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "SsdDevice",
    "SsdConfig",
    "IoOp",
    "ull_ssd_config",
    "nvme_ssd_config",
    "KernelStack",
    "SpdkStack",
    "CompletionMethod",
    "NbdSystem",
    "NbdServerKind",
    "FioJob",
    "IoEngineKind",
    "JobResult",
    "run_job",
    "DeviceKind",
    "StackKind",
    "build_device",
    "build_stack",
    "FIGURES",
    "run_figure",
    "render_figure",
    "__version__",
]
