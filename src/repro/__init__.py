"""repro — a mechanism-level reproduction of "Faster than Flash" (IISWC'19).

The paper characterizes an ultra-low-latency (Z-NAND) SSD against a
high-end NVMe SSD across the whole storage stack: device internals,
kernel completion methods (interrupt / poll / hybrid), SPDK kernel
bypass, and a server-client NBD deployment.  This package simulates that
entire system and regenerates every table and figure.

Quickstart::

    from repro import (
        Simulator, SsdDevice, resolve_config, KernelStack,
        CompletionMethod, FioJob, IoEngineKind, run_job,
    )

    sim = Simulator()
    device = SsdDevice(sim, resolve_config("zssd"))
    device.precondition()
    stack = KernelStack(sim, device, completion=CompletionMethod.POLL)
    job = FioJob(name="demo", rw="randread", io_count=1000)
    result = run_job(sim, stack, job)
    print(result.latency.mean_us, "us")

Devices are named entries in a spec registry (``docs/devices.md``);
``list_devices()`` enumerates the zoo, and the higher-level
:mod:`repro.api` facade accepts the same names.  Figure reproductions
live in :data:`repro.core.figures.FIGURES`.
"""

from repro.core.experiment import DeviceKind, StackKind, build_device, build_stack
from repro.core.figures import FIGURES, run_figure
from repro.core.report import render_figure
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.net.nbd import NbdServerKind, NbdSystem
from repro.sim.engine import Simulator
from repro.spdk.stack import SpdkStack
from repro.ssd.config import SsdConfig
from repro.ssd.device import IoOp, SsdDevice
from repro.ssd.presets import nvme_ssd_config, ull_ssd_config
from repro.ssd.registry import list_devices, load_device_spec, resolve_config
from repro.ssd.spec import DeviceSpec, DeviceSpecError
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import JobResult, run_job

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "SsdDevice",
    "SsdConfig",
    "IoOp",
    "ull_ssd_config",
    "nvme_ssd_config",
    "DeviceSpec",
    "DeviceSpecError",
    "list_devices",
    "load_device_spec",
    "resolve_config",
    "KernelStack",
    "SpdkStack",
    "CompletionMethod",
    "NbdSystem",
    "NbdServerKind",
    "FioJob",
    "IoEngineKind",
    "JobResult",
    "run_job",
    "DeviceKind",
    "StackKind",
    "build_device",
    "build_stack",
    "FIGURES",
    "run_figure",
    "render_figure",
    "__version__",
]
