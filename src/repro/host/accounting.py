"""VTune-style attribution of CPU time and memory instructions.

Every piece of host software work in the simulation is *charged* to a
``(mode, module, function)`` label together with the load/store
instructions it executes.  The experiment harness then renders:

* CPU utilization split user/kernel (Figs. 12, 13, 20) — busy time over
  wall time;
* per-module / per-function cycle breakdowns (Fig. 14);
* normalized load/store counts and per-function instruction breakdowns
  (Figs. 15, 21, 22).

Charging records bookkeeping only; advancing simulated time is the
caller's job (the stack processes yield matching timeouts).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Tuple


class ExecMode(enum.Enum):
    """Privilege mode a cycle is spent in."""

    USER = "user"
    KERNEL = "kernel"


@dataclass(frozen=True)
class FunctionProfile:
    """Aggregate cost attributed to one function."""

    mode: ExecMode
    module: str
    function: str
    cycles_ns: int
    loads: int
    stores: int


class CpuAccounting:
    """Accumulates attributed CPU time and memory instructions."""

    def __init__(self) -> None:
        self._cycles: Dict[Tuple[ExecMode, str, str], int] = defaultdict(int)
        self._loads: Dict[Tuple[ExecMode, str, str], int] = defaultdict(int)
        self._stores: Dict[Tuple[ExecMode, str, str], int] = defaultdict(int)

    # ------------------------------------------------------------------
    def charge(
        self,
        ns: int,
        mode: ExecMode,
        module: str,
        function: str,
        *,
        loads: int = 0,
        stores: int = 0,
    ) -> int:
        """Attribute ``ns`` of CPU time (and instructions); returns ``ns``
        so call sites can pass it straight into a timeout."""
        if ns < 0 or loads < 0 or stores < 0:
            raise ValueError("charges must be non-negative")
        key = (mode, module, function)
        self._cycles[key] += ns
        self._loads[key] += loads
        self._stores[key] += stores
        return ns

    # ------------------------------------------------------------------
    # Cycle views
    # ------------------------------------------------------------------
    def busy_ns(self, mode: ExecMode = None) -> int:
        """Total attributed CPU time, optionally filtered by mode."""
        return sum(
            ns for (m, _, _), ns in self._cycles.items() if mode is None or m is mode
        )

    def utilization(self, elapsed_ns: int, mode: ExecMode = None) -> float:
        """Busy fraction of ``elapsed_ns`` (one core)."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns(mode) / elapsed_ns)

    def cycles_by_module(self, mode: ExecMode = None) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for (m, module, _), ns in self._cycles.items():
            if mode is None or m is mode:
                out[module] += ns
        return dict(out)

    def cycles_by_function(self, mode: ExecMode = None) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for (m, _, function), ns in self._cycles.items():
            if mode is None or m is mode:
                out[function] += ns
        return dict(out)

    def cycle_share_by_function(self, mode: ExecMode = None) -> Dict[str, float]:
        """Fraction of attributed cycles per function (Fig. 14b)."""
        per_function = self.cycles_by_function(mode)
        total = sum(per_function.values())
        if total == 0:
            return {}
        return {fn: ns / total for fn, ns in per_function.items()}

    # ------------------------------------------------------------------
    # Instruction views
    # ------------------------------------------------------------------
    def total_loads(self) -> int:
        return sum(self._loads.values())

    def total_stores(self) -> int:
        return sum(self._stores.values())

    def loads_by_function(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for (_, _, function), count in self._loads.items():
            out[function] += count
        return dict(out)

    def stores_by_function(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for (_, _, function), count in self._stores.items():
            out[function] += count
        return dict(out)

    def load_share_by_function(self) -> Dict[str, float]:
        per_function = self.loads_by_function()
        total = sum(per_function.values())
        if total == 0:
            return {}
        return {fn: count / total for fn, count in per_function.items()}

    def store_share_by_function(self) -> Dict[str, float]:
        per_function = self.stores_by_function()
        total = sum(per_function.values())
        if total == 0:
            return {}
        return {fn: count / total for fn, count in per_function.items()}

    # ------------------------------------------------------------------
    def profiles(self) -> list:
        """All function profiles, largest cycle consumers first."""
        rows = [
            FunctionProfile(
                mode=mode,
                module=module,
                function=function,
                cycles_ns=ns,
                loads=self._loads.get((mode, module, function), 0),
                stores=self._stores.get((mode, module, function), 0),
            )
            for (mode, module, function), ns in self._cycles.items()
        ]
        rows.sort(key=lambda row: row.cycles_ns, reverse=True)
        return rows
