"""Host software path costs — the central calibration table.

Every named constant is one step of the I/O path, with its CPU time and
the load/store instructions it executes.  The values are chosen so the
end-to-end numbers land near the paper's measurements on the i7-8700 @
4.6 GHz testbed:

* kernel submission + interrupt completion overhead ~4 µs per 4 KB I/O
  (ULL interrupt read 11.8 µs = ~8 µs device + ~4 µs software);
* polling saves the MSI delivery, ISR, and wake-up context switch
  (~2.2 µs — the paper's 11.8 -> 9.6 µs);
* the polled-mode spin executes ~2.4x the loads and ~1.8x the stores of
  the interrupt path (Fig. 15), split ~80/20 between ``blk_mq_poll`` and
  ``nvme_poll`` (Fig. 14b);
* SPDK's user-space spin iterates an order of magnitude faster than the
  kernel poll loop, which is why its memory instruction counts explode
  to ~23x/16x (Fig. 21) even though each iteration is cheap.

Module names follow the paper's breakdowns: ``fio`` (user), ``vfs``,
``blk-mq``, ``nvme-driver``, ``sched``, ``spdk``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StepCost:
    """CPU time and memory instructions of one software step."""

    ns: int
    loads: int = 0
    stores: int = 0

    def __post_init__(self) -> None:
        if self.ns < 0 or self.loads < 0 or self.stores < 0:
            raise ValueError("step costs must be non-negative")


@dataclass(frozen=True)
class SoftwareCosts:
    """All host-side step costs.  Instances are immutable; experiments
    that need variants use :func:`dataclasses.replace`."""

    # --- user land (fio) -------------------------------------------------
    user_io_prep: StepCost = StepCost(ns=700, loads=190, stores=120)
    user_async_reap: StepCost = StepCost(ns=350, loads=60, stores=35)

    # --- async (libaio) path, amortized over io_submit batches -------------
    async_submit_user: StepCost = StepCost(ns=300, loads=55, stores=35)
    async_submit_kernel: StepCost = StepCost(ns=700, loads=130, stores=90)
    async_complete_kernel: StepCost = StepCost(ns=500, loads=95, stores=60)

    # --- syscall boundary -------------------------------------------------
    syscall_entry: StepCost = StepCost(ns=150, loads=25, stores=18)
    syscall_exit: StepCost = StepCost(ns=150, loads=22, stores=15)

    # --- submission path --------------------------------------------------
    vfs_submit: StepCost = StepCost(ns=250, loads=85, stores=55)
    blkmq_submit: StepCost = StepCost(ns=300, loads=95, stores=65)
    nvme_driver_submit: StepCost = StepCost(ns=250, loads=65, stores=45)
    doorbell_write: StepCost = StepCost(ns=100, loads=2, stores=3)

    # A register-latched "light queue" dispatch (the Section IV-C
    # implication prototype): replaces blk-mq tagging + SQE build +
    # doorbell with one MMIO burst.
    light_queue_dispatch: StepCost = StepCost(ns=220, loads=30, stores=25)

    # --- interrupt completion ----------------------------------------------
    irq_delivery_ns: int = 1_000  # MSI flight + vector dispatch (latency only)
    isr: StepCost = StepCost(ns=500, loads=95, stores=60)
    context_switch_out: StepCost = StepCost(ns=350, loads=100, stores=80)
    context_switch_in: StepCost = StepCost(ns=800, loads=115, stores=90)
    blkmq_complete: StepCost = StepCost(ns=300, loads=70, stores=45)

    # --- kernel polled mode -------------------------------------------------
    # One spin iteration = blk_mq_poll bookkeeping (need_resched, pending
    # work, cookie lookup) + nvme_poll CQ phase-tag check.  CQ entries are
    # DMA-written by the device, so every check is an uncached load burst.
    blk_mq_poll_iter: StepCost = StepCost(ns=160, loads=28, stores=11)
    nvme_poll_iter: StepCost = StepCost(ns=40, loads=9, stores=3)
    poll_complete: StepCost = StepCost(ns=300, loads=60, stores=40)

    # Scheduler pressure under spinning: a spin that outlives one
    # scheduling quantum (``poll_preempt_grace_ns``) starts losing CPU
    # share at ``poll_preempt_rate`` to the kernel work it displaced
    # (softirqs, kworkers, need_resched victims).  Interrupt-mode absorbs
    # the same work during its idle wait, so only polling pays — which
    # hurts exactly the long-stall requests that define the five-nines
    # tail (Fig. 11) while leaving the microsecond-scale average intact.
    poll_preempt_grace_ns: int = 100_000
    poll_preempt_rate: float = 0.12
    # Instruction density of the displaced kernel work (per bg_yield.ns).
    bg_yield: StepCost = StepCost(ns=6_000, loads=900, stores=700)

    # --- hybrid polling -----------------------------------------------------
    hybrid_timer_setup: StepCost = StepCost(ns=250, loads=40, stores=30)
    # Timer IRQ + idle C-state exit + scheduler-in.  Several microseconds
    # on a sleeping core — this is what makes half-mean sleeps overshoot
    # the CQE often enough that hybrid trails pure polling by ~5%
    # (the paper's "expected time to sleep is highly inaccurate").
    hybrid_wakeup: StepCost = StepCost(ns=3_800, loads=220, stores=160)
    # hrtimer slack + softirq dispatch delay: the actual wake-up lands
    # uniformly up to this much *after* the requested instant — the sleep
    # inaccuracy the paper blames for hybrid polling's shortfall.
    hybrid_timer_slack_ns: int = 2_000
    # First iterations after the wake-up run cache-cold (poll state and
    # CQ lines were evicted during the sleep).
    hybrid_cold_detect: StepCost = StepCost(ns=400, loads=80, stores=40)

    # --- SPDK user-space driver ----------------------------------------------
    spdk_submit: StepCost = StepCost(ns=250, loads=45, stores=35)
    # fio plugin + hugepage buffer handling; the paper's "others" slice of
    # the SPDK memory-instruction breakdown (Fig. 22b).
    spdk_user_prep: StepCost = StepCost(ns=450, loads=3500, stores=2500)
    # One user-space completion-loop iteration, split by function as the
    # paper's Fig. 22b attributes it.  ~16 ns per iteration: a tight
    # cache-resident loop plus the uncached CQ read.
    spdk_outer_iter: StepCost = StepCost(ns=8, loads=14, stores=7)  # spdk_nvme_qpair_process_completions
    spdk_inner_iter: StepCost = StepCost(ns=5, loads=8, stores=4)  # nvme_pcie_qpair_process_completions
    spdk_check_enabled_iter: StepCost = StepCost(ns=3, loads=7, stores=0)  # nvme_qpair_check_enabled
    spdk_complete: StepCost = StepCost(ns=200, loads=40, stores=30)

    @property
    def spdk_iter_ns(self) -> int:
        """Period of one full SPDK completion-loop iteration."""
        return (
            self.spdk_outer_iter.ns
            + self.spdk_inner_iter.ns
            + self.spdk_check_enabled_iter.ns
        )

    @property
    def kernel_poll_iter_ns(self) -> int:
        """Period of one full kernel poll iteration."""
        return self.blk_mq_poll_iter.ns + self.nvme_poll_iter.ns

    @property
    def submit_path_ns(self) -> int:
        """Kernel submission latency, syscall entry through doorbell."""
        return (
            self.syscall_entry.ns
            + self.vfs_submit.ns
            + self.blkmq_submit.ns
            + self.nvme_driver_submit.ns
            + self.doorbell_write.ns
        )

    @property
    def interrupt_completion_ns(self) -> int:
        """Completion latency from CQE to syscall return, interrupt mode."""
        return (
            self.irq_delivery_ns
            + self.isr.ns
            + self.context_switch_in.ns
            + self.blkmq_complete.ns
            + self.syscall_exit.ns
        )


DEFAULT_COSTS = SoftwareCosts()
