"""Host model: CPU cycle accounting, instruction profiling, software costs.

The paper's host is a 6-core i7-8700 pinned at 4.6 GHz with one core
dedicated to I/O.  Figures 12-15 and 20-22 are all derived from VTune /
top-style attribution of CPU cycles and load/store instructions to
storage-stack functions; :class:`~repro.host.accounting.CpuAccounting`
is the simulated equivalent of that profiler.
"""

from repro.host.accounting import CpuAccounting, ExecMode
from repro.host.costs import SoftwareCosts, StepCost
from repro.host.cpu import CpuCore, CpuSpec, CpuTopology

__all__ = [
    "CpuAccounting",
    "ExecMode",
    "SoftwareCosts",
    "StepCost",
    "CpuSpec",
    "CpuCore",
    "CpuTopology",
]
