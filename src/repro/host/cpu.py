"""CPU cores and topology: the testbed's processor, as a model.

The paper pins fio to one core of a 6-core i7-8700 running at 4.6 GHz
with the ``performance`` cpufreq governor (Section III-B).  This module
models that: cores convert between wall time and cycles at a fixed
frequency, track their busy timelines, and a topology hands cores to
stacks (one core per fio job, like ``taskset``).

The accounting layer (:mod:`repro.host.accounting`) stays in
nanoseconds; cores are the bridge to cycle-denominated results (the
paper quotes "CPU cycles" throughout) and the placement substrate for
concurrent multi-job runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.host.accounting import CpuAccounting, ExecMode
from repro.sim.engine import Simulator
from repro.sim.resources import TimelineResource


@dataclass(frozen=True)
class CpuSpec:
    """Static description of the processor."""

    model: str = "i7-8700"
    cores: int = 6
    frequency_ghz: float = 4.6  # performance governor: pinned at max

    def __post_init__(self) -> None:
        if self.cores < 1 or self.frequency_ghz <= 0:
            raise ValueError("need at least one core and a positive frequency")

    def cycles_of(self, ns: float) -> int:
        """Wall nanoseconds -> CPU cycles at the pinned frequency."""
        return int(round(ns * self.frequency_ghz))

    def ns_of(self, cycles: int) -> float:
        """CPU cycles -> wall nanoseconds."""
        return cycles / self.frequency_ghz


class CpuCore:
    """One core: an accounting sink plus a busy timeline."""

    def __init__(self, sim: Simulator, index: int, spec: CpuSpec) -> None:
        self.sim = sim
        self.index = index
        self.spec = spec
        self.accounting = CpuAccounting()
        self.timeline = TimelineResource(sim)
        self.owner: Optional[str] = None  # pinned job/stack name

    def pin(self, owner: str) -> None:
        """Reserve the core for one job (taskset semantics)."""
        if self.owner is not None:
            raise RuntimeError(
                f"core {self.index} already pinned to {self.owner!r}"
            )
        self.owner = owner

    def unpin(self) -> None:
        self.owner = None

    # ------------------------------------------------------------------
    def busy_cycles(self, mode: ExecMode = None) -> int:
        """Attributed busy time in cycles (the paper's unit)."""
        return self.spec.cycles_of(self.accounting.busy_ns(mode))

    def utilization(self, elapsed_ns: int, mode: ExecMode = None) -> float:
        return self.accounting.utilization(elapsed_ns, mode)


class CpuTopology:
    """The host's cores, with pin-aware allocation."""

    def __init__(self, sim: Simulator, spec: Optional[CpuSpec] = None) -> None:
        self.sim = sim
        self.spec = spec or CpuSpec()
        self.cores: List[CpuCore] = [
            CpuCore(sim, index, self.spec) for index in range(self.spec.cores)
        ]

    def __len__(self) -> int:
        return len(self.cores)

    def allocate(self, owner: str) -> CpuCore:
        """Pin the lowest-numbered free core to ``owner``.

        Raises when every core is taken — the paper's setup never
        oversubscribes cores, and neither do the experiments here.
        """
        for core in self.cores:
            if core.owner is None:
                core.pin(owner)
                return core
        raise RuntimeError(
            f"no free core for {owner!r}: all {len(self.cores)} pinned"
        )

    def release(self, core: CpuCore) -> None:
        core.unpin()

    # ------------------------------------------------------------------
    def total_utilization(self, elapsed_ns: int, mode: ExecMode = None) -> float:
        """Mean busy fraction across all cores (system-wide view)."""
        if elapsed_ns <= 0 or not self.cores:
            return 0.0
        return sum(
            core.utilization(elapsed_ns, mode) for core in self.cores
        ) / len(self.cores)

    def busiest_core(self) -> CpuCore:
        return max(self.cores, key=lambda core: core.accounting.busy_ns())
