"""The stable public facade: build a testbed, describe a job, run it.

This module is the supported way to construct and drive the simulated
I/O stack.  It consolidates the construction keywords that used to be
re-plumbed through ``core/experiment.py``, ``core/runners.py``, and the
figure modules into two frozen dataclasses:

* :class:`Testbed` — *what hardware and host path*: a **named device**
  (registry name like ``"zssd"``, spec-file path, live
  :class:`~repro.ssd.spec.DeviceSpec`, or raw
  :class:`~repro.ssd.config.SsdConfig` — with config overrides), kernel
  vs. SPDK stack, completion method, preconditioning, seeds, and an
  optional :class:`~repro.faults.FaultPlan`;
* :class:`JobConfig` — *what workload*: pattern, engine, block size,
  queue depth, I/O count, pattern seed.

Typical use::

    from repro.api import Testbed, JobConfig, list_devices

    print(list_devices())  # ('intel750', ..., 'qlc', ..., 'zssd')
    testbed = Testbed(device="zssd", completion="poll")
    result = testbed.run_job(JobConfig(rw="randread", io_count=2000))
    print(result.latency.mean_us)

``device`` accepts, in one argument:

* a registry name from :func:`list_devices` (``"zssd"``,
  ``"intel750"``, ``"qlc"``, ...) or a preset alias (``"ull"``,
  ``"nvme"`` — the paper's two devices built by the hand-wired
  presets);
* a path to a ``.toml``/``.json`` spec file
  (:func:`load_device_spec` loads one explicitly);
* a :class:`~repro.ssd.spec.DeviceSpec` or a full
  :class:`~repro.ssd.config.SsdConfig` object.

Everything here is deterministic: the same testbed + job produce
byte-identical results on every run, in any process.  The legacy
helpers ``run_sync_job``/``run_async_job`` in ``repro.core.experiment``
and the ``ull_ssd_config``/``nvme_ssd_config`` preset constructors in
``repro.ssd.presets`` are deprecation shims over this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from repro.core.experiment import DeviceKind
from repro.core.sweep import DeviceSnapshot, Measurement
from repro.faults.plan import FaultPlan
from repro.host.costs import DEFAULT_COSTS, SoftwareCosts
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.sim.engine import Simulator
from repro.spdk.stack import SpdkStack
from repro.ssd.config import SsdConfig
from repro.ssd.device import SsdDevice
from repro.ssd.registry import list_devices, load_device_spec, resolve_config
from repro.ssd.spec import DeviceSpec, DeviceSpecError
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import JobResult
from repro.workloads.runner import run_job as _run_job_on

__all__ = [
    "DeviceSpec",
    "DeviceSpecError",
    "JobConfig",
    "Testbed",
    "device_snapshot",
    "list_devices",
    "load_device_spec",
    "open_device",
    "run_job",
]


def _name_of(value: object) -> str:
    """Accept ``"kernel"`` or ``StackKind.KERNEL`` alike."""
    if isinstance(value, enum.Enum):
        return str(value.value)
    return str(value)


def device_snapshot(device: SsdDevice, *, label: str = "") -> DeviceSnapshot:
    """Detach the device-side state figures read after a run.

    ``label`` stamps the snapshot with the registry/spec name the device
    was resolved from; when omitted, the label attached by
    :func:`repro.ssd.registry.resolve_config` (or the config's display
    name) is used.
    """
    from repro.ssd.registry import spec_label

    events = device.stats.gc_events
    return DeviceSnapshot(
        gc_events=len(events),
        first_gc_ns=events[0].start_ns if events else -1,
        write_amplification=device.ftl.write_amplification(),
        erases=int(device.ftl.erases),
        power_series=device.power.series,
        device=label or spec_label(device.config),
    )


# ----------------------------------------------------------------------
# The workload description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobConfig:
    """One fio-style job, independent of the stack that runs it.

    ``engine`` is ``"psync"`` (synchronous) or ``"libaio"``
    (asynchronous, honors ``iodepth``); on an SPDK testbed the engine is
    always the SPDK plugin path regardless.  ``seed`` drives the access
    pattern; ``name`` defaults to a testbed-derived label.
    """

    rw: str
    engine: str = "psync"
    block_size: int = 4096
    iodepth: int = 1
    io_count: int = 1000
    write_fraction: float = 0.5
    seed: int = 1234
    capture_timeseries: bool = False
    name: Optional[str] = None


# ----------------------------------------------------------------------
# The hardware + host-path description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Testbed:
    """A named device plus the host path that drives it.

    A testbed is a *description* — building it allocates nothing.  Each
    :meth:`run_job`/:meth:`run` call constructs a fresh simulator,
    device, and stack, so runs are independent and reproducible.

    ``device`` names the hardware: a registry name (``"zssd"``,
    ``"intel750"``, ``"qlc"``, ... — see :func:`list_devices`), a preset
    alias (``"ull"``/``"nvme"`` or a
    :class:`~repro.core.experiment.DeviceKind`), a path to a
    ``.toml``/``.json`` spec file, a :class:`DeviceSpec`, or a raw
    :class:`SsdConfig`.  ``config`` substitutes a full
    :class:`SsdConfig` outright (it wins over ``device``), and
    ``config_overrides`` applies ``(field, value)`` pairs on top of
    either.  ``faults`` attaches a :class:`~repro.faults.FaultPlan`,
    threaded to every layer that can inject failures.
    """

    #: Keep pytest from trying to collect this class when imported into
    #: test modules (its name matches the default Test* pattern).
    __test__ = False

    device: Union[str, DeviceKind, DeviceSpec, SsdConfig] = "ull"
    stack: str = "kernel"
    completion: str = "interrupt"
    precondition: float = 1.0
    light: bool = False
    sleep_fraction: Optional[float] = None
    config: Optional[SsdConfig] = None
    config_overrides: Tuple = ()
    queue_depth: int = 1024
    costs: Optional[SoftwareCosts] = None
    device_seed: int = 42
    stack_seed: int = 11
    faults: Optional[FaultPlan] = None

    # ------------------------------------------------------------------
    @property
    def device_name(self) -> str:
        """A short label for the device — registry/spec name, preset
        alias, or the config's model name for raw configs."""
        if isinstance(self.device, DeviceSpec):
            return self.device.name
        if isinstance(self.device, SsdConfig):
            from repro.ssd.registry import spec_label

            return spec_label(self.device)
        return _name_of(self.device)

    @property
    def stack_name(self) -> str:
        return _name_of(self.stack)

    def device_config(self) -> SsdConfig:
        """The fully resolved :class:`SsdConfig` this testbed builds."""
        import dataclasses

        if self.config is not None:
            overrides = dict(self.config_overrides)
            if overrides:
                return dataclasses.replace(self.config, **overrides)
            return self.config
        device = self.device
        if isinstance(device, enum.Enum):
            device = str(device.value)
        return resolve_config(device, self.config_overrides)

    # ------------------------------------------------------------------
    def open_device(self, sim: Simulator) -> SsdDevice:
        """A fresh (optionally preconditioned) device on ``sim``."""
        device = SsdDevice(
            sim, self.device_config(), seed=self.device_seed, faults=self.faults
        )
        if self.precondition > 0:
            device.precondition(self.precondition)
        return device

    def build(self, sim: Simulator) -> Tuple[SsdDevice, Any]:
        """Construct the full path on ``sim``; returns (device, host).

        The construction order matches the historical helpers exactly,
        so results are bit-identical to the pre-facade code.
        """
        device = self.open_device(sim)
        if self.stack_name == "spdk":
            host = SpdkStack(
                sim,
                device,
                costs=self.costs or DEFAULT_COSTS,
                queue_depth=self.queue_depth,
                faults=self.faults,
            )
        else:
            qpair = None
            if self.light:
                from repro.nvme.lightweight import LightQueuePair

                qpair = LightQueuePair(
                    sim,
                    device,
                    interrupts_enabled=(_name_of(self.completion) == "interrupt"),
                )
            host = KernelStack(
                sim,
                device,
                completion=CompletionMethod(_name_of(self.completion)),
                costs=self.costs or DEFAULT_COSTS,
                seed=self.stack_seed,
                queue_depth=self.queue_depth,
                qpair=qpair,
                thin_submit=self.light,
                faults=self.faults,
            )
            if self.sleep_fraction is not None:
                host.engine.sleep_fraction = self.sleep_fraction
        return device, host

    # ------------------------------------------------------------------
    def job(self, config: JobConfig) -> FioJob:
        """Materialize ``config`` as a :class:`FioJob` for this testbed."""
        if self.stack_name == "spdk":
            engine_kind = IoEngineKind.SPDK
        elif config.engine == "libaio":
            engine_kind = IoEngineKind.LIBAIO
        else:
            engine_kind = IoEngineKind.PSYNC
        name = config.name or (
            f"{self.device_name}-{config.rw}-{config.block_size}"
            f"-qd{config.iodepth}"
        )
        return FioJob(
            name=name,
            rw=config.rw,
            block_size=config.block_size,
            engine=engine_kind,
            iodepth=config.iodepth,
            io_count=config.io_count,
            write_fraction=config.write_fraction,
            seed=config.seed,
            capture_timeseries=config.capture_timeseries,
        )

    def run_job(
        self, config: JobConfig, *, want_device: bool = False
    ) -> Union[JobResult, Tuple[JobResult, SsdDevice]]:
        """Run ``config`` on a fresh simulator; returns the
        :class:`JobResult` (with the live device when asked)."""
        sim = Simulator()
        device, host = self.build(sim)
        result = _run_job_on(sim, host, self.job(config))
        if want_device:
            return result, device
        return result

    def run(self, config: JobConfig, *, want_device: bool = False) -> Measurement:
        """Run ``config`` and package the outcome as a detached
        :class:`Measurement` (what sweep runners return)."""
        result, device = self.run_job(config, want_device=True)
        return Measurement(
            result=result,
            device=device_snapshot(device) if want_device else None,
        )


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def open_device(
    sim: Simulator,
    device: Union[str, DeviceKind, DeviceSpec, SsdConfig] = "ull",
    **kwargs: Any,
) -> SsdDevice:
    """A fresh device on ``sim`` (keywords as on :class:`Testbed`)."""
    return Testbed(device=device, **kwargs).open_device(sim)


def run_job(
    config: JobConfig, testbed: Optional[Testbed] = None, **kwargs: Any
) -> JobResult:
    """Run one job on ``testbed`` (default: preconditioned ULL over the
    interrupt-driven kernel stack)."""
    if testbed is None:
        testbed = Testbed(**kwargs)
    elif kwargs:
        raise TypeError("pass either a testbed or testbed keywords, not both")
    return testbed.run_job(config)
