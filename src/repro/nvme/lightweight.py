"""A lightweight NCQ-style queue protocol — the paper's Section IV-C
implication, implemented.

The paper observes that the ULL SSD reaches its maximum bandwidth with
only ~8-16 queue entries, and concludes that NVMe's rich multi-queue
machinery (64 K-entry rings in host memory, DMA'd SQEs, doorbell
round trips) is *overkill* for ultra-low-latency devices: "a future
ULL-enabled system may require to have a lighter queue mechanism and
simpler protocol, such as NCQ of SATA".

:class:`LightQueuePair` is that prototype: a 32-entry register-latched
queue.  Commands are written straight into device registers (one MMIO
write burst, no SQE fetch DMA), completions are exposed through a
status register (one uncached load to check, no CQE ring or phase
tags).  It keeps the :class:`~repro.nvme.controller.NvmeQueuePair`
submit/complete interface so the kernel stack and workload engines run
on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.nvme.command import NvmeCommand, Opcode
from repro.nvme.controller import PendingCommand
from repro.nvme.queue import QueueFull
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.ssd.device import IoOp, SsdDevice
from repro.units import Bytes

if TYPE_CHECKING:
    from repro.obs.tracer import IoTrace


@dataclass(frozen=True)
class LightQueueTimings:
    """Protocol latencies of the register-based queue.

    Compare :class:`~repro.nvme.controller.NvmeTimings`: the command is
    latched by the register write itself (no separate SQE fetch DMA),
    and completion is a status-register update (no CQE DMA into host
    memory).
    """

    issue_ns: int = 150  # MMIO burst latches the command in the device
    complete_ns: int = 80  # status register update visible to the host


class LightQueuePair:
    """NCQ-like shallow queue with register-latched commands."""

    #: NCQ's native command queue depth.
    DEPTH = 32

    def __init__(
        self,
        sim: Simulator,
        device: SsdDevice,
        *,
        timings: Optional[LightQueueTimings] = None,
        interrupts_enabled: bool = True,
    ) -> None:
        self.sim = sim
        self.device = device
        self.timings = timings or LightQueueTimings()
        self.interrupts_enabled = interrupts_enabled
        self._pending: Dict[int, PendingCommand] = {}
        self._free_slots: List[int] = list(range(self.DEPTH))
        # One device-done callback per register slot, created once: a
        # slot holds at most one outstanding command, so the closure can
        # be reused instead of allocating a lambda per command.
        self._done_callbacks: List[Callable[[Event], None]] = [
            self._make_done(slot) for slot in range(self.DEPTH)
        ]
        self._msi_handlers: List[Callable[[PendingCommand], None]] = []
        self.submitted = 0
        self.completed = 0
        registry = sim.obs.registry
        self._m_submitted = registry.counter(
            "lightq.submitted", help="register-latched commands issued"
        )
        self._m_outstanding = registry.gauge(
            "lightq.outstanding", unit="cmds", help="NCQ slots in use"
        )
        self._t_outstanding = sim.obs.telemetry.series(
            "lightq.outstanding", "level", unit="cmds"
        )

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def on_msi(self, handler: Callable[[PendingCommand], None]) -> None:
        self._msi_handlers.append(handler)

    # ------------------------------------------------------------------
    def submit(
        self, op: IoOp, offset: Bytes, nbytes: int, *,
        trace: "Optional[IoTrace]" = None,
    ) -> PendingCommand:
        """Latch a command into a free register slot."""
        if not self._free_slots:
            raise QueueFull(f"all {self.DEPTH} NCQ slots are busy")
        slot = self._free_slots.pop()
        opcode = Opcode.READ if op is IoOp.READ else Opcode.WRITE
        command = NvmeCommand.from_bytes(slot, opcode, offset, nbytes)
        pending = PendingCommand(
            command=command,
            submit_ns=self.sim.now,
            cqe_event=Event(self.sim),
            trace=trace,
        )
        self._pending[slot] = pending
        self.submitted += 1
        self._m_submitted.inc()
        self._m_outstanding.add(1, self.sim.now)
        self._t_outstanding.record(self.sim.now, len(self._pending))
        if trace is not None:
            # MMIO burst in flight: the light-queue analog of the SQ ring.
            trace.phase("nvme_sq", self.sim.now)
        # The register write itself delivers the command.
        self.sim.schedule(self.timings.issue_ns, self._execute, slot, op)
        return pending

    # ------------------------------------------------------------------
    def _make_done(self, slot: int) -> Callable[[Event], None]:
        def done(_event: Event) -> None:
            self._device_done(slot)

        return done

    def _execute(self, slot: int, op: IoOp) -> None:
        pending = self._pending[slot]
        command = pending.command
        if pending.trace is not None:
            pending.trace.phase("ctrl", self.sim.now)
        request = self.device.submit(
            op, command.offset_bytes, command.nbytes, trace=pending.trace
        )
        request.done.add_callback(self._done_callbacks[slot])

    def _device_done(self, slot: int) -> None:
        if self._pending[slot].trace is not None:
            self._pending[slot].trace.phase("cqe_post", self.sim.now)
        self.sim.schedule(self.timings.complete_ns, self._post_status, slot)

    def _post_status(self, slot: int) -> None:
        pending = self._pending.pop(slot)
        self._free_slots.append(slot)
        pending.cqe_ns = self.sim.now
        self.completed += 1
        self._m_outstanding.add(-1, self.sim.now)
        self._t_outstanding.record(self.sim.now, len(self._pending))
        pending.cqe_event.succeed(pending)
        if self.interrupts_enabled:
            for handler in self._msi_handlers:
                handler(pending)
