"""NVMe queue rings and doorbells.

Both queues are circular buffers in host memory (mapped through PCIe
BARs); the host owns the SQ tail and CQ head, the device owns the SQ
head and CQ tail.  New completion entries are detected via the phase
tag, which the device flips on every wrap — exactly the bit the kernel's
``nvme_poll`` and SPDK's ``process_completions`` spin on.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.nvme.command import CompletionEntry, NvmeCommand, StatusCode


class QueueFull(Exception):
    """Submission attempted with no free SQ slot."""


class Doorbell:
    """A doorbell register; writing it notifies the other side."""

    def __init__(self, on_write: Optional[Callable[[int], None]] = None) -> None:
        self.value = 0
        self.writes = 0
        self._on_write = on_write

    def write(self, value: int) -> None:
        self.value = value
        self.writes += 1
        if self._on_write is not None:
            self._on_write(value)


class SubmissionQueue:
    """Host-filled command ring, device-drained FIFO."""

    def __init__(self, depth: int) -> None:
        if depth < 2:
            raise ValueError("queue depth must be >= 2")
        self.depth = depth
        self._ring: List[Optional[NvmeCommand]] = [None] * depth
        self.tail = 0  # host-owned
        self.head = 0  # device-owned
        self.tail_doorbell = Doorbell()

    def occupancy(self) -> int:
        return (self.tail - self.head) % self.depth

    @property
    def is_full(self) -> bool:
        # One slot is sacrificed to distinguish full from empty.
        return self.occupancy() == self.depth - 1

    @property
    def is_empty(self) -> bool:
        return self.tail == self.head

    def push(self, command: NvmeCommand) -> None:
        """Host: place a command and ring the tail doorbell."""
        if self.is_full:
            raise QueueFull(f"submission queue full (depth {self.depth})")
        self._ring[self.tail] = command
        self.tail = (self.tail + 1) % self.depth
        self.tail_doorbell.write(self.tail)

    def fetch(self) -> NvmeCommand:
        """Device: take the oldest command."""
        if self.is_empty:
            raise IndexError("submission queue empty")
        command = self._ring[self.head]
        assert command is not None
        self._ring[self.head] = None
        self.head = (self.head + 1) % self.depth
        return command


class CompletionQueue:
    """Device-filled completion ring with phase-tag detection."""

    def __init__(self, depth: int) -> None:
        if depth < 2:
            raise ValueError("queue depth must be >= 2")
        self.depth = depth
        self._ring: List[Optional[CompletionEntry]] = [None] * depth
        self.tail = 0  # device-owned
        self.head = 0  # host-owned
        self._device_phase = 1
        self._host_phase = 1
        self.head_doorbell = Doorbell()

    def post(self, cid: int, sq_head: int, status: StatusCode) -> CompletionEntry:
        """Device: append a completion entry with the current phase."""
        entry = CompletionEntry(
            cid=cid, sq_head=sq_head, status=status, phase=self._device_phase
        )
        self._ring[self.tail] = entry
        self.tail = (self.tail + 1) % self.depth
        if self.tail == 0:
            self._device_phase ^= 1
        return entry

    def peek(self) -> Optional[CompletionEntry]:
        """Host: new entry at the head, if its phase tag matches."""
        entry = self._ring[self.head]
        if entry is None or entry.phase != self._host_phase:
            return None
        return entry

    def reap(self) -> Optional[CompletionEntry]:
        """Host: consume the entry at the head and ring the doorbell."""
        entry = self.peek()
        if entry is None:
            return None
        self._ring[self.head] = None
        self.head = (self.head + 1) % self.depth
        if self.head == 0:
            self._host_phase ^= 1
        self.head_doorbell.write(self.head)
        return entry
