"""NVMe protocol substrate.

Faithful-enough models of the structures the paper describes in Section
II-B2: submission/completion queue rings with phase tags, doorbell
registers mapped through PCIe BARs, MSI completion signalling, and a
controller front-end that fetches commands and posts completions with
protocol-level latencies.
"""

from repro.nvme.command import CompletionEntry, NvmeCommand, Opcode, StatusCode
from repro.nvme.queue import CompletionQueue, Doorbell, QueueFull, SubmissionQueue
from repro.nvme.controller import NvmeController, NvmeQueuePair, NvmeTimings, PendingCommand
from repro.nvme.lightweight import LightQueuePair, LightQueueTimings

__all__ = [
    "Opcode",
    "StatusCode",
    "NvmeCommand",
    "CompletionEntry",
    "SubmissionQueue",
    "CompletionQueue",
    "Doorbell",
    "QueueFull",
    "NvmeController",
    "NvmeQueuePair",
    "NvmeTimings",
    "PendingCommand",
    "LightQueuePair",
    "LightQueueTimings",
]
