"""NVMe controller front-end and queue pairs.

The controller sits between the host driver (kernel or SPDK) and the
:class:`~repro.ssd.device.SsdDevice`: a tail-doorbell write triggers a
command fetch (one PCIe read of the SQE), the command is handed to the
device, and when the device finishes the controller posts a CQE and —
when interrupts are enabled on the queue pair — raises an MSI.

Host-side software costs (ISR, polling, syscalls) do NOT live here;
completion engines in :mod:`repro.kstack` and :mod:`repro.spdk` layer
them on top of the ``cqe_event`` each submission exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.nvme.command import NvmeCommand, Opcode, StatusCode
from repro.nvme.queue import CompletionQueue, QueueFull, SubmissionQueue
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.ssd.device import IoOp, SsdDevice
from repro.units import Bytes

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.obs.tracer import IoTrace

_OPCODE_OF = {IoOp.READ: Opcode.READ, IoOp.WRITE: Opcode.WRITE, IoOp.TRIM: Opcode.DSM}
_OP_OF = {opcode: op for op, opcode in _OPCODE_OF.items()}


@dataclass(frozen=True)
class NvmeTimings:
    """Protocol-level latencies (PCIe round trips for queue traffic)."""

    sq_fetch_ns: int = 400  # doorbell -> SQE DMA'd into the controller
    cqe_post_ns: int = 200  # device done -> CQE visible in host memory
    msi_ns: int = 100  # CQE -> MSI write reaches the host bridge


@dataclass
class PendingCommand:
    """A submitted command awaiting completion."""

    command: NvmeCommand
    submit_ns: int
    cqe_event: Event  # fires when the CQE lands in host memory
    cqe_ns: Optional[int] = None
    trace: Optional[object] = None  # the I/O's obs span context, if traced


class NvmeQueuePair:
    """One SQ/CQ pair bound to a controller.

    ``interrupts_enabled`` controls whether the controller raises MSIs;
    the polled and SPDK paths disable them (Section II-B3/4).
    """

    def __init__(
        self,
        sim: Simulator,
        device: SsdDevice,
        *,
        depth: int = 1024,
        timings: Optional[NvmeTimings] = None,
        interrupts_enabled: bool = True,
        fault_injector: "Optional[FaultInjector]" = None,
        index: int = 0,
    ) -> None:
        self.sim = sim
        self.device = device
        self.timings = timings or NvmeTimings()
        self.interrupts_enabled = interrupts_enabled
        self.index = index
        self.sq = SubmissionQueue(depth)
        self.cq = CompletionQueue(depth)
        self._pending: Dict[int, PendingCommand] = {}
        self._next_cid = 0
        self._msi_handlers: List[Callable[[PendingCommand], None]] = []
        # Statistics.
        self.submitted = 0
        self.completed = 0
        self.timeouts = 0
        self.resets = 0
        # Observability (no-op instruments unless a registry is installed).
        registry = sim.obs.registry
        self._m_submitted = registry.counter("nvme.sq.submitted", help="SQEs issued")
        self._m_completed = registry.counter("nvme.cq.completed", help="CQEs posted")
        self._m_outstanding = registry.gauge(
            "nvme.qpair.outstanding", unit="cmds", help="commands in flight"
        )
        telemetry = sim.obs.telemetry
        self._t_sq_depth = telemetry.series(
            f"nvme.q{index}.sq_occupancy", "level", unit="sqes"
        )
        self._t_outstanding = telemetry.series(
            f"nvme.q{index}.outstanding", "level", unit="cmds"
        )
        self._t_fault_recovery = telemetry.series(
            "faults.nvme.recovery", "busy", unit="frac"
        )
        # Fault injection (repro.faults): lost completions recovered by
        # the host's command timer; see NvmeFaults.
        self._faults = fault_injector
        if self._faults is not None:
            self._m_timeouts = registry.counter(
                "faults.nvme.timeouts",
                help="injected command timeouts (completion lost)",
            )
            self._m_resets = registry.counter(
                "faults.nvme.resets", help="controller resets forced by timeouts"
            )

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def on_msi(self, handler: Callable[[PendingCommand], None]) -> None:
        """Register an MSI handler (the kernel driver's ISR entry)."""
        self._msi_handlers.append(handler)

    # ------------------------------------------------------------------
    def submit(
        self, op: IoOp, offset: Bytes, nbytes: int, *,
        trace: "Optional[IoTrace]" = None,
    ) -> PendingCommand:
        """Build an SQE, ring the doorbell, return the pending command."""
        if self.sq.is_full:
            raise QueueFull("no free submission queue entry")
        opcode = _OPCODE_OF[op]
        cid = self._allocate_cid()
        command = NvmeCommand.from_bytes(cid, opcode, offset, nbytes)
        pending = PendingCommand(
            command=command,
            submit_ns=self.sim.now,
            cqe_event=Event(self.sim),
            trace=trace,
        )
        self._pending[cid] = pending
        self.sq.push(command)
        self.submitted += 1
        self._m_submitted.inc()
        self._m_outstanding.add(1, self.sim.now)
        self._t_sq_depth.record(self.sim.now, self.sq.occupancy())
        self._t_outstanding.record(self.sim.now, len(self._pending))
        if trace is not None:
            # Doorbell rung: the SQE sits in the ring until the fetch DMA.
            trace.phase("nvme_sq", self.sim.now)
        # Controller fetches the SQE one PCIe round-trip later.
        self.sim.schedule(self.timings.sq_fetch_ns, self._fetch_and_execute)
        return pending

    # ------------------------------------------------------------------
    def _allocate_cid(self) -> int:
        for _ in range(self.sq.depth):
            cid = self._next_cid
            self._next_cid = (self._next_cid + 1) % (1 << 16)
            if cid not in self._pending:
                return cid
        raise QueueFull("no free command identifier")

    def _fetch_and_execute(self) -> None:
        if self.sq.is_empty:
            return  # already fetched by an earlier doorbell callback
        command = self.sq.fetch()
        self._t_sq_depth.record(self.sim.now, self.sq.occupancy())
        self._execute(command, attempt=0)

    def _execute(self, command: NvmeCommand, attempt: int) -> None:
        """Hand one command to the device; ``attempt`` counts injected
        timeouts already suffered by this command."""
        op = _OP_OF[command.opcode]
        pending = self._pending[command.cid]
        trace = pending.trace
        if trace is not None:
            # SQE is in the controller: firmware takes over.
            trace.phase("ctrl", self.sim.now)
            if attempt == 0:
                # SQ residence beyond the fetch DMA itself is queueing
                # behind earlier doorbells (head-of-line blocking).
                trace.wait(
                    f"nvme.q{self.index}",
                    "sq_backlog",
                    pending.submit_ns + self.timings.sq_fetch_ns,
                    self.sim.now,
                )
        request = self.device.submit(
            op, command.offset_bytes, command.nbytes, trace=trace
        )
        fi = self._faults
        if (
            fi is not None
            and attempt < fi.spec.max_retries
            and fi.roll(fi.spec.timeout_prob)
        ):
            # Injected fault: the completion is lost in flight.  The
            # device still did the work; nothing reaches the CQ until
            # the host's command timer expires and the command is
            # aborted and re-delivered.
            self.sim.schedule(
                fi.spec.timeout_ns, self._command_timeout, command, attempt + 1
            )
            return
        request.done.add_callback(lambda _event, cid=command.cid: self._device_done(cid))

    def _command_timeout(self, command: NvmeCommand, attempt: int) -> None:
        """The host's timer fired: abort and re-deliver the command.

        The ``reset_after``-th timeout of the same command escalates to
        a controller reset (``reset_ns`` of recovery) before the retry —
        the nvme driver's timeout handler does exactly this ladder.
        """
        pending = self._pending.get(command.cid)
        if pending is None:
            return
        fi = self._faults
        self.timeouts += 1
        self._m_timeouts.inc()
        now = self.sim.now
        self._t_fault_recovery.add_interval(now - fi.spec.timeout_ns, now)
        if pending.trace is not None:
            pending.trace.annotate(
                "nvme_timeout", now - fi.spec.timeout_ns, now, attempt=attempt
            )
            pending.trace.wait(
                f"nvme.q{self.index}",
                "timeout_recovery",
                now - fi.spec.timeout_ns,
                now,
            )
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.span(
                "faults",
                "nvme_timeout",
                now - fi.spec.timeout_ns,
                now,
                cid=command.cid,
                attempt=attempt,
            )
        if attempt >= fi.spec.reset_after:
            self.resets += 1
            self._m_resets.inc()
            self._t_fault_recovery.add_interval(now, now + fi.spec.reset_ns)
            if tracer.enabled:
                tracer.span(
                    "faults", "nvme_reset", now, now + fi.spec.reset_ns,
                    cid=command.cid,
                )
            if pending.trace is not None:
                pending.trace.annotate(
                    "nvme_reset", now, now + fi.spec.reset_ns
                )
                pending.trace.wait(
                    f"nvme.q{self.index}",
                    "controller_reset",
                    now,
                    now + fi.spec.reset_ns,
                )
            self.sim.schedule(fi.spec.reset_ns, self._execute, command, attempt)
        else:
            self._execute(command, attempt)

    def _device_done(self, cid: int) -> None:
        trace = self._pending[cid].trace
        if trace is not None:
            trace.phase("cqe_post", self.sim.now)
        self.sim.schedule(self.timings.cqe_post_ns, self._post_cqe, cid)

    def _post_cqe(self, cid: int) -> None:
        pending = self._pending.pop(cid, None)
        if pending is None:
            raise RuntimeError(f"completion for unknown cid {cid}")
        self.cq.post(cid, self.sq.head, StatusCode.SUCCESS)
        self.cq.reap()  # host consumes on detection; keep the ring tidy
        pending.cqe_ns = self.sim.now
        self.completed += 1
        self._m_completed.inc()
        self._m_outstanding.add(-1, self.sim.now)
        self._t_outstanding.record(self.sim.now, len(self._pending))
        pending.cqe_event.succeed(pending)
        if self.interrupts_enabled:
            self.sim.schedule(self.timings.msi_ns, self._raise_msi, pending)

    def _raise_msi(self, pending: PendingCommand) -> None:
        for handler in self._msi_handlers:
            handler(pending)


class NvmeController:
    """Factory tying an SSD to its queue pairs.

    Real controllers expose up to 64 K queues through BAR-mapped
    doorbells; experiments here use one I/O queue pair per core, which
    is how the paper runs fio (one core, one queue).
    """

    def __init__(
        self,
        sim: Simulator,
        device: SsdDevice,
        *,
        timings: Optional[NvmeTimings] = None,
        faults: "Optional[FaultPlan]" = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.timings = timings or NvmeTimings()
        self.faults = faults
        self.queue_pairs: List[NvmeQueuePair] = []

    def create_queue_pair(
        self, *, depth: int = 1024, interrupts_enabled: bool = True
    ) -> NvmeQueuePair:
        injector = (
            self.faults.injector("nvme", index=len(self.queue_pairs))
            if self.faults is not None
            else None
        )
        pair = NvmeQueuePair(
            self.sim,
            self.device,
            depth=depth,
            timings=self.timings,
            interrupts_enabled=interrupts_enabled,
            fault_injector=injector,
            index=len(self.queue_pairs),
        )
        self.queue_pairs.append(pair)
        return pair
