"""NVMe command and completion entry structures.

LBAs are 512-byte sectors as in the NVMe specification; the queue pair
converts the byte-addressed requests used elsewhere in the simulator.
"""

from __future__ import annotations

import enum

from repro.units import Bytes
from dataclasses import dataclass

SECTOR_SIZE = 512


class Opcode(enum.IntEnum):
    """NVM command set opcodes (NVMe 1.3, Figure 188)."""

    FLUSH = 0x00
    WRITE = 0x01
    READ = 0x02
    DSM = 0x09  # Dataset Management (deallocate / TRIM)


class StatusCode(enum.IntEnum):
    """Generic command status (success only — media errors are modeled
    as latency, not failures)."""

    SUCCESS = 0x0


@dataclass(frozen=True)
class NvmeCommand:
    """One submission queue entry (64 bytes on the wire)."""

    cid: int  # command identifier
    opcode: Opcode
    slba: int  # starting LBA (512 B sectors)
    nlb: int  # number of logical blocks, 0's-based per spec

    def __post_init__(self) -> None:
        if self.cid < 0 or self.slba < 0 or self.nlb < 0:
            raise ValueError("command fields must be non-negative")

    @property
    def offset_bytes(self) -> int:
        return self.slba * SECTOR_SIZE

    @property
    def nbytes(self) -> int:
        return (self.nlb + 1) * SECTOR_SIZE  # nlb is 0's-based

    @classmethod
    def from_bytes(
        cls, cid: int, opcode: Opcode, offset: Bytes, nbytes: int
    ) -> "NvmeCommand":
        if offset % SECTOR_SIZE or nbytes % SECTOR_SIZE:
            raise ValueError("offset and size must be sector-aligned")
        return cls(
            cid=cid,
            opcode=opcode,
            slba=offset // SECTOR_SIZE,
            nlb=nbytes // SECTOR_SIZE - 1,
        )


@dataclass(frozen=True)
class CompletionEntry:
    """One completion queue entry (16 bytes on the wire).

    ``phase`` is the phase tag the host compares against its expected
    phase to detect new entries — the bit ``nvme_poll`` spins on.
    """

    cid: int
    sq_head: int
    status: StatusCode
    phase: int

    def __post_init__(self) -> None:
        if self.phase not in (0, 1):
            raise ValueError("phase tag is a single bit")
