"""The two devices the paper measures.

Capacities are scaled down (hundreds of MiB) so GC experiments run in
seconds; every latency/bandwidth-relevant parameter keeps its
paper-derived value.  Docstrings note the provenance of each number.

These hand-wired builders are the byte-identity reference for the
``zssd``/``intel750`` specs in the device zoo (``devices/``), and the
construction path behind the ``"ull"``/``"nvme"`` preset names — which
is why their sweep cache identity never changed when the registry
landed.  The public ``ull_ssd_config``/``nvme_ssd_config`` entry points
are deprecated shims; new code names devices through
:mod:`repro.ssd.registry` / :class:`repro.api.Testbed` instead.
"""

from __future__ import annotations

import warnings

from repro.flash.timing import PLANAR_MLC, Z_NAND
from repro.ssd.config import SsdConfig
from repro.ssd.power import PowerParams


def build_ull_preset(
    *,
    blocks_per_die: int = 34,
    pages_per_block: int = 128,
    write_buffer_units: int = 256,
) -> SsdConfig:
    """The 800 GB Z-SSD prototype (scaled capacity).

    * Z-NAND timing from Table I: tR = 3 µs, tPROG = 100 µs, 2 KB pages.
    * 16 physical channels paired into 8 super-channels (Section II-A2);
      a config "die" is a lockstep pair, so ``channel_mbps`` is the pair
      rate (2 x 1200 MB/s) and each program commits a dual-plane pair
      page = 2 x 2 x 2 KB = 8 KB = 2 mapping units.
    * Program suspend/resume enabled (Section II-A3).
    * Small write buffer: Z-NAND is fast enough not to need a large
      DRAM cache, and the paper's Fig. 4a shows writes tracking reads.
    * Power: SLC-like Z-NAND programs with fewer incremental-step pulses
      than MLC, hence the lower per-die program power (Section IV-D2).
    """
    return SsdConfig(
        name="ULL SSD (Z-SSD)",
        timing=Z_NAND,
        channels=8,  # super-channels (16 physical channels)
        ways_per_channel=4,
        blocks_per_die=blocks_per_die,
        pages_per_block=pages_per_block,
        physical_dies_per_die=2,
        units_per_program=2,
        super_channel=True,
        suspend_resume=True,
        channel_mbps=2400,  # split-DMA drives the pair in lockstep
        read_fw_ns=1_500,
        write_fw_ns=2_800,
        completion_fw_ns=500,
        write_buffer_units=write_buffer_units,
        flush_coalesce_ns=15_000,
        read_cache_units=0,
        prefetch_ahead=0,
        dram_hit_ns=1_200,
        pcie_mbps=3200,
        pcie_latency_ns=200,
        # The 800 GB Z-SSD carves its exposed capacity out of ~1 TB of
        # raw Z-NAND: generous overprovisioning keeps the greedy GC's
        # migration cost low enough that sustained random overwrites
        # never outrun the flush path (the flat line of Fig. 7b).
        overprovision=0.20,
        gc_watermark_blocks=2,
        factory_bad_rate=0.002,
        spare_blocks_per_die=2,
        # Prototype controller: partial map cache in SRAM.  Sequential
        # streams hit; random reads fetch the segment first — the
        # paper's 12.6 us (seq) vs 15.9 us (rand) read gap.
        map_cache_segments=16,
        map_segment_units=1024,
        map_fetch_ns=3_300,
        read_stall_prob=1e-4,
        read_stall_ns=350_000,
        write_stall_prob=1e-4,
        write_stall_ns=250_000,
        power=PowerParams(
            idle_w=3.8,
            read_op_w=0.005,  # per physical die; pairs count twice
            program_op_w=0.040,
            erase_op_w=0.060,
            transfer_w=0.015,
        ),
    )


def build_nvme_preset(
    *,
    blocks_per_die: int = 34,
    pages_per_block: int = 256,
    write_buffer_units: int = 2048,
    read_cache_units: int = 4096,
) -> SsdConfig:
    """An Intel 750-class high-end NVMe SSD (scaled capacity).

    * Planar MLC: tR = 70 µs, tPROG = 1.1 ms, 16 KB pages — chosen so a
      cache-missing 4 KB random read lands near the paper's 82.9 µs.
    * 8 channels x 4 ways, dual-plane programs: one program commits
      2 x 16 KB = 32 KB = 8 mapping units, giving the ~0.9 GB/s write
      bandwidth (~40 % of the 1.8 GB/s read max — Fig. 5b's plateau).
    * Large DRAM: a 2048-unit (8 MiB scaled) write buffer explains the
      14.1 µs buffered write latency; a read cache with sequential
      prefetch explains fast sequential reads vs. raw-flash random reads.
    * No suspend/resume: writes block queued reads on their die/channel —
      the I/O interference of Fig. 6.
    """
    return SsdConfig(
        name="NVMe SSD (Intel 750-class)",
        timing=PLANAR_MLC,
        channels=8,
        ways_per_channel=4,
        blocks_per_die=blocks_per_die,
        pages_per_block=pages_per_block,
        physical_dies_per_die=1,
        units_per_program=8,
        super_channel=False,
        suspend_resume=False,
        channel_mbps=800,
        read_fw_ns=2_500,
        write_fw_ns=4_500,
        completion_fw_ns=600,
        write_buffer_units=write_buffer_units,
        flush_coalesce_ns=80_000,
        read_cache_units=read_cache_units,
        prefetch_ahead=8,
        dram_hit_ns=1_500,
        pcie_mbps=3200,
        pcie_latency_ns=200,
        overprovision=0.125,
        gc_watermark_blocks=2,
        factory_bad_rate=0.0,
        spare_blocks_per_die=0,
        read_stall_prob=1e-4,
        read_stall_ns=1_200_000,
        write_stall_prob=1e-4,
        write_stall_ns=2_500_000,
        power=PowerParams(
            idle_w=3.8,
            read_op_w=0.010,
            program_op_w=0.150,
            erase_op_w=0.120,
            transfer_w=0.015,
        ),
    )


# ----------------------------------------------------------------------
# Deprecated shims
# ----------------------------------------------------------------------
def ull_ssd_config(**overrides: int) -> SsdConfig:
    """Deprecated: use ``Testbed(device="zssd")`` or
    ``repro.ssd.registry.resolve_config("zssd")`` instead."""
    warnings.warn(
        "ull_ssd_config is deprecated; name the device instead — "
        "repro.api.Testbed(device='zssd') or "
        "repro.ssd.registry.resolve_config('zssd')",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_ull_preset(**overrides)


def nvme_ssd_config(**overrides: int) -> SsdConfig:
    """Deprecated: use ``Testbed(device="intel750")`` or
    ``repro.ssd.registry.resolve_config("intel750")`` instead."""
    warnings.warn(
        "nvme_ssd_config is deprecated; name the device instead — "
        "repro.api.Testbed(device='intel750') or "
        "repro.ssd.registry.resolve_config('intel750')",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_nvme_preset(**overrides)
