"""The device registry: names -> validated specs -> ``SsdConfig``.

One lookup path for every way a caller can say "this device":

* a **preset name** (``"ull"``/``"nvme"``) — the paper's two hand-wired
  configs, built by :mod:`repro.ssd.presets` exactly as they always
  were (their sweep cache identity is unchanged, so warm caches stay
  warm);
* a **registry name** (``"zssd"``, ``"qlc"``, ...) — a TOML spec from
  the built-in ``devices/`` tree or one registered in-process with
  :func:`register_spec`;
* a **path** (``"specs/mydev.toml"``) — any spec file on disk;
* a live :class:`~repro.ssd.spec.DeviceSpec` or
  :class:`~repro.ssd.config.SsdConfig` object.

Spec-built devices are identified in sweep cache keys by their
canonical :meth:`~repro.ssd.spec.DeviceSpec.spec_hash` (see
:func:`device_identity`), so two spec files describing the same device
share cache entries and any edit re-keys them.

The module also hosts the ambient *device override* the CLI's
``--device`` flag installs: figure grids declared against the paper's
two presets re-point every measurement at the named device, which is
how any existing figure runs across the zoo.
"""

from __future__ import annotations

import contextlib
import dataclasses
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.ssd.config import SsdConfig
from repro.ssd.presets import build_nvme_preset, build_ull_preset
from repro.ssd.spec import DeviceSpec, DeviceSpecError

#: The built-in device zoo: TOML specs shipped with the package.
DEVICES_DIR = Path(__file__).resolve().parents[1] / "devices"

#: The paper's two devices keep their hand-wired preset path (and with
#: it their historical sweep cache identity).  Their spec twins live in
#: the zoo as ``zssd``/``intel750``.
PRESET_NAMES: Tuple[str, ...] = ("ull", "nvme")

DeviceLike = Union[str, DeviceSpec, SsdConfig]

_spec_cache: Dict[str, DeviceSpec] = {}
_registered: Dict[str, DeviceSpec] = {}


# ----------------------------------------------------------------------
# Enumeration and lookup
# ----------------------------------------------------------------------
def list_devices() -> Tuple[str, ...]:
    """Sorted names of every registered device spec (the zoo).

    The ``"ull"``/``"nvme"`` preset aliases are not listed — their spec
    twins ``zssd``/``intel750`` are.
    """
    names = {path.stem for path in DEVICES_DIR.glob("*.toml")}
    names.update(path.stem for path in DEVICES_DIR.glob("*.json"))
    names.update(_registered)
    return tuple(sorted(names))


def register_spec(spec: DeviceSpec) -> DeviceSpec:
    """Register an in-process spec under its name (tests, notebooks)."""
    if spec.name in PRESET_NAMES:
        raise DeviceSpecError(
            f"{spec.name!r} is a reserved preset name", source=spec.source,
            keypath="name", value=spec.name,
        )
    _registered[spec.name] = spec
    return spec


def unregister_spec(name: str) -> None:
    """Remove an in-process registration (no-op for file-backed specs)."""
    _registered.pop(name, None)


def clear_cache() -> None:
    """Drop memoized file-backed specs (tests that rewrite spec files)."""
    _spec_cache.clear()


def load_device_spec(path: Union[str, Path]) -> DeviceSpec:
    """Load and validate a ``.toml``/``.json`` spec file."""
    return DeviceSpec.from_path(path)


def _looks_like_path(device: str) -> bool:
    return "/" in device or device.endswith((".toml", ".json"))


def get_spec(name: str) -> DeviceSpec:
    """The validated spec registered under ``name``.

    Raises :class:`DeviceSpecError` for unknown names, listing what is
    available (presets resolve through :func:`resolve_config`, not
    here — they are configs, not specs).
    """
    registered = _registered.get(name)
    if registered is not None:
        return registered
    cached = _spec_cache.get(name)
    if cached is not None:
        return cached
    for suffix in (".toml", ".json"):
        path = DEVICES_DIR / f"{name}{suffix}"
        if path.is_file():
            spec = DeviceSpec.from_path(path)
            if spec.name != name:
                raise DeviceSpecError(
                    f"spec file {path.name} declares name {spec.name!r}; "
                    "file stem and name must match",
                    source=str(path), keypath="name", value=spec.name,
                )
            _spec_cache[name] = spec
            return spec
    raise DeviceSpecError(
        "unknown device (registered: "
        + ", ".join(list_devices() + PRESET_NAMES) + ")",
        source="<registry>", keypath="device", value=name,
    )


def resolve_spec(device: DeviceLike) -> DeviceSpec:
    """``device`` as a :class:`DeviceSpec` (name, path, or spec object)."""
    if isinstance(device, DeviceSpec):
        return device
    if isinstance(device, SsdConfig):
        from repro.ssd.spec import spec_from_config

        return spec_from_config(device, name=device.name)
    name = _device_name(device)
    if _looks_like_path(name):
        return load_device_spec(name)
    return get_spec(name)


# ----------------------------------------------------------------------
# Resolution to SsdConfig
# ----------------------------------------------------------------------
def _device_name(device: DeviceLike) -> str:
    """Normalize enums (``DeviceKind.ULL``) and strings to one name."""
    value = getattr(device, "value", device)
    return str(value)


def resolve_config(
    device: DeviceLike,
    overrides: Tuple[Tuple[str, Any], ...] = (),
) -> SsdConfig:
    """The fully resolved :class:`SsdConfig` for ``device``.

    ``overrides`` are ``(field, value)`` pairs applied on top via
    ``dataclasses.replace`` — same semantics for presets and specs.
    """
    label: str
    if isinstance(device, SsdConfig):
        config = device
        label = spec_label(config)
    elif isinstance(device, DeviceSpec):
        config = device.to_ssd_config()
        label = device.name
    else:
        name = _device_name(device)
        if name == "ull":
            config, label = build_ull_preset(), "ull"
        elif name == "nvme":
            config, label = build_nvme_preset(), "nvme"
        elif _looks_like_path(name):
            spec = load_device_spec(name)
            config, label = spec.to_ssd_config(), spec.name
        else:
            config, label = get_spec(name).to_ssd_config(), name
    if overrides:
        config = dataclasses.replace(config, **dict(overrides))
    return _with_label(config, label)


def _with_label(config: SsdConfig, label: str) -> SsdConfig:
    """Attach the registry name as a non-field attribute.

    Deliberately *not* a dataclass field: it must stay out of
    ``asdict``/``repr``/``eq`` so preset cache identities (and config
    equality with hand-built configs) are untouched.
    """
    object.__setattr__(config, "_spec_label", label)
    return config


def spec_label(config: SsdConfig) -> str:
    """The registry name a config was resolved from (falls back to its
    display name for hand-built configs)."""
    return str(getattr(config, "_spec_label", config.name))


# ----------------------------------------------------------------------
# Sweep cache identity
# ----------------------------------------------------------------------
def device_identity(
    device: str, overrides: Tuple[Tuple[str, Any], ...] = ()
) -> str:
    """The string that identifies a device inside sweep cache keys.

    * Preset names produce the historical identity — the repr of the
      resolved config — byte-for-byte, so every pre-registry cache
      entry keeps its key.
    * Registry names and spec paths produce ``spec:<name>:<hash>``:
      content-addressed, so editing a spec file re-keys its
      measurements while renaming the file does not change behavior.
    """
    name = _device_name(device)
    if name in PRESET_NAMES:
        config = build_ull_preset() if name == "ull" else build_nvme_preset()
        if overrides:
            config = dataclasses.replace(config, **dict(overrides))
        return repr(sorted(dataclasses.asdict(config).items()))
    spec = load_device_spec(name) if _looks_like_path(name) else get_spec(name)
    identity = f"spec:{spec.name}:{spec.spec_hash()}"
    if overrides:
        identity += f":{sorted(overrides)!r}"
    return identity


# ----------------------------------------------------------------------
# The ambient device override (the CLI's --device flag)
# ----------------------------------------------------------------------
_override: Optional[str] = None


@contextlib.contextmanager
def device_override(device: Optional[str]) -> Iterator[None]:
    """Re-point figure grids at ``device`` for the duration.

    Point constructors consult :func:`effective_device`, so the
    substitution happens at *declaration* time — the override lands in
    each point's canonical parameters (and therefore its cache key),
    and worker processes need no ambient state.
    """
    global _override
    if device is not None:
        # Fail fast, with the single-error contract, before any figure
        # declares a grid against a bad name.
        if not isinstance(device, SsdConfig):
            resolve_config(device)
    previous = _override
    _override = device
    try:
        yield
    finally:
        _override = previous


def effective_device(device: str) -> str:
    """The device a figure's grid should actually measure."""
    return _override if _override is not None else device
