"""The SSD controller: unit-level datapaths and background workers.

Responsibilities (paper Section II-A):

* **Read path** — FTL lookup, write-buffer / read-cache hits, flash array
  read on the owning die (with Z-NAND suspend/resume), channel transfer,
  sequential prefetch staging.
* **Write path** — DRAM write-buffer admission (host sees buffered
  latency); per-die flush workers drain the buffer, batching units into
  physical program operations.
* **Garbage collection** — flush workers reclaim blocks on their die when
  the erased pool drops below the watermark: migrate valid pages
  (on-die copyback), erase, release.  GC operations are booked one at a
  time, so arriving host reads can still suspend the in-flight program
  (the mechanism that makes ULL GC nearly invisible, Fig. 7b).

All flash timing is booked on per-die / per-channel timelines; the
controller itself adds fixed firmware latencies (no embedded-CPU
contention is modeled — flash and buses are the scarce resources).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, List, Optional, Tuple

import numpy as np

from repro.flash.chip import FlashDie
from repro.ftl.allocator import OutOfSpace
from repro.ftl.core import GcPlan, PageMappedFtl
from repro.sim.engine import Simulator
from repro.sim.resources import Store, TimelineResource
from repro.ssd.cache import ReadCache, WriteBuffer
from repro.ssd.channels import ChannelArray
from repro.ssd.config import UNIT_SIZE, SsdConfig
from repro.ssd.power import PowerMeter

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.obs.tracer import IoTrace
    from repro.sim.events import Event


@dataclass
class GcEvent:
    """One completed block reclamation (for the Fig. 7b/8 time series)."""

    die: int
    start_ns: int
    end_ns: int
    migrated_pages: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class ControllerStats:
    """Run counters surfaced through :class:`repro.ssd.device.SsdDevice`."""

    flash_reads: int = 0
    buffer_read_hits: int = 0
    cache_read_hits: int = 0
    unwritten_reads: int = 0
    read_stalls: int = 0
    write_stalls: int = 0
    map_misses: int = 0
    flush_batches: int = 0
    read_retries: int = 0  # injected ECC read retries (repro.faults)
    program_fails: int = 0  # injected program failures (repro.faults)
    blocks_retired: int = 0  # blocks retired to the bad-block list
    gc_events: List[GcEvent] = field(default_factory=list)


class SsdController:
    """Wires FTL, flash array, caches, channels, and power together."""

    def __init__(
        self,
        sim: Simulator,
        config: SsdConfig,
        *,
        seed: int = 42,
        faults: "Optional[FaultPlan]" = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.layout = config.ftl_layout()
        self.ftl = PageMappedFtl(
            self.layout,
            overprovision=config.overprovision,
            gc_watermark_blocks=config.gc_watermark_blocks,
            gc_policy=config.gc_policy,
        )
        self.power = PowerMeter(
            sim, config.power, dies_per_op=config.physical_dies_per_die
        )
        # Telemetry taps ride on the same booking observers the power
        # meter uses; chain them only when a recorder is live so the
        # default path stays a single attribute call.
        telemetry = sim.obs.telemetry
        die_observer = self.power.observe_op
        channel_observer = self.power.observe_transfer
        if telemetry.enabled:
            t_die_busy = telemetry.series(
                "ssd.dies.busy", "busy", unit="frac", scale=config.dies
            )
            t_chan_busy = telemetry.series(
                "ssd.channels.busy", "busy", unit="frac", scale=config.channels
            )

            def die_observer(
                kind: str, start: int, end: int,
                _power: Any = self.power.observe_op,
            ) -> None:
                _power(kind, start, end)
                t_die_busy.add_interval(start, end)

            def channel_observer(
                start: int, end: int,
                _power: Any = self.power.observe_transfer,
            ) -> None:
                _power(start, end)
                t_chan_busy.add_interval(start, end)

        self.dies: List[FlashDie] = [
            FlashDie(
                sim,
                config.timing,
                allow_suspend=config.suspend_resume,
                observer=die_observer,
                seed=seed * 131 + die_index,
            )
            for die_index in range(config.dies)
        ]
        self.channels = ChannelArray(
            sim,
            config.channels,
            config.channel_mbps,
            observer=channel_observer,
        )
        self.pcie = TimelineResource(sim)
        self.write_buffer = WriteBuffer(sim, config.write_buffer_units)
        self.read_cache = ReadCache(config.read_cache_units, config.prefetch_ahead)
        self.stats = ControllerStats()
        self._rng = np.random.default_rng(seed)
        self._map_cache: "OrderedDict[int, None]" = OrderedDict()
        self._batches = Store(sim)
        #: Dies currently inside a GC cycle — write stalls that happen
        #: while this is non-zero are attributed to GC, not buffer churn.
        self.gc_active = 0
        registry = sim.obs.registry
        self._m_flash_reads = registry.counter(
            "ssd.read.flash", help="reads served from the flash array"
        )
        self._m_buffer_hits = registry.counter(
            "ssd.read.buffer_hits", help="reads served from the write buffer"
        )
        self._m_cache_hits = registry.counter(
            "ssd.read.cache_hits", help="reads served from the read cache"
        )
        self._m_map_misses = registry.counter(
            "ssd.map.misses", help="mapping-table segment fetches"
        )
        self._m_suspends = registry.counter(
            "ssd.flash.suspends", help="program/erase suspends issued for reads"
        )
        self._m_buffer_occ = registry.gauge(
            "ssd.write_buffer.occupancy", unit="units", help="buffered write units"
        )
        self._m_flush_batches = registry.counter(
            "ssd.flush.batches", help="write-buffer flush batches programmed"
        )
        self._m_gc_invocations = registry.counter(
            "ftl.gc.invocations", help="GC block reclamations"
        )
        self._m_gc_migrated = registry.counter(
            "ftl.gc.migrated_pages", help="valid pages migrated by GC"
        )
        self._m_gc_duration = registry.histogram(
            "ftl.gc.duration_ns", unit="ns", help="per-reclamation GC duration"
        )
        self._t_buffer_occ = telemetry.series(
            "ssd.write_buffer.occupancy", "level", unit="units"
        )
        self._t_gc_active = telemetry.series("ftl.gc.active", "level", unit="cycles")
        self._t_gc_moved = telemetry.series(
            "ftl.gc.moved_pages", "rate", unit="pages"
        )
        self._t_fault_recovery = telemetry.series(
            "faults.nand.recovery", "busy", unit="frac"
        )
        # Fault injection (repro.faults): a dedicated RNG stream, so the
        # zero-fault path draws nothing and existing streams are never
        # perturbed.  Instruments register only when faults are live to
        # keep the namespace clean otherwise.
        self._nand_faults = faults.injector("nand") if faults is not None else None
        if self._nand_faults is not None:
            self._m_read_retries = registry.counter(
                "faults.nand.read_retries",
                help="injected read failures recovered by ECC retry",
            )
            self._m_program_fails = registry.counter(
                "faults.nand.program_fails",
                help="injected program failures (data re-programmed)",
            )
            self._m_blocks_retired = registry.counter(
                "faults.nand.blocks_retired",
                help="blocks retired to the bad-block list",
            )
        sim.process(self._batcher())
        for die_index in range(config.dies):
            sim.process(self._flush_worker(die_index))

    # ------------------------------------------------------------------
    # Read datapath (analytic: books timeline reservations, returns the
    # unit's device-internal completion time)
    # ------------------------------------------------------------------
    def read_unit(self, lpn: int, *, trace: "Optional[IoTrace]" = None) -> int:
        """Serve one mapping unit; returns its device-done timestamp."""
        config = self.config
        map_delay = self._map_lookup_delay(lpn)
        start = self.sim.now + config.read_fw_ns + map_delay
        if trace is not None and map_delay:
            trace.annotate("map_fetch", start - map_delay, start, lpn=lpn)
        done = self._serve_read(lpn, start, trace)
        self._maybe_prefetch(lpn)
        return done

    def _map_lookup_delay(self, lpn: int) -> int:
        """Extra stall if the lpn's map segment is outside the cache."""
        config = self.config
        if config.map_cache_segments <= 0:
            return 0
        segment = lpn // config.map_segment_units
        cache = self._map_cache
        if segment in cache:
            cache.move_to_end(segment)
            return 0
        cache[segment] = None
        while len(cache) > config.map_cache_segments:
            cache.popitem(last=False)
        self.stats.map_misses += 1
        self._m_map_misses.inc()
        return config.map_fetch_ns

    def _serve_read(
        self, lpn: int, start: int, trace: "Optional[IoTrace]" = None
    ) -> int:
        config = self.config
        if self.write_buffer.contains(lpn):
            self.stats.buffer_read_hits += 1
            self._m_buffer_hits.inc()
            if trace is not None:
                trace.annotate("buffer_hit", start, start + config.dram_hit_ns)
            return start + config.dram_hit_ns
        cached_ready = self.read_cache.lookup(lpn)
        if cached_ready is not None:
            self.stats.cache_read_hits += 1
            self._m_cache_hits.inc()
            if trace is not None:
                trace.annotate(
                    "cache_hit", start, max(start, cached_ready) + config.dram_hit_ns
                )
            return max(start, cached_ready) + config.dram_hit_ns
        ppa = self.ftl.read_ppa(lpn)
        if ppa is None:
            # Never-written LBA: the controller returns zeros from DRAM.
            self.stats.unwritten_reads += 1
            return start + config.dram_hit_ns
        return self._flash_read(lpn, ppa, start, trace)

    def _flash_read(
        self, lpn: int, ppa: int, start: int, trace: "Optional[IoTrace]" = None
    ) -> int:
        die_index = self.layout.die_of_page(ppa)
        die = self.dies[die_index]
        suspends_before = die.suspends
        flash_start, array_done = die.read(not_before=start)
        suspended = die.suspends > suspends_before
        if suspended:
            self._m_suspends.inc()
        retries = 0
        fi = self._nand_faults
        if fi is not None and fi.spec.read_fail_prob > 0.0:
            # Injected read failure: each retry re-reads the page with
            # tuned reference voltages after an ECC soft-decode pass.
            # The final permitted retry is modeled as succeeding (the
            # heroic-recovery path); errors never propagate to the host.
            retry_start = array_done
            while retries < fi.spec.max_read_retries and fi.roll(
                fi.spec.read_fail_prob
            ):
                retries += 1
                _, array_done = die.read(
                    not_before=array_done + fi.spec.ecc_retry_ns
                )
            if retries:
                self.stats.read_retries += retries
                self._m_read_retries.inc(retries)
                self._t_fault_recovery.add_interval(retry_start, array_done)
                if trace is not None:
                    trace.annotate(
                        "ecc_retry", retry_start, array_done, retries=retries
                    )
                tracer = self.sim.obs.tracer
                if tracer.enabled:
                    tracer.span(
                        "faults",
                        "ecc_retry",
                        retry_start,
                        array_done,
                        die=die_index,
                        lpn=lpn,
                        retries=retries,
                    )
        stall = 0
        if self._roll(self.config.read_stall_prob):
            self.stats.read_stalls += 1
            stall = self.config.read_stall_ns
            array_done += stall
        channel = self.channels.channel_of_die(die_index)
        channel_start, transfer_done = self.channels.transfer(
            channel, UNIT_SIZE, not_before=array_done
        )
        if trace is not None:
            if flash_start > start:
                # The die was busy: a suspend window (Z-NAND preempting a
                # program) or plain die contention.
                trace.phase("suspend_wait" if suspended else "die_wait", start)
                holder = (
                    "program_suspend"
                    if suspended
                    else ("gc" if self.gc_active > 0 else "io")
                )
                trace.wait(f"ssd.die{die_index}", holder, start, flash_start)
            trace.phase("flash_read", flash_start)
            if retries:
                trace.wait(f"ssd.die{die_index}", "ecc_retry", retry_start, array_done - stall)
            if stall:
                trace.annotate("read_stall", array_done - stall, array_done)
            # Channel transfer toward the controller buffer.
            trace.phase("dma", array_done)
            trace.wait(
                f"ssd.ch{channel}", "transfer_backlog", array_done, channel_start
            )
        self.read_cache.insert(lpn, ready_at=transfer_done)
        self.stats.flash_reads += 1
        self._m_flash_reads.inc()
        return transfer_done

    def _roll(self, prob: float) -> bool:
        return prob > 0.0 and self._rng.random() < prob

    def _program_page(self, die_index: int, not_before: int) -> Tuple[int, int]:
        """Book one program op, injecting program failures when live.

        A failed program burns its full tPROG before the fail status is
        seen, the block is retired to the bad-block list (one erased
        block permanently leaves the die's pool), and the data is
        re-programmed — the second attempt is modeled as succeeding.
        """
        die = self.dies[die_index]
        prog_start, programmed = die.program(not_before=not_before)
        fi = self._nand_faults
        if fi is not None and fi.roll(fi.spec.program_fail_prob):
            self.stats.program_fails += 1
            self._m_program_fails.inc()
            retired = self.ftl.allocator.retire_block(die_index)
            if retired is not None:
                self.stats.blocks_retired += 1
                self._m_blocks_retired.inc()
            tracer = self.sim.obs.tracer
            if tracer.enabled:
                tracer.span(
                    "faults",
                    "program_fail",
                    prog_start,
                    programmed,
                    die=die_index,
                    retired_block=-1 if retired is None else retired,
                )
            reprogram_from = programmed
            _, programmed = die.program(not_before=programmed)
            self._t_fault_recovery.add_interval(reprogram_from, programmed)
        return prog_start, programmed

    def roll_write_stall(self) -> int:
        """Housekeeping pause delaying a write completion (0 = none)."""
        if self._roll(self.config.write_stall_prob):
            self.stats.write_stalls += 1
            return self.config.write_stall_ns
        return 0

    def _maybe_prefetch(self, lpn: int) -> None:
        for candidate in self.read_cache.note_access(lpn):
            if candidate >= self.ftl.logical_pages:
                continue
            ppa = self.ftl.read_ppa(candidate)
            if ppa is None or self.write_buffer.contains(candidate):
                continue
            die_index = self.layout.die_of_page(ppa)
            _, array_done = self.dies[die_index].read(not_before=self.sim.now)
            channel = self.channels.channel_of_die(die_index)
            _, transfer_done = self.channels.transfer(
                channel, UNIT_SIZE, not_before=array_done
            )
            self.read_cache.insert(candidate, ready_at=transfer_done)
            self.stats.flash_reads += 1

    # ------------------------------------------------------------------
    # Write datapath (process: may stall on a full buffer)
    # ------------------------------------------------------------------
    def write_unit(
        self, lpn: int, trace: "Optional[IoTrace]" = None
    ) -> "Generator[Event, Any, None]":
        """Process: admit one unit into the write buffer."""
        wait_from = self.sim.now
        yield self.write_buffer.reserve()
        if trace is not None and self.sim.now > wait_from:
            # The buffer was full; name the wait for what was holding it:
            # an active GC cycle, or plain flush backlog.
            blocked_on = "gc_stall" if self.gc_active > 0 else "buffer_full"
            trace.phase(blocked_on, wait_from)
            trace.phase("write_buffer", self.sim.now)
            trace.wait(
                "ssd.write_buffer",
                "gc" if self.gc_active > 0 else "flush",
                wait_from,
                self.sim.now,
            )
        self.write_buffer.insert(lpn)
        self._m_buffer_occ.set(self.write_buffer.occupancy, self.sim.now)
        self._t_buffer_occ.record(self.sim.now, self.write_buffer.occupancy)

    # ------------------------------------------------------------------
    # Background flush workers (one per die)
    # ------------------------------------------------------------------
    def _batcher(self) -> "Generator[Event, Any, None]":
        """Process: gather buffered units into program-sized batches.

        One shared stage between the buffer and the die workers, so
        trickle traffic (e.g. sync QD1 writes) coalesces into full page
        sets instead of each worker burning a whole tPROG per 4 KB unit.
        """
        config = self.config
        buffer = self.write_buffer
        while True:
            first = yield buffer.next_dirty()
            batch = [first]
            while (
                len(batch) < config.units_per_program and buffer.pending_flush > 0
            ):
                ready = buffer.next_dirty()
                assert ready.triggered
                batch.append(ready.value)
            if (
                config.flush_coalesce_ns > 0
                and len(batch) < config.units_per_program
            ):
                # Trickle traffic: wait briefly for more units so a
                # program op commits a fuller page set.
                yield self.sim.timeout(config.flush_coalesce_ns)
                while (
                    len(batch) < config.units_per_program
                    and buffer.pending_flush > 0
                ):
                    ready = buffer.next_dirty()
                    assert ready.triggered
                    batch.append(ready.value)
            self._batches.put(batch)

    def _flush_worker(self, die_index: int) -> "Generator[Event, Any, None]":
        config = self.config
        buffer = self.write_buffer
        while True:
            batch = yield self._batches.get()
            # Reclaim space first if this die is running dry.
            while (
                self.ftl.allocator.free_blocks(die_index)
                < config.gc_watermark_blocks
            ):
                reclaimed = yield from self._collect_one_block(die_index)
                if not reclaimed:
                    break
            # Place every unit, never consuming this die's GC reserve:
            # units that no longer fit here are steered to whichever die
            # still accepts host data (the striping engine's job).
            local: List[int] = []
            overflow: List[int] = []
            for lpn in batch:
                if self.ftl.allocator.can_host_write(die_index):
                    self.ftl.write_to_die(lpn, die_index)
                    local.append(lpn)
                else:
                    overflow.append(lpn)
            tracer = self.sim.obs.tracer
            finish_at = self.sim.now
            if local:
                channel = self.channels.channel_of_die(die_index)
                _, staged = self.channels.transfer(
                    channel, len(local) * UNIT_SIZE, not_before=self.sim.now
                )
                prog_start, programmed = self._program_page(
                    die_index, not_before=staged
                )
                if tracer.enabled:
                    tracer.span(
                        f"die{die_index}",
                        "flash_prog",
                        prog_start,
                        programmed,
                        units=len(local),
                    )
                finish_at = max(finish_at, programmed)
            placed = list(local)
            for lpn in overflow:
                try:
                    placement = self.ftl.write(lpn)
                except OutOfSpace:
                    # Every die is down to its GC reserve: give the unit
                    # back to the queue and let GC elsewhere catch up.
                    buffer.requeue(lpn)
                    continue
                placed.append(lpn)
                channel = self.channels.channel_of_die(placement.die)
                _, staged = self.channels.transfer(
                    channel, UNIT_SIZE, not_before=self.sim.now
                )
                prog_start, programmed = self._program_page(
                    placement.die, not_before=staged
                )
                if tracer.enabled:
                    tracer.span(
                        f"die{placement.die}",
                        "flash_prog",
                        prog_start,
                        programmed,
                        units=1,
                    )
                finish_at = max(finish_at, programmed)
            self.stats.flush_batches += 1
            self._m_flush_batches.inc()
            if finish_at > self.sim.now:
                yield self.sim.timeout(finish_at - self.sim.now)
            for lpn in placed:
                buffer.flushed(lpn)
            self._m_buffer_occ.set(buffer.occupancy, self.sim.now)
            self._t_buffer_occ.record(self.sim.now, buffer.occupancy)

    def _collect_one_block(
        self, die_index: int
    ) -> "Generator[Event, Any, bool]":
        """Process: one GC cycle on ``die_index``.  Returns True if a
        block was reclaimed."""
        plan: Optional[GcPlan] = self.ftl.plan_gc(die_index)
        if plan is None:
            return False
        die = self.dies[die_index]
        gc_start = self.sim.now
        migrated = 0
        config = self.config
        pending: List[int] = []
        self.gc_active += 1
        self._t_gc_active.record(gc_start, self.gc_active)
        try:
            for lpn in plan.victim_lpns:
                # The host may have overwritten the page since planning.
                if not self.ftl.still_in_block(lpn, plan.victim_block):
                    continue
                _, read_done = die.read(not_before=self.sim.now)
                if read_done > self.sim.now:
                    yield self.sim.timeout(read_done - self.sim.now)
                pending.append(lpn)
                if len(pending) >= config.units_per_program:
                    migrated += yield from self._program_migration(
                        die_index, pending, plan.victim_block
                    )
                    pending = []
            if pending:
                migrated += yield from self._program_migration(
                    die_index, pending, plan.victim_block
                )
            _, erased = die.erase(not_before=self.sim.now)
            if erased > self.sim.now:
                yield self.sim.timeout(erased - self.sim.now)
        finally:
            # NOTE: nothing here may touch observability state.  Cycles
            # abandoned when the run ends are closed later by the
            # interpreter's garbage collector, and a recorder update at
            # that point would land at a nondeterministic time.
            self.gc_active -= 1
        self._t_gc_active.record(self.sim.now, self.gc_active)
        self._t_gc_moved.add(self.sim.now, migrated)
        self.ftl.finish_gc(plan)
        self.stats.gc_events.append(
            GcEvent(
                die=die_index,
                start_ns=gc_start,
                end_ns=self.sim.now,
                migrated_pages=migrated,
            )
        )
        self._m_gc_invocations.inc()
        self._m_gc_migrated.inc(migrated)
        self._m_gc_duration.observe(self.sim.now - gc_start)
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.span(
                f"die{die_index}",
                "gc",
                gc_start,
                self.sim.now,
                migrated_pages=migrated,
                victim_block=plan.victim_block,
            )
        return True

    def _program_migration(
        self, die_index: int, lpns: List[int], victim_block: int
    ) -> "Generator[Event, Any, int]":
        """Process: one copyback program for a chunk of migrating pages.

        Pages the host overwrote between the GC read and this program are
        dropped — relocating them would resurrect stale data.
        """
        survivors = [
            lpn for lpn in lpns if self.ftl.still_in_block(lpn, victim_block)
        ]
        if not survivors:
            return 0
        for lpn in survivors:
            self.ftl.relocate(lpn, die_index)
        _, programmed = self._program_page(die_index, not_before=self.sim.now)
        if programmed > self.sim.now:
            yield self.sim.timeout(programmed - self.sim.now)
        return len(survivors)
