"""Controller DRAM: the write buffer and the read cache.

The write buffer is why buffered write latency (a few µs) is far below
tPROG: the host gets its completion as soon as the data lands in DRAM,
and a background flusher commits it to flash.  When the flusher cannot
keep up the buffer fills and writes stall — the queue-depth-dependent
write latency blow-up of Fig. 4a and the GC latency spikes of Fig. 7b.

The read cache (NVMe SSD only; Z-SSD does not need one) is an LRU over
mapping units with a sequential-stream prefetcher.  Random reads at any
realistic capacity ratio miss almost always, exposing raw flash tR —
the paper's explanation for the 82.9 µs random-read latency.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.resources import Store
from repro.units import Count


class WriteBuffer:
    """Counted DRAM slots with FIFO admission and a flush queue."""

    def __init__(self, sim: Simulator, capacity_units: Count) -> None:
        if capacity_units < 1:
            raise ValueError("write buffer needs at least one slot")
        self.sim = sim
        self.capacity = capacity_units
        self._occupancy = 0
        self._waiters: Deque[Event] = deque()
        self._resident: Dict[int, int] = {}  # lpn -> copies buffered
        self._dirty = Store(sim)
        # Statistics.
        self.stall_count = 0
        self.inserted = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def is_full(self) -> bool:
        return self._occupancy >= self.capacity

    def contains(self, lpn: int) -> bool:
        """True if ``lpn``'s freshest data is still in DRAM (read hit)."""
        return self._resident.get(lpn, 0) > 0

    # ------------------------------------------------------------------
    def reserve(self) -> Event:
        """Acquire a slot; the event fires when one is held."""
        event = Event(self.sim)
        if self._occupancy < self.capacity and not self._waiters:
            self._occupancy += 1
            event.succeed()
        else:
            self.stall_count += 1
            self._waiters.append(event)
        return event

    def insert(self, lpn: int) -> None:
        """Deposit ``lpn`` into a previously reserved slot."""
        self._resident[lpn] = self._resident.get(lpn, 0) + 1
        self._dirty.put(lpn)
        self.inserted += 1

    def next_dirty(self) -> Event:
        """Blocking take of the next unit to flush (fires with the LPN)."""
        return self._dirty.get()

    def requeue(self, lpn: int) -> None:
        """Put a taken unit back on the flush queue (placement failed).

        The slot and residency are untouched — the unit is still
        buffered, it just could not be placed yet.
        """
        self._dirty.put(lpn)

    def flushed(self, lpn: int) -> None:
        """Mark ``lpn``'s flush complete; frees the slot."""
        count = self._resident.get(lpn, 0)
        if count <= 0:
            raise RuntimeError(f"flushed() for non-resident lpn {lpn}")
        if count == 1:
            del self._resident[lpn]
        else:
            self._resident[lpn] = count - 1
        if self._waiters:
            # Hand the slot straight to the oldest stalled writer.
            self._waiters.popleft().succeed()
        else:
            self._occupancy -= 1

    @property
    def pending_flush(self) -> int:
        return len(self._dirty)


class ReadCache:
    """LRU unit cache with in-flight ("ready at") tracking.

    ``lookup`` returns the time the cached copy becomes usable — a
    prefetched entry still being read from flash is a hit that waits.
    """

    def __init__(self, capacity_units: Count, prefetch_ahead: int = 0) -> None:
        if capacity_units < 0 or prefetch_ahead < 0:
            raise ValueError("capacity and prefetch depth must be >= 0")
        self.capacity = capacity_units
        self.prefetch_ahead = prefetch_ahead
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # lpn -> ready_at
        self._last_lpn: Optional[int] = None
        self._streak = 0
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.prefetches = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, lpn: int) -> Optional[int]:
        """Ready-at time for ``lpn``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        ready_at = self._entries.get(lpn)
        if ready_at is None:
            self.misses += 1
            return None
        self._entries.move_to_end(lpn)
        self.hits += 1
        return ready_at

    def insert(self, lpn: int, ready_at: int) -> None:
        if not self.enabled:
            return
        self._entries[lpn] = ready_at
        self._entries.move_to_end(lpn)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def note_access(self, lpn: int) -> List[int]:
        """Update the stream detector; returns LPNs to prefetch.

        Detects a sequential run of three or more accesses, then asks the
        controller to stage the next ``prefetch_ahead`` units that are
        not already cached.
        """
        if self._last_lpn is not None and lpn == self._last_lpn + 1:
            self._streak += 1
        else:
            self._streak = 0
        self._last_lpn = lpn
        if not self.enabled or self.prefetch_ahead == 0 or self._streak < 2:
            return []
        wanted = [
            candidate
            for candidate in range(lpn + 1, lpn + 1 + self.prefetch_ahead)
            if candidate not in self._entries
        ]
        self.prefetches += len(wanted)
        return wanted

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
