"""SSD device models.

The controller wires the flash array (:mod:`repro.flash`), the FTL
(:mod:`repro.ftl`), the DRAM caches, the channel/super-channel transfer
fabric, and the power meter into a device that serves block requests on
the simulated timeline.

Device configurations come from the declarative spec registry
(:mod:`repro.ssd.registry` / :mod:`repro.ssd.spec`, documented in
``docs/devices.md``): ``resolve_config("zssd")`` builds the paper's
800 GB Z-SSD prototype, ``resolve_config("intel750")`` the Intel
750-class NVMe comparison device, and the rest of the zoo
(``planar-mlc``, ``tlc-multistep``, ``qlc``, ``no-gc-pm``) covers other
flash generations.  The legacy ``ull_ssd_config``/``nvme_ssd_config``
constructors still work but are deprecated.
"""

from repro.ssd.config import SsdConfig
from repro.ssd.cache import ReadCache, WriteBuffer
from repro.ssd.channels import ChannelArray
from repro.ssd.power import PowerMeter, PowerParams
from repro.ssd.device import DeviceRequest, SsdDevice
from repro.ssd.presets import nvme_ssd_config, ull_ssd_config
from repro.ssd.registry import list_devices, load_device_spec, resolve_config
from repro.ssd.spec import DeviceSpec, DeviceSpecError

__all__ = [
    "SsdConfig",
    "ReadCache",
    "WriteBuffer",
    "ChannelArray",
    "PowerMeter",
    "PowerParams",
    "SsdDevice",
    "DeviceRequest",
    "DeviceSpec",
    "DeviceSpecError",
    "list_devices",
    "load_device_spec",
    "resolve_config",
    "ull_ssd_config",
    "nvme_ssd_config",
]
