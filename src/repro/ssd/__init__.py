"""SSD device models.

The controller wires the flash array (:mod:`repro.flash`), the FTL
(:mod:`repro.ftl`), the DRAM caches, the channel/super-channel transfer
fabric, and the power meter into a device that serves block requests on
the simulated timeline.  Presets configure the two devices the paper
measures: the 800 GB Z-SSD prototype (ULL SSD) and an Intel 750-class
NVMe SSD.
"""

from repro.ssd.config import SsdConfig
from repro.ssd.cache import ReadCache, WriteBuffer
from repro.ssd.channels import ChannelArray
from repro.ssd.power import PowerMeter, PowerParams
from repro.ssd.device import DeviceRequest, SsdDevice
from repro.ssd.presets import nvme_ssd_config, ull_ssd_config

__all__ = [
    "SsdConfig",
    "ReadCache",
    "WriteBuffer",
    "ChannelArray",
    "PowerMeter",
    "PowerParams",
    "SsdDevice",
    "DeviceRequest",
    "ull_ssd_config",
    "nvme_ssd_config",
]
