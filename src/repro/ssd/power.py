"""Device power model.

A wall-socket view: idle floor plus dynamic power per active flash
operation and per active channel transfer.  The controller reports every
operation's ``(kind, start, end)`` interval; the meter schedules the two
transitions and integrates piecewise-constant power over time, exactly
what the paper's Figures 7a/8 plot.

Calibration targets (paper Section IV-D2): idle ~3.8 W, read workloads
~4.1 W on both devices, async writes ~30 % lower on the ULL SSD than the
NVMe SSD (SLC-like Z-NAND programs in fewer incremental steps than MLC),
NVMe power *dips* during GC while ULL GC costs ~12 % extra.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.chip import OpKind
from repro.sim.engine import Simulator
from repro.stats.timeseries import PowerIntegrator, TimeSeries


@dataclass(frozen=True)
class PowerParams:
    """Static and per-activity power (watts)."""

    idle_w: float = 3.8
    read_op_w: float = 0.010  # array sensing, per physical die
    program_op_w: float = 0.150  # per physical die (MLC default)
    erase_op_w: float = 0.120  # per physical die
    transfer_w: float = 0.020  # per active channel transfer


class PowerMeter:
    """Counts active operations and integrates instantaneous power."""

    def __init__(
        self,
        sim: Simulator,
        params: PowerParams,
        *,
        dies_per_op: int = 1,
    ) -> None:
        self.sim = sim
        self.params = params
        self.dies_per_op = dies_per_op
        self._active = {OpKind.READ: 0, OpKind.PROGRAM: 0, OpKind.ERASE: 0}
        self._transfers = 0
        self.integrator = PowerIntegrator(params.idle_w)

    # ------------------------------------------------------------------
    def observe_op(self, kind: OpKind, start: int, end: int) -> None:
        """Register a flash array operation (the FlashDie observer hook)."""
        if end <= start:
            return
        self.sim.schedule_at(max(start, self.sim.now), self._begin_op, kind)
        self.sim.schedule_at(max(end, self.sim.now), self._end_op, kind)

    def observe_transfer(self, start: int, end: int) -> None:
        """Register a channel data transfer interval."""
        if end <= start:
            return
        self.sim.schedule_at(max(start, self.sim.now), self._begin_transfer)
        self.sim.schedule_at(max(end, self.sim.now), self._end_transfer)

    # ------------------------------------------------------------------
    def instantaneous_watts(self) -> float:
        params = self.params
        per_op = {
            OpKind.READ: params.read_op_w,
            OpKind.PROGRAM: params.program_op_w,
            OpKind.ERASE: params.erase_op_w,
        }
        dynamic = sum(
            count * per_op[kind] * self.dies_per_op
            for kind, count in self._active.items()
        )
        dynamic += self._transfers * params.transfer_w
        return params.idle_w + dynamic

    def average_watts(self, until_ns: int) -> float:
        return self.integrator.average_watts(until_ns)

    @property
    def series(self) -> TimeSeries:
        """Raw power-transition time series (for Fig. 8)."""
        return self.integrator.series

    # ------------------------------------------------------------------
    def _begin_op(self, kind: OpKind) -> None:
        self._active[kind] += 1
        self._publish()

    def _end_op(self, kind: OpKind) -> None:
        self._active[kind] -= 1
        assert self._active[kind] >= 0, "power meter op underflow"
        self._publish()

    def _begin_transfer(self) -> None:
        self._transfers += 1
        self._publish()

    def _end_transfer(self) -> None:
        self._transfers -= 1
        assert self._transfers >= 0, "power meter transfer underflow"
        self._publish()

    def _publish(self) -> None:
        self.integrator.set_power(self.sim.now, self.instantaneous_watts())
