"""The block-device facade over the SSD controller.

:class:`SsdDevice` is what the NVMe protocol layer (and the examples)
talk to: ``submit()`` a read or write covering a byte range, get back a
request whose ``done`` event fires when the device would have raised its
completion.  All protocol costs (SQ fetch, CQE, MSI, host software) live
*above* this layer; the device covers firmware, DRAM, flash, channels,
and the PCIe data DMA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, List, Optional

from repro.obs.core import current_obs
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.ssd.config import UNIT_SIZE, SsdConfig
from repro.ssd.controller import SsdController
from repro.units import Bytes

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.ftl.core import PageMappedFtl
    from repro.obs.tracer import IoTrace
    from repro.ssd.controller import ControllerStats
    from repro.ssd.power import PowerMeter


class IoOp(enum.Enum):
    """Block I/O operation."""

    READ = "read"
    WRITE = "write"
    TRIM = "trim"  # dataset management / deallocate


@dataclass
class DeviceRequest:
    """One outstanding block request and its lifecycle timestamps."""

    op: IoOp
    offset: int
    nbytes: int
    submit_ns: int
    done: Event
    device_done_ns: Optional[int] = None
    lpns: List[int] = field(default_factory=list)

    @property
    def device_latency_ns(self) -> int:
        if self.device_done_ns is None:
            raise RuntimeError("request not complete yet")
        return self.device_done_ns - self.submit_ns


class SsdDevice:
    """A simulated SSD serving byte-addressed block requests."""

    def __init__(
        self,
        sim: Simulator,
        config: SsdConfig,
        *,
        seed: int = 42,
        faults: "Optional[FaultPlan]" = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.controller = SsdController(sim, config, seed=seed, faults=faults)
        self.completed_reads = 0
        self.completed_writes = 0
        self.completed_trims = 0
        obs = current_obs()
        if obs.enabled:
            from repro.ssd.registry import spec_label

            obs.label_device(spec_label(config))

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.controller.ftl.capacity_bytes

    @property
    def logical_pages(self) -> int:
        return self.controller.ftl.logical_pages

    @property
    def stats(self) -> "ControllerStats":
        return self.controller.stats

    @property
    def power(self) -> "PowerMeter":
        return self.controller.power

    @property
    def ftl(self) -> "PageMappedFtl":
        return self.controller.ftl

    # ------------------------------------------------------------------
    def submit(
        self, op: IoOp, offset: Bytes, nbytes: int, *, trace: "Optional[IoTrace]" = None
    ) -> DeviceRequest:
        """Issue a request; ``request.done`` fires at device completion."""
        lpns = self._lpns_of(offset, nbytes)
        request = DeviceRequest(
            op=op,
            offset=offset,
            nbytes=nbytes,
            submit_ns=self.sim.now,
            done=Event(self.sim),
            lpns=lpns,
        )
        if op is IoOp.READ:
            self._submit_read(request, trace)
        elif op is IoOp.WRITE:
            self.sim.process(self._write_flow(request, trace))
        else:
            self._submit_trim(request)
        return request

    def read(self, offset: Bytes, nbytes: int) -> DeviceRequest:
        return self.submit(IoOp.READ, offset, nbytes)

    def write(self, offset: Bytes, nbytes: int) -> DeviceRequest:
        return self.submit(IoOp.WRITE, offset, nbytes)

    def trim(self, offset: Bytes, nbytes: int) -> DeviceRequest:
        """Deallocate a range (NVMe Dataset Management).

        Pure FTL metadata work: the mapped pages are invalidated, which
        both frees the LBAs and makes future GC cheaper (fewer valid
        pages to migrate).  No flash operation is needed.
        """
        return self.submit(IoOp.TRIM, offset, nbytes)

    # ------------------------------------------------------------------
    def precondition(self, fraction: float = 1.0) -> int:
        """Instantly fill the first ``fraction`` of the logical space.

        Mutates FTL state without consuming simulated time — the standard
        "write the whole drive once" preparation the paper performs
        before its GC and read experiments.  Applied in bulk through
        :meth:`~repro.ftl.core.PageMappedFtl.fill_sequential` (state
        identical to the write loop).  Returns the pages written.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        count = int(self.logical_pages * fraction)
        ftl = self.controller.ftl
        ftl.fill_sequential(count)
        ftl.reset_statistics()
        return count

    # ------------------------------------------------------------------
    def _lpns_of(self, offset: int, nbytes: int) -> List[int]:
        if offset < 0 or nbytes <= 0:
            raise ValueError("offset must be >= 0 and nbytes > 0")
        if offset % UNIT_SIZE:
            raise ValueError(f"offset must be {UNIT_SIZE}-aligned: {offset}")
        if offset + nbytes > self.capacity_bytes:
            raise ValueError(
                f"request [{offset}, {offset + nbytes}) exceeds capacity "
                f"{self.capacity_bytes}"
            )
        first = offset // UNIT_SIZE
        return list(range(first, first + self.config.units_of(nbytes)))

    def _submit_trim(self, request: DeviceRequest) -> None:
        ftl = self.controller.ftl
        for lpn in request.lpns:
            ftl.trim(lpn)
        done_at = (
            self.sim.now
            + self.config.write_fw_ns
            + self.config.completion_fw_ns
        )
        self.sim.schedule_at(done_at, self._complete, request, done_at)

    def _submit_read(
        self, request: DeviceRequest, trace: "Optional[IoTrace]" = None
    ) -> None:
        controller = self.controller
        internal_done = max(
            controller.read_unit(lpn, trace=trace) for lpn in request.lpns
        )
        dma_start, dma_done = controller.pcie.reserve(
            self.config.pcie_transfer_ns(request.nbytes), not_before=internal_done
        )
        done_at = dma_done + self.config.completion_fw_ns
        if trace is not None:
            # Data moves host-ward, then completion firmware wraps up.
            trace.wait("ssd.pcie", "dma_backlog", internal_done, dma_start)
            trace.phase("dma", dma_start)
            trace.annotate("pcie_dma", dma_start, dma_done, nbytes=request.nbytes)
            trace.phase("ctrl", dma_done)
        self.sim.schedule_at(done_at, self._complete, request, done_at)

    def _write_flow(
        self, request: DeviceRequest, trace: "Optional[IoTrace]" = None
    ) -> Generator[Event, Any, None]:
        config = self.config
        controller = self.controller
        yield self.sim.timeout(config.write_fw_ns)
        dma_start, dma_done = controller.pcie.reserve(
            config.pcie_transfer_ns(request.nbytes), not_before=self.sim.now
        )
        if trace is not None:
            trace.wait("ssd.pcie", "dma_backlog", self.sim.now, dma_start)
            trace.phase("dma", dma_start)
            trace.annotate("pcie_dma", dma_start, dma_done, nbytes=request.nbytes)
        if dma_done > self.sim.now:
            yield self.sim.timeout(dma_done - self.sim.now)
        if trace is not None:
            trace.phase("write_buffer", self.sim.now)
        for lpn in request.lpns:
            yield from controller.write_unit(lpn, trace=trace)
        stall = controller.roll_write_stall()
        if trace is not None:
            if stall:
                trace.phase("write_stall", self.sim.now)
                trace.phase("ctrl", self.sim.now + stall)
                trace.wait(
                    "ssd.firmware", "write_stall", self.sim.now, self.sim.now + stall
                )
            else:
                trace.phase("ctrl", self.sim.now)
        yield self.sim.timeout(stall + config.dram_hit_ns + config.completion_fw_ns)
        self._complete(request, self.sim.now)

    def _complete(self, request: DeviceRequest, done_at: int) -> None:
        request.device_done_ns = done_at
        if request.op is IoOp.READ:
            self.completed_reads += 1
        elif request.op is IoOp.WRITE:
            self.completed_writes += 1
        else:
            self.completed_trims += 1
        request.done.succeed(request)
