"""The channel transfer fabric.

Each (super-)channel is a shared bus: page data moving between a die's
register and the controller occupies the channel for the transfer
duration, so a long write burst delays queued read transfers — the
channel-blocking effect the paper blames for read/write interference on
the NVMe SSD (Section IV-D1).

For a super-channel device the pair of physical channels always moves as
one (split-DMA drives both halves in lockstep), so a pair is modeled as a
single timeline with twice the single-channel rate; the
:class:`~repro.ssd.config.SsdConfig` presets encode that in
``channel_mbps``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.resources import TimelineResource


class ChannelArray:
    """One busy-timeline per (super-)channel."""

    def __init__(
        self,
        sim: Simulator,
        n_channels: int,
        mbps: int,
        *,
        observer: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if mbps <= 0:
            raise ValueError("channel rate must be positive")
        self.sim = sim
        self.mbps = mbps
        self.observer = observer
        self._channels: List[TimelineResource] = [
            TimelineResource(sim) for _ in range(n_channels)
        ]
        # Transfers come in a handful of fixed sizes (host units, page
        # batches): memoize the ns conversion per size.
        self._transfer_cache: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._channels)

    def transfer_ns(self, nbytes: int) -> int:
        cached = self._transfer_cache.get(nbytes)
        if cached is not None:
            return cached
        result = int(round(nbytes * 1_000 / self.mbps))
        self._transfer_cache[nbytes] = result
        return result

    def channel_of_die(self, die: int) -> int:
        return die % len(self._channels)

    def transfer(
        self, channel: int, nbytes: int, not_before: int = 0
    ) -> Tuple[int, int]:
        """Book ``nbytes`` on ``channel``; returns the ``(start, end)``."""
        if not 0 <= channel < len(self._channels):
            raise ValueError(f"channel out of range: {channel}")
        interval = self._channels[channel].reserve(
            self.transfer_ns(nbytes), not_before
        )
        if self.observer is not None:
            self.observer(*interval)
        return interval

    def busy_ns(self, channel: int) -> int:
        return self._channels[channel].busy_ns

    def utilization(self, elapsed_ns: int) -> float:
        """Mean utilization across channels."""
        if elapsed_ns <= 0 or not self._channels:
            return 0.0
        total = sum(ch.busy_ns for ch in self._channels)
        return min(1.0, total / (elapsed_ns * len(self._channels)))
