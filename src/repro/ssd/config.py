"""Device configuration: everything that distinguishes the two SSDs.

All latency fields are integer nanoseconds.  The mapping unit is the
host-visible 4 KB page; ``units_per_program`` captures how many units one
physical program operation commits (physical page size x planes, divided
by the unit size — or the super-channel pair width for Z-NAND).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash.timing import FlashTiming
from repro.ftl.layout import FtlLayout
from repro.ssd.power import PowerParams

UNIT_SIZE = 4096  # host mapping unit (bytes)


@dataclass(frozen=True)
class SsdConfig:
    """Full description of a simulated SSD."""

    name: str
    timing: FlashTiming

    # --- array organization (at the FTL's mapping-unit granularity) ---
    # For a super-channel device, one "die" here is a *pair* of physical
    # dies operating in lockstep and one "channel" is a channel pair.
    channels: int
    ways_per_channel: int
    blocks_per_die: int
    pages_per_block: int  # mapping units per block
    physical_dies_per_die: int = 1  # 2 for super-channel lockstep pairs
    units_per_program: int = 1  # units committed by one program op

    # --- super-channel / split-DMA ---
    super_channel: bool = False
    suspend_resume: bool = False

    # --- channel fabric ---
    channel_mbps: int = 800  # effective per-(super-)channel transfer rate

    # --- controller firmware ---
    read_fw_ns: int = 2_000  # command decode + FTL lookup + dispatch
    write_fw_ns: int = 2_000
    completion_fw_ns: int = 500  # CQ entry build + doorbell update

    # --- DRAM caches ---
    write_buffer_units: int = 1024
    # Flush workers wait this long for more buffered units before
    # programming a partial page (coalescing window).  Keeps trickle
    # writers (sync QD1) from burning a full tPROG per 4 KB unit.
    flush_coalesce_ns: int = 0
    read_cache_units: int = 0  # 0 disables the read cache
    prefetch_ahead: int = 0  # sequential prefetch depth (units)
    dram_hit_ns: int = 1_500  # DRAM access + firmware fast path

    # --- host link ---
    pcie_mbps: int = 3200  # PCIe 3.0 x4 effective payload rate
    pcie_latency_ns: int = 700  # per-transfer PCIe round-trip overhead

    # --- FTL ---
    overprovision: float = 0.125
    gc_watermark_blocks: int = 2
    gc_policy: str = "greedy"  # or "cost-benefit"

    # --- bad blocks / remap checker ---
    factory_bad_rate: float = 0.0
    spare_blocks_per_die: int = 0

    # --- FTL mapping-table cache -------------------------------------
    # Prototype controllers keep only part of the page map in controller
    # SRAM; a lookup outside the cached segments stalls the read while
    # the segment is fetched from DRAM/flash.  Sequential streams stay
    # inside one segment; random reads miss — the paper's 15.9 us random
    # vs. 12.6 us sequential read gap on the ULL SSD.  0 disables.
    map_cache_segments: int = 0
    map_segment_units: int = 1024  # mapping units covered per segment
    map_fetch_ns: int = 0

    # --- tail-latency mechanisms (seeded stochastic device events) ---
    # Rare device-side stalls: ECC read retries / internal housekeeping
    # pauses (metadata checkpoints, cache flushes).  These dominate the
    # five-nines latency on real devices (Fig. 4b: NVMe write tails are
    # 108x the average).
    read_stall_prob: float = 0.0
    read_stall_ns: int = 0
    write_stall_prob: float = 0.0
    write_stall_ns: int = 0

    # --- power ---
    power: PowerParams = field(default_factory=PowerParams)

    def __post_init__(self) -> None:
        if self.channels < 1 or self.ways_per_channel < 1:
            raise ValueError("need at least one channel and one way")
        if self.units_per_program < 1:
            raise ValueError("units_per_program must be >= 1")
        if self.super_channel and self.physical_dies_per_die != 2:
            raise ValueError("super-channel devices pair exactly two dies")
        for prob_field in ("read_stall_prob", "write_stall_prob"):
            if not 0.0 <= getattr(self, prob_field) < 1.0:
                raise ValueError(f"{prob_field} must be in [0, 1)")

    # ------------------------------------------------------------------
    @property
    def dies(self) -> int:
        """Logical dies (super-die pairs count once)."""
        return self.channels * self.ways_per_channel

    def ftl_layout(self) -> FtlLayout:
        return FtlLayout(
            dies=self.dies,
            blocks_per_die=self.blocks_per_die,
            pages_per_block=self.pages_per_block,
            unit_size=UNIT_SIZE,
        )

    @property
    def capacity_bytes(self) -> int:
        """Host-visible capacity (after overprovisioning)."""
        total_units = self.dies * self.blocks_per_die * self.pages_per_block
        return int(total_units * (1.0 - self.overprovision)) * UNIT_SIZE

    def pcie_transfer_ns(self, nbytes: int) -> int:
        """Host link DMA time for ``nbytes``."""
        return self.pcie_latency_ns + int(round(nbytes * 1_000 / self.pcie_mbps))

    def channel_transfer_ns(self, nbytes: int) -> int:
        """(Super-)channel time to move ``nbytes`` of flash data."""
        return int(round(nbytes * 1_000 / self.channel_mbps))

    def units_of(self, nbytes: int) -> int:
        """Mapping units covered by an ``nbytes`` request."""
        if nbytes <= 0:
            raise ValueError("request size must be positive")
        return (nbytes + UNIT_SIZE - 1) // UNIT_SIZE
