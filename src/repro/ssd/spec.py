"""Declarative device specs: the SSD as data, not code.

A :class:`DeviceSpec` is a validated, canonical description of one
simulated SSD — timing tables, channel/die topology, page/block
geometry, the write-buffer/read-cache hierarchy, suspend/resume and
program-step capabilities — loadable from TOML or JSON files under the
``devices/`` tree and convertible to the :class:`~repro.ssd.config.SsdConfig`
the simulator actually runs.  SimpleSSD and Amber treat the SSD as a
fully parameterized model; this module is that idea for this repo.

Three properties the rest of the system leans on:

* **Validation is front-loaded.**  Every key is checked against the
  schema before any construction happens; unknown keys, inconsistent
  geometry, and non-monotonic timing tables raise a single
  :class:`DeviceSpecError` naming the file, the key path, and the
  offending value — never a mid-construction traceback.
* **Canonical form.**  ``to_mapping()`` resolves every default, so two
  specs that describe the same device (one terse, one fully spelled
  out) produce identical mappings, identical TOML round-trips, and the
  same :meth:`DeviceSpec.spec_hash` — the identity the sweep cache keys
  spec-built measurements by.
* **No new config fields.**  Spec-only data (the ISPP program-step
  table, the description) never lands on :class:`SsdConfig` /
  :class:`FlashTiming`, so preset-built configs — and therefore their
  historical sweep cache keys — are untouched by this layer.

See ``docs/devices.md`` for the schema reference and annotated examples.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.flash.timing import FlashTiming
from repro.ssd.config import SsdConfig
from repro.ssd.power import PowerParams

#: Bump when the spec schema changes incompatibly.  Participates in
#: :meth:`DeviceSpec.spec_hash`, so a schema bump re-keys spec-built
#: sweep cache entries.
SPEC_SCHEMA = 1


class DeviceSpecError(ValueError):
    """A device spec failed validation.

    One exception type for every failure mode — unknown key, bad type,
    inconsistent geometry, non-monotonic timing table — carrying the
    spec source (file path or ``"<mapping>"``), the dotted key path,
    and the offending value, so the message always says *where* and
    *what* instead of surfacing a mid-construction traceback.
    """

    def __init__(
        self,
        reason: str,
        *,
        source: str = "<mapping>",
        keypath: str = "",
        value: Any = None,
    ) -> None:
        self.source = source
        self.keypath = keypath
        self.value = value
        where = source
        if keypath:
            where = f"{source}: {keypath}"
            if value is not None:
                where = f"{where} = {value!r}"
        super().__init__(f"{where}: {reason}")


# ----------------------------------------------------------------------
# Schema tables
# ----------------------------------------------------------------------
# (type, default) per key.  ``bool`` is checked before ``int`` (bools
# are ints in Python); ``float`` accepts ints.  A ``None`` default
# means the key is required.
_Field = Tuple[type, Any]

_TOP_FIELDS: Dict[str, _Field] = {
    "schema": (int, SPEC_SCHEMA),
    "name": (str, None),
    "label": (str, ""),  # SsdConfig.name; defaults to `name`
    "description": (str, ""),
}

_SECTION_FIELDS: Dict[str, Dict[str, _Field]] = {
    "timing": {
        "name": (str, ""),
        "read_ns": (int, None),
        "program_ns": (int, 0),  # required unless program_step_ns given
        "erase_ns": (int, None),
        "bus_mbps": (int, None),
        "suspend_ns": (int, 2_000),
        "resume_ns": (int, 2_000),
        "max_suspends_per_op": (int, 4),
        "read_jitter": (float, 0.0),
        "program_jitter": (float, 0.0),
        "layers": (int, 0),
        "die_capacity_gbit": (int, 0),
        "page_size": (int, 0),
        "program_step_ns": (list, []),
    },
    "geometry": {
        "channels": (int, None),
        "ways_per_channel": (int, None),
        "dies": (int, 0),  # optional cross-check: channels * ways
        "blocks_per_die": (int, None),
        "pages_per_block": (int, None),
        "physical_dies_per_die": (int, 1),
        "units_per_program": (int, 1),
        "super_channel": (bool, False),
    },
    "capabilities": {
        "suspend_resume": (bool, False),
    },
    "fabric": {
        "channel_mbps": (int, 800),
    },
    "firmware": {
        "read_fw_ns": (int, 2_000),
        "write_fw_ns": (int, 2_000),
        "completion_fw_ns": (int, 500),
    },
    "buffers": {
        "write_buffer_units": (int, 1024),
        "flush_coalesce_ns": (int, 0),
        "read_cache_units": (int, 0),
        "prefetch_ahead": (int, 0),
        "dram_hit_ns": (int, 1_500),
    },
    "link": {
        "pcie_mbps": (int, 3200),
        "pcie_latency_ns": (int, 700),
    },
    "ftl": {
        "overprovision": (float, 0.125),
        "gc_watermark_blocks": (int, 2),
        "gc_policy": (str, "greedy"),
        "factory_bad_rate": (float, 0.0),
        "spare_blocks_per_die": (int, 0),
    },
    "map_cache": {
        "segments": (int, 0),
        "segment_units": (int, 1024),
        "fetch_ns": (int, 0),
    },
    "stalls": {
        "read_stall_prob": (float, 0.0),
        "read_stall_ns": (int, 0),
        "write_stall_prob": (float, 0.0),
        "write_stall_ns": (int, 0),
    },
    "power": {
        "idle_w": (float, 3.0),
        "read_op_w": (float, 0.01),
        "program_op_w": (float, 0.08),
        "erase_op_w": (float, 0.10),
        "transfer_w": (float, 0.02),
    },
}


def _type_name(expected: type) -> str:
    return {int: "integer", float: "number", str: "string", bool: "boolean",
            list: "array"}[expected]


def _check_type(
    value: Any, expected: type, *, source: str, keypath: str
) -> Any:
    """Type-check one leaf value (TOML/JSON scalar) against the schema."""
    if expected is bool:
        if not isinstance(value, bool):
            raise DeviceSpecError(
                "expected a boolean", source=source, keypath=keypath, value=value
            )
        return value
    if isinstance(value, bool):  # bool passes isinstance(int) checks
        raise DeviceSpecError(
            f"expected a {_type_name(expected)}, got a boolean",
            source=source, keypath=keypath, value=value,
        )
    if expected is int:
        if not isinstance(value, int):
            raise DeviceSpecError(
                "expected an integer", source=source, keypath=keypath, value=value
            )
        return value
    if expected is float:
        if not isinstance(value, (int, float)):
            raise DeviceSpecError(
                "expected a number", source=source, keypath=keypath, value=value
            )
        return float(value)
    if expected is str:
        if not isinstance(value, str):
            raise DeviceSpecError(
                "expected a string", source=source, keypath=keypath, value=value
            )
        return value
    if expected is list:
        if not isinstance(value, list) or any(
            not isinstance(item, int) or isinstance(item, bool) for item in value
        ):
            raise DeviceSpecError(
                "expected an array of integers",
                source=source, keypath=keypath, value=value,
            )
        return list(value)
    raise AssertionError(f"unhandled schema type {expected!r}")


# ----------------------------------------------------------------------
# Cross-field validation
# ----------------------------------------------------------------------
def _require(
    condition: bool, reason: str, *, source: str, keypath: str, value: Any
) -> None:
    if not condition:
        raise DeviceSpecError(reason, source=source, keypath=keypath, value=value)


def _validate_semantics(sections: Dict[str, Dict[str, Any]], source: str) -> None:
    """Every cross-field invariant, checked before any construction."""
    timing = sections["timing"]
    geometry = sections["geometry"]
    ftl = sections["ftl"]
    stalls = sections["stalls"]

    # --- timing table -------------------------------------------------
    steps: List[int] = timing["program_step_ns"]
    if steps:
        _require(
            all(step > 0 for step in steps),
            "program steps must be positive",
            source=source, keypath="[timing].program_step_ns", value=steps,
        )
        _require(
            all(b >= a for a, b in zip(steps, steps[1:])),
            "program-step table must be monotonically non-decreasing "
            "(ISPP steps never shrink)",
            source=source, keypath="[timing].program_step_ns", value=steps,
        )
        total = sum(steps)
        if timing["program_ns"]:
            _require(
                timing["program_ns"] == total,
                f"program_ns must equal the program-step sum ({total})",
                source=source, keypath="[timing].program_ns",
                value=timing["program_ns"],
            )
        else:
            timing["program_ns"] = total
    _require(
        timing["program_ns"] > 0,
        "either program_ns or a program_step_ns table is required",
        source=source, keypath="[timing].program_ns", value=timing["program_ns"],
    )
    for key in ("read_ns", "erase_ns", "bus_mbps"):
        _require(
            timing[key] > 0, f"{key} must be positive",
            source=source, keypath=f"[timing].{key}", value=timing[key],
        )
    for key in ("suspend_ns", "resume_ns", "max_suspends_per_op"):
        _require(
            timing[key] >= 0, f"{key} must be >= 0",
            source=source, keypath=f"[timing].{key}", value=timing[key],
        )
    for key in ("read_jitter", "program_jitter"):
        _require(
            0.0 <= timing[key] < 1.0, f"{key} must be in [0, 1)",
            source=source, keypath=f"[timing].{key}", value=timing[key],
        )

    # --- geometry -----------------------------------------------------
    for key in ("channels", "ways_per_channel", "blocks_per_die",
                "pages_per_block", "physical_dies_per_die", "units_per_program"):
        _require(
            geometry[key] >= 1, f"{key} must be >= 1",
            source=source, keypath=f"[geometry].{key}", value=geometry[key],
        )
    dies = geometry["channels"] * geometry["ways_per_channel"]
    if geometry["dies"]:
        _require(
            geometry["dies"] % geometry["channels"] == 0,
            f"dies must be divisible by channels ({geometry['channels']})",
            source=source, keypath="[geometry].dies", value=geometry["dies"],
        )
        _require(
            geometry["dies"] == dies,
            f"dies must equal channels * ways_per_channel ({dies})",
            source=source, keypath="[geometry].dies", value=geometry["dies"],
        )
    else:
        geometry["dies"] = dies
    _require(
        geometry["pages_per_block"] % geometry["units_per_program"] == 0,
        "pages_per_block must be divisible by units_per_program "
        "(programs commit whole mapping-unit groups)",
        source=source, keypath="[geometry].pages_per_block",
        value=geometry["pages_per_block"],
    )
    if geometry["super_channel"]:
        _require(
            geometry["physical_dies_per_die"] == 2,
            "super-channel devices pair exactly two physical dies "
            "(physical_dies_per_die must be 2)",
            source=source, keypath="[geometry].super_channel", value=True,
        )

    # --- FTL / stalls -------------------------------------------------
    _require(
        0.0 <= ftl["overprovision"] < 1.0, "overprovision must be in [0, 1)",
        source=source, keypath="[ftl].overprovision", value=ftl["overprovision"],
    )
    _require(
        ftl["gc_policy"] in ("greedy", "cost-benefit"),
        "gc_policy must be 'greedy' or 'cost-benefit'",
        source=source, keypath="[ftl].gc_policy", value=ftl["gc_policy"],
    )
    _require(
        0.0 <= ftl["factory_bad_rate"] < 1.0,
        "factory_bad_rate must be in [0, 1)",
        source=source, keypath="[ftl].factory_bad_rate",
        value=ftl["factory_bad_rate"],
    )
    for key in ("read_stall_prob", "write_stall_prob"):
        _require(
            0.0 <= stalls[key] < 1.0, f"{key} must be in [0, 1)",
            source=source, keypath=f"[stalls].{key}", value=stalls[key],
        )


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeviceSpec:
    """One validated, fully resolved device description.

    ``sections`` is the canonical nested form: every schema key present
    with defaults resolved, so equal devices hash equal regardless of
    how tersely their files were written.  Build instances with
    :meth:`from_mapping` / :meth:`from_path`, never directly.
    """

    name: str
    label: str
    description: str
    schema: int
    sections: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]
    source: str = "<mapping>"

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, Any], *, source: str = "<mapping>"
    ) -> "DeviceSpec":
        """Validate ``mapping`` (parsed TOML/JSON) into a spec."""
        if not isinstance(mapping, Mapping):
            raise DeviceSpecError(
                "device spec must be a table/object", source=source,
                value=type(mapping).__name__,
            )
        top: Dict[str, Any] = {}
        raw_sections: Dict[str, Mapping[str, Any]] = {}
        for key in sorted(mapping):
            value = mapping[key]
            if key in _TOP_FIELDS:
                top[key] = _check_type(
                    value, _TOP_FIELDS[key][0], source=source, keypath=key
                )
            elif key in _SECTION_FIELDS:
                if not isinstance(value, Mapping):
                    raise DeviceSpecError(
                        f"expected a [{key}] table", source=source,
                        keypath=key, value=value,
                    )
                raw_sections[key] = value
            else:
                raise DeviceSpecError(
                    "unknown key (known sections: "
                    + ", ".join(sorted(_SECTION_FIELDS)) + ")",
                    source=source, keypath=key, value=value,
                )
        for key, (expected, default) in _TOP_FIELDS.items():
            if key not in top:
                if default is None:
                    raise DeviceSpecError(
                        f"required key {key!r} is missing", source=source,
                        keypath=key,
                    )
                top[key] = default
        if top["schema"] != SPEC_SCHEMA:
            raise DeviceSpecError(
                f"unsupported spec schema (this build reads schema {SPEC_SCHEMA})",
                source=source, keypath="schema", value=top["schema"],
            )
        if not top["name"]:
            raise DeviceSpecError(
                "name must be a non-empty string", source=source,
                keypath="name", value=top["name"],
            )

        sections: Dict[str, Dict[str, Any]] = {}
        for section, fields in _SECTION_FIELDS.items():
            raw = raw_sections.get(section, {})
            resolved: Dict[str, Any] = {}
            for key in sorted(raw):
                if key not in fields:
                    raise DeviceSpecError(
                        f"unknown key in [{section}] (known: "
                        + ", ".join(sorted(fields)) + ")",
                        source=source, keypath=f"[{section}].{key}",
                        value=raw[key],
                    )
                resolved[key] = _check_type(
                    raw[key], fields[key][0], source=source,
                    keypath=f"[{section}].{key}",
                )
            for key, (expected, default) in fields.items():
                if key not in resolved:
                    if default is None:
                        raise DeviceSpecError(
                            f"required key [{section}].{key} is missing",
                            source=source, keypath=f"[{section}].{key}",
                        )
                    resolved[key] = (
                        list(default) if isinstance(default, list) else default
                    )
            sections[section] = resolved

        _validate_semantics(sections, source)

        canonical = tuple(
            (section, tuple(sorted(
                (key, tuple(value) if isinstance(value, list) else value)
                for key, value in sections[section].items()
            )))
            for section in sorted(sections)
        )
        return cls(
            name=top["name"],
            label=top["label"] or top["name"],
            description=top["description"],
            schema=top["schema"],
            sections=canonical,
            source=source,
        )

    @classmethod
    def from_path(cls, path: Union[str, Path]) -> "DeviceSpec":
        """Load and validate a ``.toml`` or ``.json`` spec file."""
        location = Path(path)
        try:
            text = location.read_text(encoding="utf-8")
        except OSError as exc:
            raise DeviceSpecError(
                f"cannot read spec file: {exc}", source=str(location)
            ) from exc
        suffix = location.suffix.lower()
        if suffix == ".json":
            try:
                mapping = json.loads(text)
            except json.JSONDecodeError as exc:
                raise DeviceSpecError(
                    f"invalid JSON: {exc}", source=str(location)
                ) from exc
        elif suffix == ".toml":
            import tomllib

            try:
                mapping = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise DeviceSpecError(
                    f"invalid TOML: {exc}", source=str(location)
                ) from exc
        else:
            raise DeviceSpecError(
                "spec files must end in .toml or .json",
                source=str(location), value=location.suffix,
            )
        return cls.from_mapping(mapping, source=str(location))

    # ------------------------------------------------------------------
    def section(self, name: str) -> Dict[str, Any]:
        """One resolved section as a plain dict."""
        for section, items in self.sections:
            if section == name:
                return {
                    key: list(value) if isinstance(value, tuple) else value
                    for key, value in items
                }
        raise KeyError(name)

    def to_mapping(self) -> Dict[str, Any]:
        """The canonical, fully resolved nested-dict form."""
        document: Dict[str, Any] = {
            "schema": self.schema,
            "name": self.name,
            "label": self.label,
            "description": self.description,
        }
        for section, _items in self.sections:
            document[section] = self.section(section)
        return document

    def spec_hash(self) -> str:
        """Canonical content hash: the identity of spec-built devices.

        Stable across load format (TOML vs JSON), key order, and
        whether defaults were spelled out — it hashes the resolved
        canonical form, plus the schema version so schema bumps re-key.
        """
        blob = repr((SPEC_SCHEMA, self.name, self.label, self.sections))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def flash_timing(self) -> FlashTiming:
        timing = self.section("timing")
        return FlashTiming(
            name=timing["name"] or self.name,
            read_ns=timing["read_ns"],
            program_ns=timing["program_ns"],
            erase_ns=timing["erase_ns"],
            bus_mbps=timing["bus_mbps"],
            suspend_ns=timing["suspend_ns"],
            resume_ns=timing["resume_ns"],
            max_suspends_per_op=timing["max_suspends_per_op"],
            read_jitter=timing["read_jitter"],
            program_jitter=timing["program_jitter"],
            layers=timing["layers"],
            die_capacity_gbit=timing["die_capacity_gbit"],
            page_size=timing["page_size"],
        )

    def to_ssd_config(self) -> SsdConfig:
        """The :class:`SsdConfig` this spec describes.

        Validation already proved every invariant the config's own
        ``__post_init__`` checks, so construction cannot raise; a
        residual error would be a schema bug and is re-raised as
        :class:`DeviceSpecError` anyway (never a bare traceback).
        """
        geometry = self.section("geometry")
        capabilities = self.section("capabilities")
        fabric = self.section("fabric")
        firmware = self.section("firmware")
        buffers = self.section("buffers")
        link = self.section("link")
        ftl = self.section("ftl")
        map_cache = self.section("map_cache")
        stalls = self.section("stalls")
        power = self.section("power")
        try:
            return SsdConfig(
                name=self.label,
                timing=self.flash_timing(),
                channels=geometry["channels"],
                ways_per_channel=geometry["ways_per_channel"],
                blocks_per_die=geometry["blocks_per_die"],
                pages_per_block=geometry["pages_per_block"],
                physical_dies_per_die=geometry["physical_dies_per_die"],
                units_per_program=geometry["units_per_program"],
                super_channel=geometry["super_channel"],
                suspend_resume=capabilities["suspend_resume"],
                channel_mbps=fabric["channel_mbps"],
                read_fw_ns=firmware["read_fw_ns"],
                write_fw_ns=firmware["write_fw_ns"],
                completion_fw_ns=firmware["completion_fw_ns"],
                write_buffer_units=buffers["write_buffer_units"],
                flush_coalesce_ns=buffers["flush_coalesce_ns"],
                read_cache_units=buffers["read_cache_units"],
                prefetch_ahead=buffers["prefetch_ahead"],
                dram_hit_ns=buffers["dram_hit_ns"],
                pcie_mbps=link["pcie_mbps"],
                pcie_latency_ns=link["pcie_latency_ns"],
                overprovision=ftl["overprovision"],
                gc_watermark_blocks=ftl["gc_watermark_blocks"],
                gc_policy=ftl["gc_policy"],
                factory_bad_rate=ftl["factory_bad_rate"],
                spare_blocks_per_die=ftl["spare_blocks_per_die"],
                map_cache_segments=map_cache["segments"],
                map_segment_units=map_cache["segment_units"],
                map_fetch_ns=map_cache["fetch_ns"],
                read_stall_prob=stalls["read_stall_prob"],
                read_stall_ns=stalls["read_stall_ns"],
                write_stall_prob=stalls["write_stall_prob"],
                write_stall_ns=stalls["write_stall_ns"],
                power=PowerParams(
                    idle_w=power["idle_w"],
                    read_op_w=power["read_op_w"],
                    program_op_w=power["program_op_w"],
                    erase_op_w=power["erase_op_w"],
                    transfer_w=power["transfer_w"],
                ),
            )
        except ValueError as exc:  # pragma: no cover - belt and braces
            raise DeviceSpecError(str(exc), source=self.source) from exc

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON text (round-trips through :meth:`from_mapping`)."""
        return json.dumps(self.to_mapping(), indent=2, sort_keys=False) + "\n"

    def to_toml(self) -> str:
        """Canonical TOML text (round-trips through :meth:`from_path`)."""
        document = self.to_mapping()
        lines: List[str] = []
        for key in ("schema", "name", "label", "description"):
            lines.append(f"{key} = {_toml_value(document[key])}")
        for section, _items in self.sections:
            table = document[section]
            lines.append("")
            lines.append(f"[{section}]")
            for key in sorted(table):
                lines.append(f"{key} = {_toml_value(table[key])}")
        return "\n".join(lines) + "\n"


def _toml_value(value: Any) -> str:
    """Serialize one scalar/array for :meth:`DeviceSpec.to_toml`.

    ``repr`` round-trips Python floats exactly, so a dumped spec parses
    back to the same canonical mapping (hash-stable round trip); the
    only adjustment is TOML's lowercase booleans and quoted strings.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        # TOML floats need a dot or exponent ("1e-05" parses; "1." not
        # emitted by repr); integral floats repr as "1.0" which is fine.
        return text
    if isinstance(value, str):
        return json.dumps(value)  # JSON string escaping is valid TOML
    if isinstance(value, list):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise TypeError(f"cannot serialize {type(value).__name__} to TOML")


def spec_from_config(
    config: SsdConfig, *, name: str, description: str = ""
) -> DeviceSpec:
    """Express an :class:`SsdConfig` as a spec (the presets' test twin).

    Used by the byte-identity tests and ``devices show`` to prove that a
    spec file and a hand-wired config describe the same device.
    """
    timing = config.timing
    mapping: Dict[str, Any] = {
        "schema": SPEC_SCHEMA,
        "name": name,
        "label": config.name,
        "description": description,
        "timing": {
            "name": timing.name,
            "read_ns": timing.read_ns,
            "program_ns": timing.program_ns,
            "erase_ns": timing.erase_ns,
            "bus_mbps": timing.bus_mbps,
            "suspend_ns": timing.suspend_ns,
            "resume_ns": timing.resume_ns,
            "max_suspends_per_op": timing.max_suspends_per_op,
            "read_jitter": timing.read_jitter,
            "program_jitter": timing.program_jitter,
            "layers": timing.layers,
            "die_capacity_gbit": timing.die_capacity_gbit,
            "page_size": timing.page_size,
        },
        "geometry": {
            "channels": config.channels,
            "ways_per_channel": config.ways_per_channel,
            "blocks_per_die": config.blocks_per_die,
            "pages_per_block": config.pages_per_block,
            "physical_dies_per_die": config.physical_dies_per_die,
            "units_per_program": config.units_per_program,
            "super_channel": config.super_channel,
        },
        "capabilities": {"suspend_resume": config.suspend_resume},
        "fabric": {"channel_mbps": config.channel_mbps},
        "firmware": {
            "read_fw_ns": config.read_fw_ns,
            "write_fw_ns": config.write_fw_ns,
            "completion_fw_ns": config.completion_fw_ns,
        },
        "buffers": {
            "write_buffer_units": config.write_buffer_units,
            "flush_coalesce_ns": config.flush_coalesce_ns,
            "read_cache_units": config.read_cache_units,
            "prefetch_ahead": config.prefetch_ahead,
            "dram_hit_ns": config.dram_hit_ns,
        },
        "link": {
            "pcie_mbps": config.pcie_mbps,
            "pcie_latency_ns": config.pcie_latency_ns,
        },
        "ftl": {
            "overprovision": config.overprovision,
            "gc_watermark_blocks": config.gc_watermark_blocks,
            "gc_policy": config.gc_policy,
            "factory_bad_rate": config.factory_bad_rate,
            "spare_blocks_per_die": config.spare_blocks_per_die,
        },
        "map_cache": {
            "segments": config.map_cache_segments,
            "segment_units": config.map_segment_units,
            "fetch_ns": config.map_fetch_ns,
        },
        "stalls": {
            "read_stall_prob": config.read_stall_prob,
            "read_stall_ns": config.read_stall_ns,
            "write_stall_prob": config.write_stall_prob,
            "write_stall_ns": config.write_stall_ns,
        },
        "power": {
            "idle_w": config.power.idle_w,
            "read_op_w": config.power.read_op_w,
            "program_op_w": config.power.program_op_w,
            "erase_op_w": config.power.erase_op_w,
            "transfer_w": config.power.transfer_w,
        },
    }
    return DeviceSpec.from_mapping(mapping, source=f"<config:{name}>")
