"""Exporters: Chrome ``trace_event`` JSON and plain-text/CSV metrics.

The trace format is the JSON Object Format of the Trace Event spec
(``{"traceEvents": [...]}``) with complete ("X") events, loadable
directly in Perfetto / ``chrome://tracing``.  Timestamps are
microseconds (floats — the spec's unit), durations likewise; the
original integer nanoseconds are preserved in each event's ``args``.

Layout: each simulator run is a process (pid); I/O spans are packed
onto the fewest threads (lanes) such that top-level spans on one lane
never overlap — lane 0 is a busy timeline at QD1, and queue depth reads
directly off the number of occupied lanes.  Nested detail spans share
their I/O's lane (Perfetto stacks contained intervals).  Background
tracks (per-die GC, flush programs) get their own named threads.
"""

from __future__ import annotations

import contextlib
import csv
import io
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry, NullRegistry
    from repro.obs.telemetry import NullTelemetry, Telemetry
    from repro.obs.tracer import IoTrace, NullTracer, SpanTracer

    AnyTracer = Union[SpanTracer, NullTracer]
    AnyTelemetry = Union[Telemetry, NullTelemetry]
    AnyRegistry = Union[MetricsRegistry, NullRegistry]

#: Thread-id base for background tracks, above any plausible lane count.
_TRACK_TID_BASE = 1000


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically, creating parent dirs.

    Every observability artifact goes through here: the temp file lands
    in the destination directory (same filesystem, so ``os.replace`` is
    atomic) and a crashed or interrupted run can never leave a partial
    trace/metrics/telemetry file behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        # mkstemp files are 0600; restore the umask-governed default so
        # the artifact is readable like any plainly-written file.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def _assign_lanes(traces: "Iterable[IoTrace]") -> Dict[int, int]:
    """Pack I/O traces onto lanes; returns ``{io_id: lane}``.

    Greedy interval partitioning over ``(start, end)`` — deterministic
    given the deterministic span stream.
    """
    lanes_free_at: List[int] = []
    assignment: Dict[int, int] = {}
    for trace in sorted(traces, key=lambda t: (t.pid, t.start_ns, t.io_id)):
        for lane, free_at in enumerate(lanes_free_at):
            if free_at <= trace.start_ns:
                lanes_free_at[lane] = trace.end_ns
                assignment[trace.io_id] = lane
                break
        else:
            assignment[trace.io_id] = len(lanes_free_at)
            lanes_free_at.append(trace.end_ns)
    return assignment


def telemetry_counter_events(telemetry: "Optional[AnyTelemetry]") -> List[dict]:
    """Chrome counter ("C" phase) events for every telemetry sample.

    Each series becomes one counter track per pid; Perfetto renders the
    samples as a stepped area chart alongside the I/O spans, so queue
    ramps and GC onset line up visually with the spans that caused them.
    """
    events: List[dict] = []
    if telemetry is None or not getattr(telemetry, "enabled", False):
        return events
    for series in telemetry:
        for t_ns, value in series.samples():
            events.append(
                {
                    "name": series.name,
                    "cat": "telemetry",
                    "ph": "C",
                    "ts": t_ns / 1000.0,
                    "pid": series.pid,
                    "tid": 0,
                    "args": {"value": round(value, 6)},
                }
            )
    return events


def chrome_trace_events(
    tracer: "AnyTracer", telemetry: "Optional[AnyTelemetry]" = None
) -> List[dict]:
    """The ``traceEvents`` list for ``tracer``'s finished spans.

    When a live ``telemetry`` recorder is passed, its samples are
    appended as counter events so one trace file carries both views.
    """
    events: List[dict] = []
    lanes = _assign_lanes(tracer.finished_ios)
    pids = set()
    lane_tids: set = set()
    for trace in tracer.finished_ios:
        tid = lanes[trace.io_id]
        pids.add(trace.pid)
        lane_tids.add((trace.pid, tid))
        for span in trace.spans():
            events.append(
                {
                    "name": span.name,
                    "cat": "io" if span.depth == 0 else "io.detail",
                    "ph": "X",
                    "ts": span.start_ns / 1000.0,
                    "dur": span.duration_ns / 1000.0,
                    "pid": trace.pid,
                    "tid": tid,
                    "args": {
                        "io_id": trace.io_id,
                        "op": trace.op,
                        "offset": trace.offset,
                        "nbytes": trace.nbytes,
                        "start_ns": span.start_ns,
                        "dur_ns": span.duration_ns,
                        **dict(span.args),
                    },
                }
            )
    track_tids: Dict[Tuple[int, str], int] = {}
    for span in tracer.track_spans:
        args = dict(span.args)
        pid = args.pop("pid", 1)
        pids.add(pid)
        key = (pid, span.track)
        if key not in track_tids:
            track_tids[key] = _TRACK_TID_BASE + len(track_tids)
        events.append(
            {
                "name": span.name,
                "cat": "device",
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": pid,
                "tid": track_tids[key],
                "args": {
                    "start_ns": span.start_ns,
                    "dur_ns": span.duration_ns,
                    **args,
                },
            }
        )
    metadata: List[dict] = []
    device_labels = getattr(tracer, "device_labels", {})
    for pid in sorted(pids):
        label = device_labels.get(pid)
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": f"sim {pid} [{label}]" if label else f"sim {pid}"
                },
            }
        )
    for (pid, tid) in sorted(lane_tids):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"io lane {tid}"},
            }
        )
    for (pid, track), tid in sorted(track_tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return metadata + events + telemetry_counter_events(telemetry)


def to_chrome_trace(
    tracer: "AnyTracer", telemetry: "Optional[AnyTelemetry]" = None
) -> dict:
    """The full JSON-object-format document."""
    return {
        "traceEvents": chrome_trace_events(tracer, telemetry),
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(
    tracer: "AnyTracer", path: str, telemetry: "Optional[AnyTelemetry]" = None
) -> int:
    """Serialize to ``path``; returns the number of events written."""
    document = to_chrome_trace(tracer, telemetry)
    atomic_write_text(path, json.dumps(document))
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# JSONL structured events
# ----------------------------------------------------------------------
#: Schema version stamped on every JSONL line; bump on layout changes.
JSONL_SCHEMA = 1


def _jsonl(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def trace_jsonl_lines(
    tracer: "AnyTracer", telemetry: "Optional[AnyTelemetry]" = None
) -> List[str]:
    """One JSON object per line: header, then per-I/O span/wait events.

    The greppable/jq-able counterpart of the Chrome trace: no viewer
    needed to ask "show me every wait on ssd.die3".  Line order and
    key order are deterministic (finished-I/O order, then background
    track spans, then telemetry samples), so serial and ``--jobs N``
    runs export byte-identical files.  Every line carries
    ``"schema": JSONL_SCHEMA`` and a ``"type"`` discriminator:
    ``header`` / ``io`` / ``span`` / ``wait`` / ``track_span`` /
    ``sample``.
    """
    lines: List[str] = []
    device_labels = getattr(tracer, "device_labels", {})
    lines.append(
        _jsonl(
            {
                "schema": JSONL_SCHEMA,
                "type": "header",
                "producer": "repro.obs",
                "devices": {str(pid): label for pid, label in sorted(device_labels.items())},
                "ios": len(tracer.finished_ios),
                "track_spans": len(tracer.track_spans),
            }
        )
    )
    for trace in tracer.finished_ios:
        lines.append(
            _jsonl(
                {
                    "schema": JSONL_SCHEMA,
                    "type": "io",
                    "io_id": trace.io_id,
                    "pid": trace.pid,
                    "op": trace.op,
                    "offset": trace.offset,
                    "nbytes": trace.nbytes,
                    "start_ns": trace.start_ns,
                    "end_ns": trace.end_ns,
                    "latency_ns": trace.latency_ns,
                }
            )
        )
        for span in trace.spans():
            event = {
                "schema": JSONL_SCHEMA,
                "type": "span",
                "io_id": trace.io_id,
                "pid": trace.pid,
                "name": span.name,
                "cat": "phase" if span.depth == 0 else "detail",
                "start_ns": span.start_ns,
                "end_ns": span.end_ns,
                "dur_ns": span.duration_ns,
            }
            if span.args:
                event["args"] = dict(span.args)
            lines.append(_jsonl(event))
        for edge in trace.waits():
            lines.append(
                _jsonl(
                    {
                        "schema": JSONL_SCHEMA,
                        "type": "wait",
                        "io_id": trace.io_id,
                        "pid": trace.pid,
                        "resource": edge.resource,
                        "holder": edge.holder,
                        "start_ns": edge.start_ns,
                        "end_ns": edge.end_ns,
                        "dur_ns": edge.duration_ns,
                    }
                )
            )
    for span in tracer.track_spans:
        args = dict(span.args)
        pid = args.pop("pid", 1)
        event = {
            "schema": JSONL_SCHEMA,
            "type": "track_span",
            "track": span.track,
            "pid": pid,
            "name": span.name,
            "start_ns": span.start_ns,
            "end_ns": span.end_ns,
            "dur_ns": span.duration_ns,
        }
        if args:
            event["args"] = args
        lines.append(_jsonl(event))
    if telemetry is not None and getattr(telemetry, "enabled", False):
        for series in telemetry:
            for t_ns, value in series.samples():
                lines.append(
                    _jsonl(
                        {
                            "schema": JSONL_SCHEMA,
                            "type": "sample",
                            "pid": series.pid,
                            "series": series.name,
                            "kind": series.kind,
                            "t_ns": t_ns,
                            "value": round(value, 6),
                        }
                    )
                )
    return lines


def trace_to_jsonl(
    tracer: "AnyTracer", telemetry: "Optional[AnyTelemetry]" = None
) -> str:
    return "\n".join(trace_jsonl_lines(tracer, telemetry)) + "\n"


def write_trace_jsonl(
    tracer: "AnyTracer", path: str, telemetry: "Optional[AnyTelemetry]" = None
) -> int:
    """Serialize to ``path``; returns the number of lines written."""
    lines = trace_jsonl_lines(tracer, telemetry)
    atomic_write_text(path, "\n".join(lines) + "\n")
    return len(lines)


# ----------------------------------------------------------------------
# Metrics dumps
# ----------------------------------------------------------------------
def metrics_to_text(registry: "AnyRegistry", now_ns: Optional[int] = None) -> str:
    """Aligned human-readable table, one instrument per line."""
    rows = registry.snapshot(now_ns)
    if not rows:
        return "(no metrics registered)"
    lines: List[str] = []
    name_width = max(len(row["name"]) for row in rows)
    for row in rows:
        if row["kind"] == "counter":
            detail = f"{row['value']:>12}"
        elif row["kind"] == "gauge":
            detail = (
                f"{row['value']:>12.1f}  max={row['max']:.1f}  "
                f"mean={row['time_mean']:.2f}"
            )
        else:
            detail = (
                f"count={row['count']}  mean={row['mean']:.2f}  "
                f"p50={row['p50']:.2f}  p99={row['p99']:.2f}  "
                f"max={row['max']:.2f}"
            )
        unit = f" {row['unit']}" if row["unit"] else ""
        lines.append(
            f"{row['name'].ljust(name_width)}  {row['kind']:<9} {detail}{unit}"
        )
    return "\n".join(lines)


_CSV_FIELDS = (
    "name",
    "kind",
    "unit",
    "value",
    "count",
    "mean",
    "min",
    "max",
    "p50",
    "p99",
    "time_mean",
)


def metrics_to_csv(registry: "AnyRegistry", now_ns: Optional[int] = None) -> str:
    """Machine-readable dump: one row per instrument, fixed columns."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS, restval="")
    writer.writeheader()
    for row in registry.snapshot(now_ns):
        writer.writerow({key: row.get(key, "") for key in _CSV_FIELDS})
    return buffer.getvalue()


def write_metrics_csv(
    registry: "AnyRegistry", path: str, now_ns: Optional[int] = None
) -> None:
    atomic_write_text(path, metrics_to_csv(registry, now_ns))


# ----------------------------------------------------------------------
# Telemetry dumps
# ----------------------------------------------------------------------
_TELEMETRY_CSV_FIELDS = ("pid", "series", "kind", "unit", "t_ns", "value")


def telemetry_to_csv(telemetry: "AnyTelemetry") -> str:
    """Long-format dump: one row per retained sample, (pid, series)-ordered.

    The row order and float formatting are deterministic, so serial and
    ``--jobs N`` sweep runs produce byte-identical files — the property
    the telemetry tests pin down.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_TELEMETRY_CSV_FIELDS)
    for series in telemetry:
        for t_ns, value in series.samples():
            writer.writerow(
                (
                    series.pid,
                    series.name,
                    series.kind,
                    series.unit,
                    t_ns,
                    f"{value:.6g}",
                )
            )
    return buffer.getvalue()


def write_telemetry_csv(telemetry: "AnyTelemetry", path: str) -> None:
    atomic_write_text(path, telemetry_to_csv(telemetry))


def telemetry_to_text(telemetry: "AnyTelemetry") -> str:
    """Aligned digest summary, one series per line (all samples ever
    taken, including those evicted from the ring)."""
    rows: List[tuple] = []
    for series in telemetry:
        digest = series.digest()
        onset = series.first_active_ns()
        rows.append(
            (
                f"{series.pid}:{series.name}",
                series.kind,
                digest.count,
                digest.mean,
                digest.quantile(0.50),
                digest.quantile(0.99),
                digest.max if digest.max is not None else 0.0,
                series.dropped,
                "-" if onset is None else f"{onset / 1e6:.3f}ms",
                series.unit,
            )
        )
    if not rows:
        return "(no telemetry series recorded)"
    name_width = max(len(row[0]) for row in rows)
    lines = []
    device_labels = getattr(telemetry, "device_labels", {})
    if device_labels:
        distinct = sorted(set(device_labels.values()))
        if len(distinct) == 1:
            lines.append(
                f"devices: {distinct[0]} ({len(device_labels)} sims)"
            )
        else:
            devices = ", ".join(
                f"{pid}:{label}"
                for pid, label in sorted(device_labels.items())
            )
            lines.append(f"devices: {devices}")
    for name, kind, count, mean, p50, p99, peak, dropped, onset, unit in rows:
        lines.append(
            f"{name.ljust(name_width)}  {kind:<5} n={count:<8} "
            f"mean={mean:<10.4g} p50={p50:<10.4g} p99={p99:<10.4g} "
            f"max={peak:<10.4g} dropped={dropped:<6} onset={onset:<10} {unit}"
        )
    return "\n".join(lines)
