"""Self-contained HTML timeline report for telemetry series.

One file, no external assets: each telemetry series renders as its own
small-multiple step chart (series differ in unit and scale, so they
never share an axis), with a digest summary line, a crosshair+tooltip
hover layer, and a lazily-built table view of the same samples.  The
output is a pure function of the recorder's content — no timestamps,
no random ids — so serial and parallel sweeps produce byte-identical
reports.
"""

from __future__ import annotations

import html as _html
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Callable, List, Tuple, Union

from repro.obs.export import atomic_write_text

if TYPE_CHECKING:
    from repro.obs.blame import BlameRecorder
    from repro.obs.telemetry import NullTelemetry, Telemetry, TimeSeries

    AnyTelemetry = Union[Telemetry, NullTelemetry]

# Chart geometry (px).
_WIDTH = 680
_HEIGHT = 170
_MARGIN_LEFT = 56
_MARGIN_RIGHT = 12
_MARGIN_TOP = 8
_MARGIN_BOTTOM = 24
_PLOT_W = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
_PLOT_H = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

_CSS = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --border: rgba(11, 11, 11, 0.10);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --border: rgba(255, 255, 255, 0.10);
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
  --border: rgba(255, 255, 255, 0.10);
}
.viz-root h1 { font-size: 18px; margin: 0 0 4px; }
.viz-root .subtitle { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.viz-root .chart-card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 16px 8px;
  margin: 0 0 16px;
  max-width: 720px;
}
.viz-root .chart-title { font-size: 14px; font-weight: 600; margin: 0; }
.viz-root .chart-sub {
  color: var(--text-secondary);
  font-size: 12px;
  margin: 2px 0 8px;
  font-variant-numeric: tabular-nums;
}
.viz-root svg { display: block; }
.viz-root .grid line { stroke: var(--gridline); stroke-width: 1; }
.viz-root .axis-baseline { stroke: var(--baseline); stroke-width: 1; }
.viz-root .tick-label {
  fill: var(--text-muted);
  font-size: 11px;
  font-variant-numeric: tabular-nums;
}
.viz-root .series-line {
  stroke: var(--series-1);
  stroke-width: 2;
  stroke-linejoin: round;
  stroke-linecap: round;
  fill: none;
}
.viz-root .crosshair { stroke: var(--baseline); stroke-width: 1; display: none; }
.viz-root .hover-dot { fill: var(--series-1); display: none; }
.viz-root .chart-wrap { position: relative; }
.viz-root .tooltip {
  position: absolute;
  display: none;
  pointer-events: none;
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 6px;
  padding: 4px 8px;
  font-size: 12px;
  color: var(--text-primary);
  font-variant-numeric: tabular-nums;
  white-space: nowrap;
  box-shadow: 0 1px 4px rgba(0, 0, 0, 0.12);
}
.viz-root .tooltip .t { color: var(--text-secondary); }
.viz-root details { margin: 4px 0 2px; }
.viz-root summary {
  color: var(--text-secondary);
  font-size: 12px;
  cursor: pointer;
}
.viz-root table {
  border-collapse: collapse;
  font-size: 12px;
  font-variant-numeric: tabular-nums;
  margin: 6px 0;
}
.viz-root th, .viz-root td {
  text-align: right;
  padding: 2px 10px;
  border-bottom: 1px solid var(--gridline);
}
.viz-root th { color: var(--text-secondary); font-weight: 600; }
.viz-root td.label, .viz-root th.label { text-align: left; }
.viz-root .blame-bar {
  display: inline-block;
  height: 9px;
  background: var(--series-1);
  border-radius: 2px;
  vertical-align: middle;
}
.viz-root .blame-card table { width: 100%; max-width: 640px; }
"""

_JS = """
function fmtVal(v) {
  return Math.abs(v) >= 1000 ? v.toLocaleString("en-US", {maximumFractionDigits: 0})
       : Number(v.toPrecision(4)).toString();
}
document.querySelectorAll(".chart-card").forEach(function (card) {
  var data = JSON.parse(card.querySelector("script[type='application/json']").textContent);
  var svg = card.querySelector("svg");
  var wrap = card.querySelector(".chart-wrap");
  var cross = card.querySelector(".crosshair");
  var dot = card.querySelector(".hover-dot");
  var tip = card.querySelector(".tooltip");
  var g = data.geom;
  function xPx(t) { return g.ml + (t - g.t0) / (g.t1 - g.t0) * g.pw; }
  function yPx(v) { return g.mt + g.ph - v / g.ymax * g.ph; }
  svg.addEventListener("mousemove", function (ev) {
    var rect = svg.getBoundingClientRect();
    var x = (ev.clientX - rect.left) * (g.w / rect.width);
    var t = g.t0 + (x - g.ml) / g.pw * (g.t1 - g.t0);
    var best = 0, bestD = Infinity;
    for (var i = 0; i < data.samples.length; i++) {
      var d = Math.abs(data.samples[i][0] - t);
      if (d < bestD) { bestD = d; best = i; }
    }
    var s = data.samples[best];
    var px = xPx(s[0]), py = yPx(s[1]);
    cross.setAttribute("x1", px); cross.setAttribute("x2", px);
    cross.style.display = "block";
    dot.setAttribute("cx", px); dot.setAttribute("cy", py);
    dot.setAttribute("r", 4); dot.style.display = "block";
    tip.innerHTML = "<span class='t'>" + s[0].toFixed(3) + " ms</span> &middot; "
      + fmtVal(s[1]) + (data.unit ? " " + data.unit : "");
    tip.style.display = "block";
    var left = px / g.w * rect.width + 12;
    if (left + tip.offsetWidth > rect.width) left -= tip.offsetWidth + 24;
    tip.style.left = left + "px";
    tip.style.top = (py / g.h * rect.height - 28) + "px";
  });
  svg.addEventListener("mouseleave", function () {
    cross.style.display = "none";
    dot.style.display = "none";
    tip.style.display = "none";
  });
  var details = card.querySelector("details");
  details.addEventListener("toggle", function () {
    if (!details.open || details.dataset.built) return;
    details.dataset.built = "1";
    var rows = data.samples.map(function (s) {
      return "<tr><td>" + s[0].toFixed(3) + "</td><td>" + fmtVal(s[1]) + "</td></tr>";
    });
    details.querySelector("tbody").innerHTML = rows.join("");
  });
});
"""


def _nice_ceil(value: float) -> float:
    """Smallest 1/2/5 x 10^k at or above ``value``."""
    if value <= 0:
        return 1.0
    exponent = math.floor(math.log10(value))
    base = 10.0 ** exponent
    for mult in (1.0, 2.0, 5.0, 10.0):
        if mult * base >= value * (1 - 1e-9):
            return mult * base
    return 10.0 * base


def _ticks(limit: float, n: int = 4) -> List[float]:
    return [limit * i / n for i in range(n + 1)]


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def _step_paths(
    samples: List[Tuple[float, float]],
    period_ms: float,
    xpx: Callable[[float], float],
    ypx: Callable[[float], float],
) -> List[str]:
    """Step-after subpaths, broken at unobserved gaps between buckets."""
    paths: List[str] = []
    parts: List[str] = []
    prev_t = None
    for t, v in samples:
        if prev_t is not None and t - prev_t > period_ms * 1.5:
            parts.append(f"H{xpx(prev_t + period_ms):.1f}")
            paths.append(" ".join(parts))
            parts = []
            prev_t = None
        if prev_t is None:
            parts.append(f"M{xpx(t):.1f} {ypx(v):.1f}")
        else:
            parts.append(f"H{xpx(t):.1f} V{ypx(v):.1f}")
        prev_t = t
    if parts:
        parts.append(f"H{xpx(prev_t + period_ms):.1f}")
        paths.append(" ".join(parts))
    return paths


def _chart_card(series: "TimeSeries") -> str:
    samples = [
        (t_ns / 1e6, value) for t_ns, value in series.samples()
    ]
    period_ms = series.period_ns / 1e6
    digest = series.digest()
    t0 = samples[0][0] if samples else 0.0
    t1 = (samples[-1][0] + period_ms) if samples else 1.0
    if t1 <= t0:
        t1 = t0 + period_ms
    ymax = _nice_ceil(max((v for _t, v in samples), default=0.0))

    def xpx(t: float) -> float:
        return _MARGIN_LEFT + (t - t0) / (t1 - t0) * _PLOT_W

    def ypx(v: float) -> float:
        return _MARGIN_TOP + _PLOT_H - v / ymax * _PLOT_H

    grid = []
    labels = []
    for tick in _ticks(ymax):
        y = ypx(tick)
        grid.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{_MARGIN_LEFT + _PLOT_W}" y2="{y:.1f}"/>'
        )
        labels.append(
            f'<text class="tick-label" x="{_MARGIN_LEFT - 6}" '
            f'y="{y + 3.5:.1f}" text-anchor="end">{_fmt_tick(tick)}</text>'
        )
    x_tick_count = 5
    for i in range(x_tick_count + 1):
        t = t0 + (t1 - t0) * i / x_tick_count
        x = xpx(t)
        labels.append(
            f'<text class="tick-label" x="{x:.1f}" '
            f'y="{_MARGIN_TOP + _PLOT_H + 16}" text-anchor="middle">'
            f"{t:.3g}</text>"
        )
    line = "".join(
        f'<path class="series-line" d="{d}"/>'
        for d in _step_paths(samples, period_ms, xpx, ypx)
    )
    onset = series.first_active_ns()
    onset_text = "-" if onset is None else f"{onset / 1e6:.3f} ms"
    sub = (
        f"{series.kind} &middot; n={digest.count} &middot; "
        f"mean={_fmt_tick(digest.mean)} &middot; "
        f"p99={_fmt_tick(digest.quantile(0.99))} &middot; "
        f"max={_fmt_tick(digest.max or 0.0)}"
        f"{' ' + _html.escape(series.unit) if series.unit else ''}"
        f" &middot; first active {onset_text}"
        f" &middot; {series.dropped} samples folded to digest"
    )
    payload = json.dumps(
        {
            "unit": series.unit,
            "samples": [[round(t, 6), round(v, 6)] for t, v in samples],
            "geom": {
                "w": _WIDTH,
                "h": _HEIGHT,
                "ml": _MARGIN_LEFT,
                "mt": _MARGIN_TOP,
                "pw": _PLOT_W,
                "ph": _PLOT_H,
                "t0": t0,
                "t1": t1,
                "ymax": ymax,
            },
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    title = f"sim {series.pid} &middot; {_html.escape(series.name)}"
    unit_th = _html.escape(series.unit) or "value"
    return f"""<div class="chart-card">
<p class="chart-title">{title}</p>
<p class="chart-sub">{sub}</p>
<div class="chart-wrap">
<svg viewBox="0 0 {_WIDTH} {_HEIGHT}" width="{_WIDTH}" height="{_HEIGHT}"
     role="img" aria-label="{_html.escape(series.name)} over time">
<g class="grid">{''.join(grid)}</g>
<line class="axis-baseline" x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + _PLOT_H}"
      x2="{_MARGIN_LEFT + _PLOT_W}" y2="{_MARGIN_TOP + _PLOT_H}"/>
{line}
<line class="crosshair" y1="{_MARGIN_TOP}" y2="{_MARGIN_TOP + _PLOT_H}" x1="0" x2="0"/>
<circle class="hover-dot" cx="0" cy="0" r="4"/>
{''.join(labels)}
</svg>
<div class="tooltip"></div>
</div>
<details><summary>Table view</summary>
<table><thead><tr><th>t (ms)</th><th>{unit_th}</th></tr></thead>
<tbody></tbody></table>
</details>
<script type="application/json">{payload}</script>
</div>"""


def telemetry_report_html(
    telemetry: "AnyTelemetry", title: str = "Telemetry timeline"
) -> str:
    """Render the full report document as a string."""
    cards = [_chart_card(series) for series in telemetry]
    if cards:
        body = "\n".join(cards)
        count = len(cards)
        subtitle = (
            f"{count} series &middot; time in milliseconds of simulated time; "
            "each chart is one resource on its own scale"
        )
    else:
        body = '<p class="subtitle">(no telemetry series recorded)</p>'
        subtitle = "no series recorded"
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body class="viz-root">
<h1>{_html.escape(title)}</h1>
<p class="subtitle">{subtitle}</p>
{body}
<script>{_JS}</script>
</body>
</html>
"""


def write_telemetry_html(
    telemetry: "AnyTelemetry",
    path: Union[str, Path],
    title: str = "Telemetry timeline",
) -> Path:
    """Write the report atomically; returns the path."""
    return atomic_write_text(path, telemetry_report_html(telemetry, title))


# ----------------------------------------------------------------------
# Blame report (repro.obs.blame)
# ----------------------------------------------------------------------
def _share_row(label: str, holder: str, share: float) -> str:
    width = max(0.0, min(1.0, share)) * 240.0
    return (
        f'<tr><td class="label">{_html.escape(label)}</td>'
        f'<td class="label">{_html.escape(holder)}</td>'
        f'<td>{share * 100.0:.1f}%</td>'
        f'<td class="label"><span class="blame-bar" '
        f'style="width:{width:.1f}px"></span></td></tr>'
    )


def blame_section_html(recorder: "BlameRecorder") -> str:
    """The blame cards (no document shell) — embeddable and standalone.

    A pure function of the recorder's content, valid even with zero
    observed I/Os or zero captured outliers (no axis math is involved,
    so there is nothing to divide by).
    """
    from repro.obs.blame import format_ns

    parts: List[str] = []
    if not recorder.observed:
        parts.append(
            '<div class="chart-card blame-card">'
            '<p class="chart-title">Blame</p>'
            '<p class="chart-sub">(no I/Os observed)</p></div>'
        )
        return "\n".join(parts)
    for (device, op), records in recorder.groups():
        digest = recorder.group_digest(device, op)
        title = f"{_html.escape(device)} / {_html.escape(op)}"
        sub = (
            f"{digest.count} I/Os &middot; "
            f"p50={format_ns(digest.quantile(0.50))} &middot; "
            f"p99={format_ns(digest.quantile(0.99))} &middot; "
            f"p99.9={format_ns(digest.quantile(0.999))} &middot; "
            f"max={format_ns(digest.max or 0.0)}"
        )
        shares = recorder.tail_blame(device, op)
        if shares:
            rows = [_share_row(r, h, s) for r, h, s in shares]
            service = 1.0 - sum(s for _r, _h, s in shares)
            rows.append(_share_row("(service)", "", service))
            body = (
                '<table><thead><tr><th class="label">resource</th>'
                '<th class="label">holder</th><th>share</th>'
                '<th class="label"></th></tr></thead>'
                f'<tbody>{"".join(rows)}</tbody></table>'
            )
        else:
            body = '<p class="chart-sub">(no wait edges captured)</p>'
        outliers = "".join(
            f"<tr><td>{rec.io_id}</td><td>{format_ns(rec.latency_ns)}</td>"
            f"<td>{format_ns(rec.wait_ns)}</td>"
            f"<td>{format_ns(rec.service_ns)}</td></tr>"
            for rec in records
        )
        outlier_table = (
            '<details><summary>Outliers</summary>'
            '<table><thead><tr><th>io</th><th>latency</th><th>wait</th>'
            '<th>service</th></tr></thead>'
            f'<tbody>{outliers}</tbody></table></details>'
            if records
            else ""
        )
        parts.append(
            f'<div class="chart-card blame-card"><p class="chart-title">{title}</p>'
            f'<p class="chart-sub">{sub}</p>{body}{outlier_table}</div>'
        )
    slo_rows = recorder.slo_rows()
    if slo_rows:
        rows = "".join(
            f'<tr><td class="label">{_html.escape(row["label"])}</td>'
            f'<td>{row["checked"] - row["misses"]}/{row["checked"]}</td>'
            f'<td>{row["attainment"] * 100.0:.3f}%</td>'
            f'<td class="label">{"MET" if row["met"] else "MISSED"}</td>'
            f'<td>{row["peak_burn"]:.1f}x</td></tr>'
            for row in slo_rows
        )
        parts.append(
            '<div class="chart-card blame-card"><p class="chart-title">SLO '
            'attainment</p><table><thead><tr><th class="label">objective</th>'
            '<th>ok</th><th>attainment</th><th class="label">verdict</th>'
            '<th>peak burn</th></tr></thead>'
            f'<tbody>{rows}</tbody></table></div>'
        )
    return "\n".join(parts)


def blame_report_html(
    recorder: "BlameRecorder", title: str = "Tail-latency blame"
) -> str:
    """Render the standalone blame report document."""
    subtitle = (
        f"{recorder.observed} I/Os observed &middot; top "
        f"{recorder.config.top} outliers per (device, op) group"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body class="viz-root">
<h1>{_html.escape(title)}</h1>
<p class="subtitle">{subtitle}</p>
{blame_section_html(recorder)}
</body>
</html>
"""


def write_blame_html(
    recorder: "BlameRecorder",
    path: Union[str, Path],
    title: str = "Tail-latency blame",
) -> Path:
    """Write the blame report atomically; returns the path."""
    return atomic_write_text(path, blame_report_html(recorder, title))
