"""Time-series telemetry: periodic resource sampling on the sim clock.

The span tracer answers "what happened to this I/O"; the metrics
registry answers "how much happened overall".  Neither answers *when* a
resource saturated — when the write buffer filled, when GC kicked in,
when the poll loop started burning a whole core.  This module does:
layers feed per-resource updates into named :class:`TimeSeries` objects,
and each series folds those updates into fixed-period samples on the
simulation clock — the periodic per-resource accounting full-system SSD
simulators (SimpleSSD, Amber) emit as a first-class output.

Three series kinds cover every instrumented resource:

* ``level`` — a held value (queue depth, buffer occupancy).  Updates are
  ``record(t, value)`` transitions; each period's sample is the
  *time-weighted mean* level across that period, exactly like the
  registry's gauges but resolved in time.
* ``rate`` — discrete occurrences (pages migrated, faults injected).
  Updates are ``add(t, n)``; each sample is the count in that period.
* ``busy`` — resource occupation intervals (die/channel busy windows,
  poll-loop spins).  Updates are ``add_interval(t0, t1)``; each sample
  is the fraction of the period the resource was busy, divided by
  ``scale`` parallel instances when the series aggregates several
  (e.g. one ``ssd.dies.busy`` series over all dies).

Samples live in a bounded ring: when a series outgrows ``capacity``
periods the oldest samples are evicted (``dropped`` counts them) into a
streaming :class:`TailDigest` — log2-bucketed quantiles (p50/p95/p99/
p99.9) over *every* sample ever taken, without storing raw samples, so
tail statistics survive ring truncation.

Determinism contract: series content is a pure function of the update
stream, which is a pure function of the simulation — so serial and
parallel sweep runs produce byte-identical telemetry once worker
recorders are absorbed in point order (see
:meth:`Telemetry.absorb`).  Like the tracer, each fresh simulator gets
its own ``pid`` so back-to-back measurement runs (each restarting the
clock at zero) never alias on the time axis.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

#: Default sampling period: 10 us resolves queue ramps and GC cycles on
#: runs whose interesting dynamics play out over milliseconds.
DEFAULT_PERIOD_NS = 10_000

#: Default ring capacity in periods (~40 ms of history at the default
#: period); older samples fold into the digest.
DEFAULT_CAPACITY = 4096

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


class TailDigest:
    """Streaming log2-bucket quantile digest.

    Positive samples land in power-of-two buckets keyed by their binary
    exponent; zeros (ubiquitous in idle periods) get their own bucket.
    Quantiles return the covering bucket's midpoint, so any reported
    quantile q satisfies ``q/true in [0.75, 1.5]`` — coarse but
    allocation-free and exactly mergeable across shards.
    """

    __slots__ = ("count", "total", "min", "max", "_zeros", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._zeros = 0
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.observe_many(value, 1)

    def observe_many(self, value: float, n: int) -> None:
        """Fold ``n`` identical samples in (bulk path for idle runs)."""
        if n <= 0:
            return
        value = float(value)
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self._zeros += n
            return
        exponent = _frexp_exponent(value)
        self._buckets[exponent] = self._buckets.get(exponent, 0) + n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        if self._zeros >= target:
            return 0.0
        seen = self._zeros
        for exponent in sorted(self._buckets):
            seen += self._buckets[exponent]
            if seen >= target:
                low = 2.0 ** (exponent - 1)
                high = 2.0 ** exponent
                return (low + high) / 2.0
        return float(self.max or 0.0)

    def merge(self, other: "TailDigest") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        self._zeros += other._zeros
        for exponent, count in other._buckets.items():
            self._buckets[exponent] = self._buckets.get(exponent, 0) + count

    def copy(self) -> "TailDigest":
        clone = TailDigest()
        clone.merge(self)
        return clone

    def to_dict(self) -> Dict[str, float]:
        row: Dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }
        for name, q in _QUANTILES:
            row[name] = self.quantile(q)
        return row


def _frexp_exponent(value: float) -> int:
    import math

    return math.frexp(value)[1]


_KINDS = ("level", "rate", "busy")


class TimeSeries:
    """One named resource series: bounded per-period samples + digest.

    Buckets are indexed by ``t // period_ns``.  Update state accumulates
    per open bucket in a dict (out-of-order arrivals within the retained
    window are fine — analytic bookings land in the near future); when
    more than ``capacity`` buckets are held, the oldest are *sealed*:
    their sample value moves into the digest and the ``dropped`` count,
    and the bucket is discarded.  ``samples()`` is non-destructive — it
    renders the retained buckets (plus, for level series, the implied
    idle gaps) without mutating update state, so it can be called at any
    point and again later.
    """

    __slots__ = (
        "name",
        "kind",
        "unit",
        "pid",
        "period_ns",
        "capacity",
        "scale",
        "dropped",
        "_digest",
        "_buckets",
        "_level",
        "_last_t",
        "_max_bucket",
        "_onset_ns",
    )

    def __init__(
        self,
        name: str,
        kind: str = "level",
        unit: str = "",
        *,
        pid: int = 1,
        period_ns: int = DEFAULT_PERIOD_NS,
        capacity: int = DEFAULT_CAPACITY,
        scale: int = 1,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown series kind {kind!r}; choose from {_KINDS}")
        if period_ns <= 0:
            raise ValueError("sample period must be positive")
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.name = name
        self.kind = kind
        self.unit = unit
        self.pid = pid
        self.period_ns = int(period_ns)
        self.capacity = int(capacity)
        self.scale = max(1, int(scale))
        self.dropped = 0
        self._digest = TailDigest()
        #: bucket index -> accumulated state: weighted level area (level),
        #: occurrence count (rate), or busy nanoseconds (busy).
        self._buckets: Dict[int, float] = {}
        self._level = 0.0
        self._last_t = 0
        self._max_bucket = -1
        self._onset_ns: Optional[int] = None

    enabled = True

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def record(self, t_ns: int, value: float) -> None:
        """Level transition: the series holds ``value`` from ``t_ns`` on."""
        t_ns = int(t_ns)
        if t_ns < self._last_t:
            t_ns = self._last_t  # clamp, like Gauge.set
        if self._level != 0.0:
            self._spread(self._last_t, t_ns, self._level)
        elif t_ns > self._last_t:
            # Holding zero still advances coverage so later samples know
            # the gap was observed-idle, not unobserved.
            self._touch(t_ns)
        self._level = float(value)
        self._last_t = t_ns
        if value:
            self._mark_onset(t_ns)
        self._touch(t_ns)
        self._seal_excess()

    def add(self, t_ns: int, n: float = 1.0) -> None:
        """Rate occurrence: ``n`` events at ``t_ns``."""
        bucket = int(t_ns) // self.period_ns
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + float(n)
        if n:
            self._mark_onset(int(t_ns))
        if bucket > self._max_bucket:
            self._max_bucket = bucket
        self._seal_excess()

    def add_interval(self, start_ns: int, end_ns: int) -> None:
        """Busy window: the resource was occupied over [start, end)."""
        if end_ns > start_ns:
            self._mark_onset(int(start_ns))
            self._spread(int(start_ns), int(end_ns), 1.0)
            self._seal_excess()

    def _mark_onset(self, t_ns: int) -> None:
        period_start = (t_ns // self.period_ns) * self.period_ns
        if self._onset_ns is None or period_start < self._onset_ns:
            self._onset_ns = period_start

    # ------------------------------------------------------------------
    def _spread(self, start: int, end: int, weight: float) -> None:
        """Accumulate ``weight`` x time over [start, end) into buckets.

        Buckets that would fall straight off the ring (the update spans
        more than ``capacity`` periods) are folded into the digest
        without ever being allocated — a level held across seconds of
        idle time must not materialize millions of dict entries.
        """
        period = self.period_ns
        first = start // period
        last = (end - 1) // period
        if last > self._max_bucket:
            self._max_bucket = last
        retain_from = self._max_bucket - self.capacity + 1
        if first < retain_from:
            seal_hi = min(retain_from, last + 1)
            # Boundary buckets are partially covered (or already hold
            # accumulated state); everything between them is a run of
            # identical fully-covered periods — digest those in bulk.
            boundary = {
                k for k in self._buckets if first <= k < seal_hi
            }
            boundary.update(b for b in (first, last) if b < seal_hi)
            plain = (seal_hi - first) - len(boundary)
            self._digest.observe_many(self._seal_value(weight * period), plain)
            self.dropped += max(0, plain)
            for b in sorted(boundary):
                accum = self._buckets.pop(b, 0.0) + weight * (
                    min(end, (b + 1) * period) - max(start, b * period)
                )
                self._digest.observe(self._seal_value(accum))
                self.dropped += 1
            first = seal_hi
        for b in range(first, last + 1):
            span_start = max(start, b * period)
            span_end = min(end, (b + 1) * period)
            self._buckets[b] = self._buckets.get(b, 0.0) + weight * (
                span_end - span_start
            )

    def _touch(self, t_ns: int) -> None:
        bucket = t_ns // self.period_ns
        if bucket > self._max_bucket:
            self._max_bucket = bucket
            self._buckets.setdefault(bucket, 0.0)

    def _value_of(self, bucket: int, accum: float) -> float:
        if self.kind == "rate":
            return accum
        if self.kind == "busy":
            return accum / (self.period_ns * self.scale)
        # level: time-weighted mean over the period.  The final bucket
        # may be partially covered; normalize by observed coverage.
        covered = self.period_ns
        if bucket == self._last_t // self.period_ns:
            covered = self._last_t - bucket * self.period_ns
            if covered <= 0:
                return self._level
            # Extend the held level to the last update so the partial
            # bucket reflects it.
        return accum / covered

    def _seal_value(self, accum: float) -> float:
        """A sealed (fully past) bucket's sample value from its accum."""
        if self.kind == "rate":
            return accum
        if self.kind == "busy":
            return accum / (self.period_ns * self.scale)
        return accum / self.period_ns

    def _seal_excess(self) -> None:
        if len(self._buckets) <= self.capacity:
            return
        threshold = self._max_bucket - self.capacity + 1
        for b in sorted(k for k in self._buckets if k < threshold):
            self._digest.observe(self._seal_value(self._buckets.pop(b)))
            self.dropped += 1

    # ------------------------------------------------------------------
    # Read side (non-destructive)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buckets)

    def samples(self) -> List[Tuple[int, float]]:
        """Retained ``(t_start_ns, value)`` samples, time-ascending.

        Only buckets that saw an update (or observed-idle coverage) are
        rendered; gaps between them are unobserved, not zero.
        """
        return [
            (bucket * self.period_ns, self._value_of(bucket, accum))
            for bucket, accum in sorted(self._buckets.items())
        ]

    def digest(self) -> TailDigest:
        """Digest over *all* samples: sealed ones plus the retained ring."""
        full = self._digest.copy()
        for bucket, accum in sorted(self._buckets.items()):
            full.observe(self._value_of(bucket, accum))
        return full

    def first_active_ns(self) -> Optional[int]:
        """Start of the first period that ever saw a nonzero update.

        Tracked at update time, so it survives ring eviction — the
        GC-onset timestamp is readable even when the onset itself has
        scrolled out of the retained window.
        """
        return self._onset_ns

    # ------------------------------------------------------------------
    def _merge_from(self, other: "TimeSeries") -> None:
        """Absorb a same-name worker series recorded on the same pid.

        Bucket accumulators and digests are additive; the merge is only
        sound when at most one side held a nonzero level (worker shards
        never interleave on one pid in practice — each pid is one sim).
        """
        for bucket, accum in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0.0) + accum
        self._digest.merge(other._digest)
        self.dropped += other.dropped
        if other._max_bucket > self._max_bucket:
            self._max_bucket = other._max_bucket
        if other._last_t > self._last_t:
            self._last_t = other._last_t
            self._level = other._level
        if other._onset_ns is not None:
            self._mark_onset(other._onset_ns)
        self._seal_excess()


class TelemetryConfig:
    """What to sample and how finely.

    ``series`` restricts recording to names matching any of the given
    prefixes (``None`` = record everything).  The config participates in
    sweep cache keys via :meth:`to_params`, so telemetry-on and
    telemetry-off runs can never share cache entries.
    """

    __slots__ = ("period_ns", "capacity", "series")

    def __init__(
        self,
        period_ns: int = DEFAULT_PERIOD_NS,
        capacity: int = DEFAULT_CAPACITY,
        series: Optional[Tuple[str, ...]] = None,
    ) -> None:
        if period_ns <= 0:
            raise ValueError("sample period must be positive")
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.period_ns = int(period_ns)
        self.capacity = int(capacity)
        self.series = tuple(series) if series is not None else None

    def wants(self, name: str) -> bool:
        if self.series is None:
            return True
        return any(name.startswith(prefix) for prefix in self.series)

    def to_params(self) -> Tuple[Tuple[str, Any], ...]:
        return (
            ("capacity", self.capacity),
            ("period_ns", self.period_ns),
            ("series", self.series),
        )

    @classmethod
    def from_params(cls, params: Tuple[Tuple[str, Any], ...]) -> "TelemetryConfig":
        table = dict(params)
        series = table.get("series")
        return cls(
            period_ns=int(table["period_ns"]),
            capacity=int(table["capacity"]),
            series=tuple(series) if series is not None else None,
        )


class Telemetry:
    """The recorder: named series scoped per simulator run (pid).

    Layers call ``series(...)`` at construction and feed updates on
    their fast paths; with telemetry disabled they get the shared
    :data:`NULL_SERIES` instead, so every update is one no-op call.
    """

    enabled = True

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self._series: "Dict[Tuple[int, str], TimeSeries]" = {}
        self._pid = 0
        #: pid -> registry/spec name of the device that sim ran against.
        self.device_labels: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def new_sim(self) -> None:
        """A fresh simulator attached; its series get the next pid."""
        self._pid += 1

    @property
    def current_pid(self) -> int:
        return max(1, self._pid)

    def label_device(self, label: str) -> None:
        """Record which device the current sim's series measure."""
        if label:
            self.device_labels[self.current_pid] = label

    # ------------------------------------------------------------------
    def series(
        self, name: str, kind: str = "level", unit: str = "", *, scale: int = 1
    ) -> Union[TimeSeries, "_NullSeries"]:
        """Get-or-create the series ``name`` for the current sim."""
        if not self.config.wants(name):
            return NULL_SERIES
        key = (self.current_pid, name)
        existing = self._series.get(key)
        if existing is not None:
            if existing.kind != kind:
                raise TypeError(
                    f"series {name!r} already registered as {existing.kind}"
                )
            return existing
        series = TimeSeries(
            name,
            kind,
            unit,
            pid=self.current_pid,
            period_ns=self.config.period_ns,
            capacity=self.config.capacity,
            scale=scale,
        )
        self._series[key] = series
        return series

    def get(self, name: str, pid: Optional[int] = None) -> TimeSeries:
        """Lookup by name (and pid; defaults to the only/first match)."""
        if pid is not None:
            return self._series[(pid, name)]
        for (series_pid, series_name), series in sorted(self._series.items()):
            if series_name == name:
                return series
        raise KeyError(f"no telemetry series named {name!r}")

    def names(self) -> List[str]:
        """Distinct series names, sorted."""
        return sorted({name for _pid, name in self._series})

    def __iter__(self) -> Iterator[TimeSeries]:
        """All series, ordered by (pid, name) — the export order."""
        return iter(
            series for _key, series in sorted(self._series.items())
        )

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    def digest(self, name: str) -> TailDigest:
        """Merged digest for ``name`` across every sim that recorded it."""
        merged = TailDigest()
        found = False
        for (pid, series_name), series in sorted(self._series.items()):
            if series_name == name:
                merged.merge(series.digest())
                found = True
        if not found:
            raise KeyError(f"no telemetry series named {name!r}")
        return merged

    # ------------------------------------------------------------------
    def absorb(self, other: "Telemetry") -> None:
        """Merge a worker recorder, rebasing its pids past this one's.

        Mirrors :meth:`SpanTracer.absorb`: absorbing worker recorders in
        point (spec) order reproduces the pid assignment a serial run
        would have made, so parallel telemetry is byte-identical to
        serial by construction.
        """
        pid_base = self._pid
        for (pid, name), series in sorted(other._series.items()):
            new_pid = pid + pid_base
            series.pid = new_pid
            key = (new_pid, name)
            mine = self._series.get(key)
            if mine is None:
                self._series[key] = series
            else:
                mine._merge_from(series)
        for pid, label in sorted(other.device_labels.items()):
            self.device_labels[pid + pid_base] = label
        self._pid += other._pid


class _NullSeries:
    """Shared no-op series: every update is one cheap call."""

    __slots__ = ()
    enabled = False
    name = ""
    kind = "null"
    unit = ""
    pid = 0
    dropped = 0

    def record(self, t_ns: int, value: float) -> None:
        pass

    def add(self, t_ns: int, n: float = 1.0) -> None:
        pass

    def add_interval(self, start_ns: int, end_ns: int) -> None:
        pass

    def samples(self) -> List[Tuple[int, float]]:
        return []

    def digest(self) -> TailDigest:
        return TailDigest()

    def first_active_ns(self) -> Optional[int]:
        return None

    def __len__(self) -> int:
        return 0


NULL_SERIES = _NullSeries()


class NullTelemetry:
    """The zero-cost default recorder."""

    enabled = False
    config: Optional[TelemetryConfig] = None
    device_labels: Dict[int, str] = {}

    def new_sim(self) -> None:
        pass

    def label_device(self, label: str) -> None:
        pass

    def series(
        self, name: str, kind: str = "level", unit: str = "", *, scale: int = 1
    ) -> _NullSeries:
        return NULL_SERIES

    def names(self) -> List[str]:
        return []

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_TELEMETRY = NullTelemetry()
