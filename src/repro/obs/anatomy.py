"""Latency-anatomy attribution: spans aggregated into the paper's
where-does-the-microsecond-go breakdown.

Where :func:`repro.core.extensions.latency_anatomy` re-runs a workload
with coarse three-stage probes, this module derives the same style of
report — at full span granularity — from any traced run, after the
fact.  Conservation is structural: each I/O's phases tile its lifetime,
so the per-name totals sum to the total end-to-end latency exactly
(integer nanoseconds, no residue).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.obs.tracer import sort_span_names

if TYPE_CHECKING:
    from repro.obs.tracer import SpanTracer


@dataclass(frozen=True)
class AnatomyRow:
    """One span name's aggregate contribution."""

    name: str
    total_ns: int
    count: int  # I/Os in which the span appeared

    def mean_us(self, io_count: int) -> float:
        """Mean contribution per *traced I/O* (not per appearance)."""
        return self.total_ns / io_count / 1000.0 if io_count else 0.0


@dataclass(frozen=True)
class AnatomyReport:
    """Per-span-name latency attribution over a set of traced I/Os."""

    rows: Tuple[AnatomyRow, ...]
    io_count: int
    total_latency_ns: int

    # ------------------------------------------------------------------
    @classmethod
    def from_tracer(
        cls, tracer: "SpanTracer", op: Optional[str] = None
    ) -> "AnatomyReport":
        """Aggregate ``tracer``'s finished I/Os (optionally one direction).

        ``op`` filters on the I/O's operation string (``"read"``,
        ``"write"``, ``"trim"``).
        """
        totals: Dict[str, int] = {}
        appearances: Dict[str, int] = {}
        io_count = 0
        total_latency = 0
        for trace in tracer.finished_ios:
            if op is not None and trace.op != op:
                continue
            io_count += 1
            total_latency += trace.latency_ns
            seen: Set[str] = set()
            for span in trace.phases():
                totals[span.name] = totals.get(span.name, 0) + span.duration_ns
                if span.name not in seen:
                    seen.add(span.name)
                    appearances[span.name] = appearances.get(span.name, 0) + 1
        rows = tuple(
            AnatomyRow(name=name, total_ns=totals[name], count=appearances[name])
            for name in sort_span_names(totals)
        )
        return cls(rows=rows, io_count=io_count, total_latency_ns=total_latency)

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(row.name for row in self.rows)

    @property
    def mean_latency_us(self) -> float:
        if self.io_count == 0:
            return 0.0
        return self.total_latency_ns / self.io_count / 1000.0

    def mean_us(self, name: str) -> float:
        """Mean per-I/O contribution of ``name`` (0.0 if absent)."""
        for row in self.rows:
            if row.name == name:
                return row.mean_us(self.io_count)
        return 0.0

    def share(self, name: str) -> float:
        """Fraction of total latency attributed to ``name``."""
        if self.total_latency_ns == 0:
            return 0.0
        for row in self.rows:
            if row.name == name:
                return row.total_ns / self.total_latency_ns
        return 0.0

    def breakdown_us(self) -> Dict[str, float]:
        return {row.name: row.mean_us(self.io_count) for row in self.rows}

    # ------------------------------------------------------------------
    def check_conservation(self) -> None:
        """Assert sum-of-spans == end-to-end latency (exact, in ns)."""
        attributed = sum(row.total_ns for row in self.rows)
        if attributed != self.total_latency_ns:
            raise AssertionError(
                f"anatomy leak: spans sum to {attributed} ns but "
                f"end-to-end latency is {self.total_latency_ns} ns"
            )

    def render(self) -> str:
        """Plain-text table mirroring the paper-style breakdown."""
        lines = [
            f"latency anatomy over {self.io_count} I/Os "
            f"(mean end-to-end {self.mean_latency_us:.2f} us)"
        ]
        if not self.rows:
            return lines[0]
        name_width = max(len(row.name) for row in self.rows)
        for row in self.rows:
            mean = row.mean_us(self.io_count)
            share = self.share(row.name)
            bar = "#" * int(round(share * 40))
            lines.append(
                f"  {row.name.ljust(name_width)}  {mean:9.3f} us  "
                f"{share * 100:5.1f}%  {bar}"
            )
        return "\n".join(lines)


def verify_conservation(tracer: "SpanTracer") -> int:
    """Check every finished I/O individually; returns the I/O count.

    Stricter than :meth:`AnatomyReport.check_conservation` (which only
    checks the aggregate): a per-I/O leak cannot hide behind another
    I/O's surplus.
    """
    checked = 0
    for trace in tracer.finished_ios:
        spans = trace.phases()
        attributed = sum(span.duration_ns for span in spans)
        if attributed != trace.latency_ns:
            raise AssertionError(
                f"io {trace.io_id}: spans sum to {attributed} ns, "
                f"latency is {trace.latency_ns} ns"
            )
        checked += 1
    return checked
