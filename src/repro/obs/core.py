"""The observability bundle and its attachment to simulators.

An :class:`Observability` object pairs a span tracer with a metrics
registry.  :class:`~repro.sim.engine.Simulator` looks up the *currently
installed* bundle at construction (``current_obs()``), so enabling
tracing for a whole figure run — which builds its own simulators
internally — is one context manager around the call:

    with Observability() as obs:
        result = run_figure("fig10")
    write_chrome_trace(obs.tracer, "fig10.json")

The default is :data:`NULL_OBS`: a no-op tracer and registry, so
uninstrumented runs pay nothing and stay bit-identical.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Union

from repro.obs.blame import BlameConfig, BlameRecorder
from repro.obs.prof import NULL_PROFILER, Profiler, ProfilerConfig
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanTracer
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, TelemetryConfig

if TYPE_CHECKING:
    from repro.sim.engine import Simulator


class Observability:
    """A tracer plus a registry (plus, optionally, telemetry),
    installable as the process default."""

    def __init__(
        self,
        *,
        tracing: bool = True,
        metrics: bool = True,
        telemetry: Union[bool, Telemetry, TelemetryConfig, None] = None,
        profile: Union[bool, Profiler, ProfilerConfig, None] = None,
        blame: Union[bool, BlameRecorder, BlameConfig, None] = None,
    ) -> None:
        self.tracer = SpanTracer() if tracing else NULL_TRACER
        self.registry = MetricsRegistry() if metrics else NULL_REGISTRY
        # Telemetry is opt-in: pass True for defaults, or a
        # TelemetryConfig to control period/capacity/series.
        if telemetry is True:
            self.telemetry = Telemetry()
        elif isinstance(telemetry, TelemetryConfig):
            self.telemetry = Telemetry(telemetry)
        elif isinstance(telemetry, Telemetry):
            self.telemetry = telemetry
        else:
            self.telemetry = NULL_TELEMETRY
        # The self-profiler (repro.obs.prof) is opt-in the same way.
        if profile is True:
            self.profiler = Profiler()
        elif isinstance(profile, ProfilerConfig):
            self.profiler = Profiler(profile)
        elif isinstance(profile, Profiler):
            self.profiler = profile
        else:
            self.profiler = NULL_PROFILER
        # Blame attribution (repro.obs.blame) is opt-in the same way,
        # but rides on the tracer: wait edges live on trace contexts.
        if blame is True:
            self.blame: Optional[BlameRecorder] = BlameRecorder()
        elif isinstance(blame, BlameConfig):
            self.blame = BlameRecorder(blame)
        elif isinstance(blame, BlameRecorder):
            self.blame = blame
        else:
            self.blame = None
        if self.blame is not None:
            if not self.tracer.enabled:
                raise ValueError(
                    "blame attribution requires tracing "
                    "(wait edges ride on trace contexts)"
                )
            assert isinstance(self.tracer, SpanTracer)
            self.tracer.blame = self.blame

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.registry.enabled
            or self.telemetry.enabled
            or self.profiler.enabled
            or self.blame is not None
        )

    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        """Called by each :class:`Simulator` binding itself to this bundle."""
        self.tracer.new_sim()
        self.telemetry.new_sim()
        self.profiler.new_sim()
        if self.blame is not None:
            self.blame.new_sim()

    def label_device(self, label: str) -> None:
        """Stamp the current sim's spans/series with a device name.

        Called by :class:`~repro.ssd.device.SsdDevice` construction with
        the registry/spec label its config resolved from, so traces and
        telemetry say *which* device a pid measured.
        """
        self.tracer.label_device(label)
        self.telemetry.label_device(label)
        if self.blame is not None:
            self.blame.label_device(label)

    def absorb(self, other: "Observability") -> None:
        """Merge a worker bundle (spans, metrics, telemetry) into this one.

        The sweep engine ships per-point bundles back from worker
        processes and absorbs them in point order, so parallel traced
        runs produce the same pids/io ids a serial run would.
        """
        io_base = getattr(self.tracer, "_next_io_id", 0)
        if self.tracer.enabled and getattr(other.tracer, "enabled", False):
            self.tracer.absorb(other.tracer)
        if self.registry.enabled and getattr(other.registry, "enabled", False):
            self.registry.absorb(other.registry)
        if self.telemetry.enabled and getattr(other.telemetry, "enabled", False):
            self.telemetry.absorb(other.telemetry)
        if self.profiler.enabled and getattr(other.profiler, "enabled", False):
            assert isinstance(self.profiler, Profiler)
            self.profiler.absorb(other.profiler)
        if self.blame is not None and getattr(other, "blame", None) is not None:
            assert other.blame is not None
            self.blame.absorb(other.blame, io_base=io_base)

    # ------------------------------------------------------------------
    def install(self) -> "Observability":
        """Make this the bundle new simulators pick up."""
        _INSTALLED.append(self)
        return self

    def uninstall(self) -> None:
        _INSTALLED.remove(self)

    def __enter__(self) -> "Observability":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()


class _NullObservability:
    """The zero-cost default bundle."""

    tracer = NULL_TRACER
    registry = NULL_REGISTRY
    telemetry = NULL_TELEMETRY
    profiler = NULL_PROFILER
    blame: Optional[BlameRecorder] = None
    enabled = False

    def attach(self, sim: "Simulator") -> None:
        pass

    def label_device(self, label: str) -> None:
        pass


NULL_OBS = _NullObservability()

_INSTALLED: List[Observability] = []


def current_obs() -> Union[Observability, _NullObservability]:
    """The innermost installed bundle, or the no-op default."""
    return _INSTALLED[-1] if _INSTALLED else NULL_OBS


def obs_aware_cache(fn: Callable[..., Any]) -> Callable[..., Any]:
    """``lru_cache(maxsize=None)`` that steps aside while observability
    is installed.

    Figure measurements are memoized so figures can share runs, but a
    traced run must actually execute to produce spans — and a result
    computed under tracing must not be served to an untraced caller
    (or vice versa).  While a bundle is installed the call runs fresh
    and the cache is neither consulted nor populated.
    """
    cached = functools.lru_cache(maxsize=None)(fn)

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if current_obs().enabled:
            return fn(*args, **kwargs)
        return cached(*args, **kwargs)

    wrapper.cache_clear = cached.cache_clear
    wrapper.cache_info = cached.cache_info
    wrapper.__wrapped__ = fn
    return wrapper
