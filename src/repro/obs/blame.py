"""Tail-latency forensics: per-I/O wait-for blame attribution.

The span tracer answers *how long* each layer took; telemetry answers
*what resources looked like over time*.  Neither answers the question
that actually matters at the tail — **what was this slow request
waiting on, and who was occupying that resource?**  This module does.

Every layer that can make an I/O wait emits :class:`WaitEdge` records
``(resource, holder, start_ns, end_ns)`` on the I/O's trace context
(see :meth:`repro.obs.tracer.IoTrace.wait`): the kernel stack on
requeue backoff, the NVMe controller on SQ backlog and timeout
recovery, the SSD on die/channel busy, write-buffer-full and
program-suspend windows (with GC named as the holder when a collection
is in flight), the SPDK poller on its completion-detection gap, and the
NBD client on link outages.  A :class:`BlameRecorder` hangs off the
tracer's ``_finished`` hook (one ``is not None`` test per I/O when
disabled) and keeps:

* a bounded **top-K reservoir** of the slowest requests per
  ``(device, op)`` group, each captured as a detached, pickle-safe
  :class:`OutlierRecord` with its full phase timeline and wait chain;
* per-group latency :class:`TailDigest` quantiles over *all* I/Os;
* aggregate wait time per ``(resource, holder)`` pair;
* an **SLO monitor**: per-:class:`SloSpec` attainment counters plus
  rolling burn-rate :class:`TimeSeries` (misses and checks per period).

Conservation invariant
----------------------
Wait edges may overlap (an NVMe timeout-recovery window can contain a
die wait for the retried command), so wall-clock wait time is the
length of the **union** of a request's clamped edges; service time is
defined as end-to-end latency minus that union.  Every captured
outlier therefore satisfies, exactly and in integer nanoseconds::

    wait_ns + service_ns == end_ns - start_ns
    wait_ns == |union(edges)|        (edges clamped to [start, end])

:func:`verify_blame_conservation` re-derives both from the stored edge
list and raises if any record disagrees — the same style of

to-the-nanosecond check :func:`repro.obs.anatomy.verify_conservation`
applies to phase tiling.

House rules (established by the telemetry/profiler PRs) all hold:
recording never perturbs simulated time, ``absorb()`` merges worker
bundles with pid rebasing so ``--jobs N`` sweeps are byte-identical to
serial, and the blame config is *excluded* from sweep cache keys (blame
requires live tracing, which already bypasses the cache).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.telemetry import DEFAULT_PERIOD_NS, TailDigest, TimeSeries
from repro.obs.tracer import WaitEdge

if TYPE_CHECKING:
    from repro.obs.tracer import IoTrace

#: Default outlier reservoir size per (device, op) group.
DEFAULT_TOP = 10

_DURATION_UNITS: Tuple[Tuple[str, int], ...] = (
    ("ns", 1),
    ("us", 1_000),
    ("ms", 1_000_000),
    ("s", 1_000_000_000),
)


def parse_duration_ns(text: str) -> int:
    """Parse ``150us`` / ``1.5ms`` / ``800`` (bare = ns) into integer ns."""
    raw = text.strip().lower()
    for suffix, mult in sorted(_DURATION_UNITS, key=lambda u: -len(u[0])):
        if raw.endswith(suffix):
            number = raw[: -len(suffix)].strip()
            break
    else:
        number, mult = raw, 1
    try:
        value = float(number)
    except ValueError:
        raise ValueError(
            f"bad duration {text!r}: expected NUMBER[ns|us|ms|s]"
        ) from None
    if value <= 0:
        raise ValueError(f"bad duration {text!r}: must be positive")
    return int(round(value * mult))


def format_ns(ns: float) -> str:
    """Render a nanosecond quantity with a human unit (deterministic)."""
    ns = float(ns)
    if ns >= 1_000_000_000:
        return f"{ns / 1_000_000_000:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1_000_000:.2f}ms"
    if ns >= 1_000:
        return f"{ns / 1_000:.1f}us"
    return f"{ns:.0f}ns"


class SloSpec:
    """One latency objective: ``OP:LATENCY[@OBJECTIVE]``.

    ``read:150us@0.999`` means "99.9% of reads complete within 150 us".
    ``OP`` is ``read``, ``write`` or ``*`` (all ops); ``OBJECTIVE``
    defaults to 0.999 and accepts either a fraction (``0.999``) or a
    percentage (``99.9%``).
    """

    __slots__ = ("op", "threshold_ns", "objective")

    def __init__(self, op: str, threshold_ns: int, objective: float = 0.999) -> None:
        op = op.strip().lower()
        if not op:
            raise ValueError("SLO op must be non-empty ('read', 'write' or '*')")
        if threshold_ns <= 0:
            raise ValueError("SLO latency threshold must be positive")
        if not 0.0 < objective < 1.0:
            raise ValueError("SLO objective must be a fraction in (0, 1)")
        self.op = op
        self.threshold_ns = int(threshold_ns)
        self.objective = float(objective)

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        body, at, objective_text = text.partition("@")
        op, colon, threshold_text = body.partition(":")
        if not colon or not op.strip() or not threshold_text.strip():
            raise ValueError(
                f"bad SLO spec {text!r}: expected OP:LATENCY[@OBJECTIVE], "
                "e.g. read:150us@0.999"
            )
        objective = 0.999
        if at:
            raw = objective_text.strip()
            try:
                if raw.endswith("%"):
                    objective = float(raw[:-1]) / 100.0
                else:
                    objective = float(raw)
            except ValueError:
                raise ValueError(
                    f"bad SLO objective {objective_text!r} in {text!r}"
                ) from None
        return cls(op, parse_duration_ns(threshold_text), objective)

    def matches(self, op: str) -> bool:
        return self.op == "*" or self.op == op

    @property
    def label(self) -> str:
        pct = self.objective * 100.0
        return f"{self.op}<={format_ns(self.threshold_ns)}@{pct:g}%"

    def __repr__(self) -> str:
        return f"SloSpec({self.label})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SloSpec)
            and self.op == other.op
            and self.threshold_ns == other.threshold_ns
            and self.objective == other.objective
        )

    def __hash__(self) -> int:
        return hash((self.op, self.threshold_ns, self.objective))


class BlameConfig:
    """What the blame recorder keeps.

    ``top`` bounds the outlier reservoir per (device, op) group;
    ``slos`` is the tuple of :class:`SloSpec` objectives to monitor;
    ``period_ns`` is the bucket width of the SLO burn-rate series.
    Ships to sweep workers via :meth:`to_params` (the
    ``TelemetryConfig``/``ProfilerConfig`` pattern) but is *excluded*
    from sweep cache keys — see ``repro.core.sweep.point_cache_key``.
    """

    __slots__ = ("top", "slos", "period_ns")

    def __init__(
        self,
        top: int = DEFAULT_TOP,
        slos: Tuple[SloSpec, ...] = (),
        period_ns: int = DEFAULT_PERIOD_NS,
    ) -> None:
        if top < 1:
            raise ValueError("outlier reservoir size must be >= 1")
        if period_ns <= 0:
            raise ValueError("burn-rate sample period must be positive")
        self.top = int(top)
        self.slos = tuple(slos)
        self.period_ns = int(period_ns)

    def to_params(self) -> Tuple[Tuple[str, Any], ...]:
        return (
            ("period_ns", self.period_ns),
            (
                "slos",
                tuple((s.op, s.threshold_ns, s.objective) for s in self.slos),
            ),
            ("top", self.top),
        )

    @classmethod
    def from_params(cls, params: Tuple[Tuple[str, Any], ...]) -> "BlameConfig":
        table = dict(params)
        slos = tuple(
            SloSpec(op, int(threshold_ns), float(objective))
            for op, threshold_ns, objective in table["slos"]
        )
        return cls(
            top=int(table["top"]),
            slos=slos,
            period_ns=int(table["period_ns"]),
        )


class OutlierRecord:
    """A captured slow request, detached from its trace (pickle-safe).

    ``phases`` is the tiled top-level timeline as ``(name, start_ns,
    end_ns)`` tuples; ``edges`` is the clamped, time-sorted wait chain.
    ``wait_ns`` is the union length of ``edges`` and ``service_ns`` the
    exact remainder — see the module docstring's conservation
    invariant.
    """

    __slots__ = (
        "io_id",
        "pid",
        "device",
        "op",
        "offset",
        "nbytes",
        "start_ns",
        "end_ns",
        "latency_ns",
        "wait_ns",
        "service_ns",
        "phases",
        "edges",
    )

    def __init__(
        self,
        io_id: int,
        pid: int,
        device: str,
        op: str,
        offset: int,
        nbytes: int,
        start_ns: int,
        end_ns: int,
        wait_ns: int,
        phases: Tuple[Tuple[str, int, int], ...],
        edges: Tuple[WaitEdge, ...],
    ) -> None:
        self.io_id = io_id
        self.pid = pid
        self.device = device
        self.op = op
        self.offset = offset
        self.nbytes = nbytes
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.latency_ns = end_ns - start_ns
        self.wait_ns = wait_ns
        self.service_ns = self.latency_ns - wait_ns
        self.phases = phases
        self.edges = edges

    def blamed_shares(self) -> List[Tuple[str, str, float]]:
        """Per (resource, holder) share of this record's latency.

        Raw edge durations are scaled so they sum to the union wait
        time (overlap is split proportionally), so the returned shares
        plus the service share sum to exactly 1.
        """
        if self.latency_ns <= 0 or not self.edges:
            return []
        raw: Dict[Tuple[str, str], int] = {}
        for edge in self.edges:
            key = (edge.resource, edge.holder)
            raw[key] = raw.get(key, 0) + edge.duration_ns
        raw_total = sum(raw.values())
        if raw_total <= 0:
            return []
        factor = self.wait_ns / raw_total / self.latency_ns
        return [
            (resource, holder, duration * factor)
            for (resource, holder), duration in sorted(raw.items())
        ]


def union_ns(edges: Tuple[WaitEdge, ...]) -> int:
    """Total length of the union of (already sorted) edge intervals."""
    total = 0
    cursor: Optional[int] = None
    high = 0
    for edge in edges:
        if cursor is None or edge.start_ns > high:
            if cursor is not None:
                total += high - cursor
            cursor, high = edge.start_ns, edge.end_ns
        elif edge.end_ns > high:
            high = edge.end_ns
    if cursor is not None:
        total += high - cursor
    return total


def _record_key(record: OutlierRecord) -> Tuple[int, int, int]:
    """Reservoir order: slowest first; (pid, io_id) breaks ties."""
    return (-record.latency_ns, record.pid, record.io_id)


class BlameRecorder:
    """Consumes finished traces; keeps outliers, aggregates and SLOs.

    Wired into :class:`repro.obs.tracer.SpanTracer` by the
    Observability bundle; requires tracing (wait edges ride on the
    trace context).  All state merges exactly across sweep workers via
    :meth:`absorb`.
    """

    enabled = True

    def __init__(self, config: Optional[BlameConfig] = None) -> None:
        self.config = config or BlameConfig()
        self._pid = 0
        self.observed = 0
        #: pid -> registry/spec name of the device that sim ran against.
        self.device_labels: Dict[int, str] = {}
        #: (device, op) -> top-K outliers, slowest first.
        self._groups: Dict[Tuple[str, str], List[OutlierRecord]] = {}
        #: (device, op) -> latency digest over every I/O in the group.
        self._digests: Dict[Tuple[str, str], TailDigest] = {}
        #: (resource, holder) -> [total wait ns, edge count] over all I/Os.
        self._resources: Dict[Tuple[str, str], List[int]] = {}
        self._slo_total: List[int] = [0] * len(self.config.slos)
        self._slo_miss: List[int] = [0] * len(self.config.slos)
        #: (pid, spec index, "checked"|"misses") -> burn-rate series.
        self._slo_series: Dict[Tuple[int, int, str], TimeSeries] = {}

    # ------------------------------------------------------------------
    def new_sim(self) -> None:
        """A fresh simulator attached; its I/Os get the next pid."""
        self._pid += 1

    @property
    def current_pid(self) -> int:
        return max(1, self._pid)

    def label_device(self, label: str) -> None:
        """Record which device the current sim's I/Os run against."""
        if label:
            self.device_labels[self.current_pid] = label

    # ------------------------------------------------------------------
    def observe(self, trace: "IoTrace") -> None:
        """Fold one finished trace in (called from ``SpanTracer._finished``)."""
        end_ns = trace.end_ns
        assert end_ns is not None
        start_ns = trace.start_ns
        latency_ns = end_ns - start_ns
        edges = tuple(
            sorted(
                (
                    WaitEdge(
                        e.resource,
                        e.holder,
                        max(e.start_ns, start_ns),
                        min(e.end_ns, end_ns),
                    )
                    for e in trace._waits
                    if min(e.end_ns, end_ns) > max(e.start_ns, start_ns)
                ),
                key=lambda e: (e.start_ns, e.end_ns, e.resource, e.holder),
            )
        )
        wait_ns = union_ns(edges)
        device = self.device_labels.get(trace.pid) or f"sim{trace.pid}"
        group_key = (device, trace.op)
        self.observed += 1

        digest = self._digests.get(group_key)
        if digest is None:
            digest = self._digests[group_key] = TailDigest()
        digest.observe(float(latency_ns))

        for edge in edges:
            cell = self._resources.get((edge.resource, edge.holder))
            if cell is None:
                cell = self._resources[(edge.resource, edge.holder)] = [0, 0]
            cell[0] += edge.duration_ns
            cell[1] += 1

        for index, spec in enumerate(self.config.slos):
            if not spec.matches(trace.op):
                continue
            self._slo_total[index] += 1
            self._burn_series(trace.pid, index, "checked").add(end_ns, 1)
            if latency_ns > spec.threshold_ns:
                self._slo_miss[index] += 1
                self._burn_series(trace.pid, index, "misses").add(end_ns, 1)

        group = self._groups.setdefault(group_key, [])
        top = self.config.top
        if len(group) >= top:
            candidate = (-latency_ns, trace.pid, trace.io_id)
            if candidate >= _record_key(group[-1]):
                return
        record = OutlierRecord(
            io_id=trace.io_id,
            pid=trace.pid,
            device=device,
            op=trace.op,
            offset=trace.offset,
            nbytes=trace.nbytes,
            start_ns=start_ns,
            end_ns=end_ns,
            wait_ns=wait_ns,
            phases=tuple(
                (span.name, span.start_ns, span.end_ns) for span in trace.phases()
            ),
            edges=edges,
        )
        group.append(record)
        group.sort(key=_record_key)
        del group[top:]

    def _burn_series(self, pid: int, index: int, which: str) -> TimeSeries:
        key = (pid, index, which)
        series = self._slo_series.get(key)
        if series is None:
            series = TimeSeries(
                f"slo.{self.config.slos[index].label}.{which}",
                "rate",
                "ios",
                pid=pid,
                period_ns=self.config.period_ns,
            )
            self._slo_series[key] = series
        return series

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def groups(self) -> List[Tuple[Tuple[str, str], List[OutlierRecord]]]:
        """All (device, op) groups with their outliers, sorted by key."""
        return [(key, list(self._groups[key])) for key in sorted(self._groups)]

    def group_digest(self, device: str, op: str) -> TailDigest:
        return self._digests[(device, op)]

    def resource_totals(self) -> List[Tuple[str, str, int, int]]:
        """``(resource, holder, total_wait_ns, edges)`` rows, biggest first."""
        return sorted(
            (
                (resource, holder, cell[0], cell[1])
                for (resource, holder), cell in self._resources.items()
            ),
            key=lambda row: (-row[2], row[0], row[1]),
        )

    def tail_blame(
        self, device: str, op: str
    ) -> List[Tuple[str, str, float]]:
        """Blame shares of the group's captured tail, biggest first.

        Aggregates :meth:`OutlierRecord.blamed_shares` across the
        group's reservoir, weighted by each outlier's latency; the
        residual (1 minus the sum) is pure service time.  This is the
        "p99.9 is 71% die-busy-under-GC" number.
        """
        group = self._groups.get((device, op), [])
        total_latency = sum(r.latency_ns for r in group)
        if total_latency <= 0:
            return []
        shares: Dict[Tuple[str, str], float] = {}
        for record in group:
            for resource, holder, share in record.blamed_shares():
                key = (resource, holder)
                shares[key] = shares.get(key, 0.0) + share * record.latency_ns
        return sorted(
            (
                (resource, holder, weighted / total_latency)
                for (resource, holder), weighted in shares.items()
            ),
            key=lambda row: (-row[2], row[0], row[1]),
        )

    def slo_rows(self) -> List[Dict[str, Any]]:
        """One summary row per monitored SLO."""
        rows: List[Dict[str, Any]] = []
        for index, spec in enumerate(self.config.slos):
            total = self._slo_total[index]
            misses = self._slo_miss[index]
            attainment = 1.0 - (misses / total) if total else 1.0
            rows.append(
                {
                    "spec": spec,
                    "label": spec.label,
                    "checked": total,
                    "misses": misses,
                    "attainment": attainment,
                    "met": attainment >= spec.objective,
                    "peak_burn": self._peak_burn(index, spec),
                }
            )
        return rows

    def _peak_burn(self, index: int, spec: SloSpec) -> float:
        """Max per-period burn rate: miss fraction / error budget."""
        budget = 1.0 - spec.objective
        peak = 0.0
        for pid in sorted({p for p, i, _w in self._slo_series if i == index}):
            checked = self._slo_series.get((pid, index, "checked"))
            misses = self._slo_series.get((pid, index, "misses"))
            if checked is None or misses is None:
                continue
            checks = dict(checked.samples())
            for t_ns, missed in misses.samples():
                total = checks.get(t_ns, 0.0)
                if total > 0 and missed > 0:
                    peak = max(peak, (missed / total) / budget)
        return peak

    def burn_series(self, index: int) -> List[TimeSeries]:
        """The raw burn-rate series for SLO ``index`` (checked+misses)."""
        return [
            self._slo_series[key]
            for key in sorted(self._slo_series)
            if key[1] == index
        ]

    # ------------------------------------------------------------------
    def absorb(self, other: "BlameRecorder", io_base: int = 0) -> None:
        """Merge a worker recorder, rebasing its pids past this one's.

        Mirrors ``SpanTracer.absorb``/``Telemetry.absorb``: absorbing
        worker bundles in point order reproduces the serial pid
        assignment, and every aggregate here is exactly mergeable, so
        parallel blame output is byte-identical to serial.  ``io_base``
        is the absorbing tracer's io-id watermark from *before* its own
        absorb ran (the recorder does not track io ids itself), so
        captured records name the ids a serial run would have assigned.
        """
        pid_base = self._pid
        top = self.config.top
        for key in sorted(other._groups):
            records = other._groups[key]
            for record in records:
                record.pid += pid_base
                record.io_id += io_base
            mine = self._groups.setdefault(key, [])
            mine.extend(records)
            mine.sort(key=_record_key)
            del mine[top:]
        for key in sorted(other._digests):
            digest = self._digests.get(key)
            if digest is None:
                self._digests[key] = other._digests[key]
            else:
                digest.merge(other._digests[key])
        for pair in sorted(other._resources):
            cell = self._resources.get(pair)
            if cell is None:
                self._resources[pair] = other._resources[pair]
            else:
                cell[0] += other._resources[pair][0]
                cell[1] += other._resources[pair][1]
        for index in range(min(len(self._slo_total), len(other._slo_total))):
            self._slo_total[index] += other._slo_total[index]
            self._slo_miss[index] += other._slo_miss[index]
        for (pid, index, which) in sorted(other._slo_series):
            series = other._slo_series[(pid, index, which)]
            new_key = (pid + pid_base, index, which)
            series.pid = pid + pid_base
            mine_series = self._slo_series.get(new_key)
            if mine_series is None:
                self._slo_series[new_key] = series
            else:
                mine_series._merge_from(series)
        for pid, label in sorted(other.device_labels.items()):
            self.device_labels[pid + pid_base] = label
        self._pid += other._pid
        self.observed += other.observed


# ----------------------------------------------------------------------
# Invariant check
# ----------------------------------------------------------------------
def verify_blame_conservation(recorder: BlameRecorder) -> int:
    """Assert the conservation invariant on every captured outlier.

    For each record: the stored wait is exactly the union of its edge
    intervals, wait + service is exactly the end-to-end latency, every
    edge lies inside the request window, and (when the trace recorded
    phases) the phase tiling also sums to the latency.  Returns the
    number of records checked.
    """
    checked = 0
    for (device, op), records in recorder.groups():
        for record in records:
            where = f"io {record.io_id} (pid {record.pid}, {device}/{op})"
            latency = record.end_ns - record.start_ns
            assert record.latency_ns == latency, where
            assert record.wait_ns == union_ns(record.edges), (
                f"{where}: stored wait {record.wait_ns} != edge union "
                f"{union_ns(record.edges)}"
            )
            assert record.wait_ns + record.service_ns == latency, (
                f"{where}: wait {record.wait_ns} + service "
                f"{record.service_ns} != latency {latency}"
            )
            for edge in record.edges:
                assert (
                    record.start_ns <= edge.start_ns < edge.end_ns <= record.end_ns
                ), f"{where}: edge {edge} escapes [{record.start_ns}, {record.end_ns}]"
            if record.phases:
                tiled = sum(end - start for _name, start, end in record.phases)
                assert tiled == latency, (
                    f"{where}: phases tile {tiled} ns != latency {latency}"
                )
            checked += 1
    return checked


# ----------------------------------------------------------------------
# Text report
# ----------------------------------------------------------------------
def blame_table(recorder: BlameRecorder, top_resources: int = 12) -> str:
    """The blame report: per-group tail attribution + SLO attainment."""
    lines: List[str] = []
    lines.append("Blame: tail-latency wait-for attribution")
    lines.append("=" * 40)
    lines.append(
        f"  I/Os observed: {recorder.observed}"
        f"    outliers kept: top {recorder.config.top} per (device, op)"
    )
    if not recorder.observed:
        lines.append("  (no I/Os observed)")
        return "\n".join(lines)
    for (device, op), records in recorder.groups():
        digest = recorder.group_digest(device, op)
        lines.append("")
        lines.append(f"{device} / {op}  ({digest.count} I/Os)")
        lines.append(
            "  latency: "
            + "  ".join(
                f"{name} {format_ns(digest.quantile(q))}"
                for name, q in (
                    ("p50", 0.50),
                    ("p99", 0.99),
                    ("p99.9", 0.999),
                )
            )
            + f"  max {format_ns(digest.max or 0.0)}"
        )
        shares = recorder.tail_blame(device, op)
        if shares:
            resource, holder, share = shares[0]
            lines.append(
                f"  p99.9 is {share * 100.0:.1f}% {resource} (held by {holder})"
            )
            lines.append(f"  captured tail blame ({len(records)} outliers):")
            service = 1.0 - sum(s for _r, _h, s in shares)
            for resource, holder, share in shares:
                lines.append(
                    f"    {share * 100.0:5.1f}%  wait     {resource} <- {holder}"
                )
            lines.append(f"    {service * 100.0:5.1f}%  service")
        else:
            lines.append("  (no wait edges recorded for this group)")
        worst = records[0]
        lines.append(
            f"  slowest: io {worst.io_id} {format_ns(worst.latency_ns)}"
            f" (wait {format_ns(worst.wait_ns)}"
            f" = {worst.wait_ns / worst.latency_ns * 100.0:.1f}%)"
            if worst.latency_ns
            else f"  slowest: io {worst.io_id} 0ns"
        )
    totals = recorder.resource_totals()
    if totals:
        lines.append("")
        lines.append("wait time by resource (all I/Os)")
        lines.append(f"  {'resource':<24}{'holder':<20}{'total':>10}{'edges':>8}")
        for resource, holder, total, count in totals[:top_resources]:
            lines.append(
                f"  {resource:<24}{holder:<20}{format_ns(total):>10}{count:>8}"
            )
        if len(totals) > top_resources:
            lines.append(f"  ... and {len(totals) - top_resources} more")
    rows = recorder.slo_rows()
    if rows:
        lines.append("")
        lines.append("SLO attainment")
        for row in rows:
            verdict = "MET" if row["met"] else "MISSED"
            lines.append(
                f"  {row['label']:<28} {row['checked'] - row['misses']}/"
                f"{row['checked']} ok  attainment {row['attainment'] * 100.0:.3f}%"
                f"  ({verdict}; peak burn {row['peak_burn']:.1f}x)"
            )
    return "\n".join(lines)
