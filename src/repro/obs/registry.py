"""The metrics registry: counters, gauges, time-weighted histograms.

Layers register named instruments once (at construction) and update
them on their fast paths.  The null registry hands back shared no-op
instruments, so instrumented code never branches on whether metrics are
being collected — with observability disabled every update is a single
no-op method call.

Naming convention: ``<layer>.<object>.<quantity>`` with unit suffixes
carried in the instrument's ``unit`` field (``ns``, ``us``, ``units``,
``cmds``, plain counts have no unit).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple, Union


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "unit", "help", "value")

    def __init__(self, name: str, unit: str = "", help: str = "") -> None:
        self.name = name
        self.unit = unit
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A sampled level with a time-weighted mean and a high-water mark.

    ``set``/``add`` take the simulation timestamp so the mean weights
    each level by how long it was held (queue depths, occupancies).
    Timestamps from a fresh simulator (clock restarted at zero) simply
    stop accumulating area for the backwards jump; the level itself is
    always current.
    """

    kind = "gauge"
    __slots__ = ("name", "unit", "help", "value", "max_value", "_last_ns", "_area")

    def __init__(self, name: str, unit: str = "", help: str = "") -> None:
        self.name = name
        self.unit = unit
        self.help = help
        self.value = 0.0
        self.max_value = 0.0
        self._last_ns = 0
        self._area = 0.0

    def set(self, value: float, at_ns: int) -> None:
        at_ns = int(at_ns)
        if at_ns > self._last_ns:
            self._area += self.value * (at_ns - self._last_ns)
            self._last_ns = at_ns
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float, at_ns: int) -> None:
        self.set(self.value + delta, at_ns)

    def time_mean(self, until_ns: Optional[int] = None) -> float:
        until = self._last_ns if until_ns is None else int(until_ns)
        area = self._area + self.value * max(0, until - self._last_ns)
        return area / until if until > 0 else float(self.value)


class Histogram:
    """Log2-bucketed distribution of positive samples.

    Buckets are powers of two of the observed unit; quantiles come from
    the geometric midpoint of the covering bucket (coarse, but stable
    and allocation-free — the same trade blk-mq's I/O stats make).
    """

    kind = "histogram"
    __slots__ = ("name", "unit", "help", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str, unit: str = "", help: str = "") -> None:
        self.name = name
        self.unit = unit
        self.help = help
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] if value > 0 else 0
        self._buckets[exponent] = self._buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for exponent in sorted(self._buckets):
            seen += self._buckets[exponent]
            if seen >= target:
                low = 2.0 ** (exponent - 1) if exponent > 0 else 0.0
                high = 2.0 ** exponent
                return (low + high) / 2.0
        return float(self.max or 0.0)

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs, ascending."""
        return [
            (2.0 ** exponent, self._buckets[exponent])
            for exponent in sorted(self._buckets)
        ]


#: Any concrete instrument (the registry is heterogeneous by design).
Metric = Union[Counter, Gauge, Histogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named instruments, get-or-create, insertion-ordered."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, kind: str, name: str, unit: str, help: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = _KINDS[kind](name, unit, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, unit: str = "", help: str = "") -> Counter:
        metric = self._get_or_create("counter", name, unit, help)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, unit: str = "", help: str = "") -> Gauge:
        metric = self._get_or_create("gauge", name, unit, help)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, unit: str = "", help: str = "") -> Histogram:
        metric = self._get_or_create("histogram", name, unit, help)
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def absorb(self, other: "MetricsRegistry") -> None:
        """Merge another registry's instruments into this one.

        Counters add; histograms merge counts, extremes, and buckets.
        Gauges concatenate their timelines — areas and elapsed times
        both add, so the time-weighted mean becomes the average level
        across all absorbed measurements (each measurement runs on a
        fresh simulator clock, so the windows are sequential, not
        overlapping) — keep the higher high-water mark, and take the
        absorbed (later) level.  Instruments absent here are created
        first, so insertion order follows the absorb order
        deterministically.
        """
        for metric in other:
            mine = self._get_or_create(
                metric.kind, metric.name, metric.unit, metric.help
            )
            if isinstance(metric, Counter):
                assert isinstance(mine, Counter)
                mine.value += metric.value
            elif isinstance(metric, Gauge):
                assert isinstance(mine, Gauge)
                mine._area += metric._area
                mine._last_ns += metric._last_ns
                mine.max_value = max(mine.max_value, metric.max_value)
                mine.value = metric.value
            else:
                assert isinstance(mine, Histogram)
                mine.count += metric.count
                mine.total += metric.total
                if metric.min is not None:
                    mine.min = (
                        metric.min if mine.min is None else min(mine.min, metric.min)
                    )
                if metric.max is not None:
                    mine.max = (
                        metric.max if mine.max is None else max(mine.max, metric.max)
                    )
                for exponent, count in metric._buckets.items():
                    mine._buckets[exponent] = (
                        mine._buckets.get(exponent, 0) + count
                    )

    # ------------------------------------------------------------------
    def snapshot(self, now_ns: Optional[int] = None) -> List[dict]:
        """One dict per instrument (the exporters' common substrate)."""
        rows: List[dict] = []
        for metric in self._metrics.values():
            row: dict = {"name": metric.name, "kind": metric.kind, "unit": metric.unit}
            if isinstance(metric, Counter):
                row["value"] = metric.value
            elif isinstance(metric, Gauge):
                row["value"] = metric.value
                row["max"] = metric.max_value
                row["time_mean"] = metric.time_mean(now_ns)
            else:
                row["count"] = metric.count
                row["mean"] = metric.mean
                row["min"] = metric.min if metric.min is not None else 0.0
                row["max"] = metric.max if metric.max is not None else 0.0
                row["p50"] = metric.quantile(0.50)
                row["p99"] = metric.quantile(0.99)
            rows.append(row)
        return rows


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    kind = "null"
    name = ""
    unit = ""
    value = 0
    max_value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float, at_ns: int = 0) -> None:
        pass

    def add(self, delta: float, at_ns: int = 0) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time_mean(self, until_ns: Optional[int] = None) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Hands back shared no-op instruments; collects nothing."""

    enabled = False

    def counter(self, name: str, unit: str = "", help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, unit: str = "", help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, unit: str = "", help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self, now_ns: Optional[int] = None) -> List[dict]:
        return []

    def __iter__(self) -> Iterator[Metric]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


NULL_REGISTRY = NullRegistry()
