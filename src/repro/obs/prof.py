"""repro.obs.prof — the deterministic self-profiler for the simulator.

The span tracer and telemetry answer *sim-time* questions (where does a
request's latency go); this module answers the *wall-time* question the
ROADMAP's 10-100x speedup item needs: where does the simulator itself
spend its events and its host CPU?  Three views:

* **Hotspot attribution** — every callback dispatched by
  :meth:`repro.sim.engine.Simulator.step` is bucketed by *call site*: a
  ``(layer, component, callsite)`` triple derived from the callback's
  defining module (``repro.ssd.channels`` -> layer ``ssd``, component
  ``ssd.channels``).  Generator-trampoline dispatches — a
  :class:`~repro.sim.process.Process` resume, or an event whose firing
  synchronously resumes a waiting process — are attributed to the
  *generator's* code object, so the cost of ``Timeout._fire`` lands on
  the FTL/NVMe/kstack coroutine it actually drives, not on the sim
  kernel.  Event counts are exact (counted on the sim clock); wall time
  is sampled with ``time.perf_counter_ns`` around each dispatch when
  ``ProfilerConfig.wall`` is on.
* **Event-queue introspection** — insert/dispatch/stale-wakeup counts,
  peak and time-resolved queue depth, a heap-sift cost proxy (sum of
  ``log2(depth)`` per push/pop — the comparison count a binary heap
  pays), same-tick batch sizes, and generator-trampoline hop counts.
  The time-resolved series are real :class:`~repro.obs.telemetry.
  TimeSeries` objects in a private recorder, so the existing HTML
  timeline and CSV exporters render them unchanged.
* **Flamegraph export** — collapsed-stack text (``layer;component;
  callsite count``, pipe into any FlameGraph tool) and speedscope JSON
  (open at https://www.speedscope.app), one sampled profile weighted by
  exact event counts and, when wall sampling is on, a second weighted
  by nanoseconds.

Determinism contract: the profiler observes, never steers.  With
profiling disabled every hook is a single ``is not None`` check on a
slot the simulator samples at construction, and simulation outputs are
byte-identical to a run without the profiler imported.  With profiling
enabled, event *counts* and attribution are a pure function of the
simulation (parallel sweep workers ship their profilers back over the
worker-bundle path and :meth:`Profiler.absorb` merges them in point
order); only the sampled wall-time varies run to run.  Profiler
configuration is deliberately **excluded from sweep cache keys**: a
profiled run always executes live (the engine steps aside under any
enabled bundle), and attribution-only fields must never fragment the
measurement cache.
"""

from __future__ import annotations

import json
import time
from types import CodeType
from typing import TYPE_CHECKING, Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.obs.export import atomic_write_text
from repro.obs.telemetry import (
    DEFAULT_PERIOD_NS,
    TailDigest,
    Telemetry,
    TelemetryConfig,
)

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

#: How deep to follow an event's callback chain looking for the process
#: it will synchronously resume (Timeout -> AnyOf -> Process is depth 2).
_RESOLVE_DEPTH = 3

#: Layers the attribution report treats as first-class (everything under
#: ``repro.`` is *named*; this tuple only fixes the report's ordering).
KNOWN_LAYERS: Tuple[str, ...] = (
    "flash",
    "ftl",
    "ssd",
    "nvme",
    "kstack",
    "spdk",
    "net",
    "host",
    "workloads",
    "faults",
    "sim",
)

#: Catch-all layer for callbacks defined outside the ``repro`` package
#: (test lambdas, benchmark helpers).
OTHER_LAYER = "other"


class CallSite(NamedTuple):
    """One attribution bucket: where a dispatched callback's code lives."""

    layer: str
    component: str
    callsite: str
    kind: str  # "process" (generator resume) or "callback" (plain fn)


class ProfilerConfig:
    """What the profiler samples and how the table is cut.

    ``wall`` toggles ``perf_counter_ns`` sampling around each dispatch
    (event counts are always exact); ``period_ns`` is the sample period
    of the queue-introspection time series; ``top`` bounds the rendered
    hotspot table (exports always carry every site).
    """

    __slots__ = ("wall", "period_ns", "top")

    def __init__(
        self,
        wall: bool = True,
        period_ns: int = DEFAULT_PERIOD_NS,
        top: int = 15,
    ) -> None:
        if period_ns <= 0:
            raise ValueError("profiler sample period must be positive")
        if top < 1:
            raise ValueError("hotspot table size must be >= 1")
        self.wall = bool(wall)
        self.period_ns = int(period_ns)
        self.top = int(top)

    def to_params(self) -> Tuple[Tuple[str, Any], ...]:
        return (
            ("period_ns", self.period_ns),
            ("top", self.top),
            ("wall", self.wall),
        )

    @classmethod
    def from_params(cls, params: Tuple[Tuple[str, Any], ...]) -> "ProfilerConfig":
        table = dict(params)
        return cls(
            wall=bool(table["wall"]),
            period_ns=int(table["period_ns"]),
            top=int(table["top"]),
        )


# ----------------------------------------------------------------------
# Attribution helpers
# ----------------------------------------------------------------------
def _module_to_site(module: str, callsite: str, kind: str) -> CallSite:
    if module.startswith("repro."):
        parts = module.split(".")
        layer = parts[1] if len(parts) > 1 else OTHER_LAYER
        component = ".".join(parts[1:]) or layer
        return CallSite(layer, component, callsite, kind)
    return CallSite(OTHER_LAYER, module or "?", callsite, kind)


def _module_from_filename(filename: str) -> str:
    """Best-effort dotted module for a code object whose frame is gone."""
    norm = filename.replace("\\", "/")
    marker = "/repro/"
    index = norm.rfind(marker)
    if index < 0:
        return ""
    tail = norm[index + 1:]
    if tail.endswith(".py"):
        tail = tail[:-3]
    if tail.endswith("/__init__"):
        tail = tail[: -len("/__init__")]
    return tail.replace("/", ".")


def _generator_of(callback: Callable[..., Any]) -> Optional[Any]:
    """The generator a dispatched callback will synchronously resume.

    Covers the three trampoline shapes the kernel produces:

    * ``Process._resume`` / ``Process._on_event`` bound methods — the
      process's own generator;
    * an :class:`~repro.sim.events.Event` method (``Timeout._fire``)
      whose pending callbacks include a waiting process — firing the
      event resumes that generator in the same dispatch;
    * one or two levels of event indirection (``AnyOf`` racing).

    Duck-typed on ``_generator`` / ``_callbacks`` so this module never
    imports the sim kernel (which imports :mod:`repro.obs.core`).
    """
    owner = getattr(callback, "__self__", None)
    if owner is None:
        return None
    generator = getattr(owner, "_generator", None)
    if generator is not None:
        return generator
    return _generator_behind_event(owner, _RESOLVE_DEPTH)


def _generator_behind_event(event: Any, depth: int) -> Optional[Any]:
    if depth <= 0:
        return None
    callbacks = getattr(event, "_callbacks", None)
    if not callbacks:
        return None
    for registered in callbacks:
        owner = getattr(registered, "__self__", None)
        if owner is None:
            continue
        generator = getattr(owner, "_generator", None)
        if generator is not None:
            return generator
        generator = _generator_behind_event(owner, depth - 1)
        if generator is not None:
            return generator
    return None


# ----------------------------------------------------------------------
# The profiler
# ----------------------------------------------------------------------
class Profiler:
    """Event-attribution + queue-introspection recorder.

    One instance profiles every simulator attached to its
    :class:`~repro.obs.core.Observability` bundle; per-sim scoping
    mirrors telemetry (each fresh simulator gets the next pid in the
    private recorder).  All counts are exact and deterministic; wall
    nanoseconds are host measurements and vary run to run.
    """

    enabled = True

    def __init__(self, config: Optional[ProfilerConfig] = None) -> None:
        self.config = config or ProfilerConfig()
        #: site -> exact dispatched-event count.
        self.events: Dict[CallSite, int] = {}
        #: site -> sampled wall nanoseconds (empty when wall is off).
        self.wall_ns: Dict[CallSite, int] = {}
        # Queue introspection counters.
        self.inserts = 0
        self.dispatches = 0
        self.stale_wakeups = 0
        self.trampoline_hops = 0
        self.peak_depth = 0
        #: Heap-sift cost proxy: sum of log2(depth) over every push/pop —
        #: proportional to the comparisons a binary heap performs.
        self.sift_cost = 0
        self.batches = 0
        self.batch_sizes = TailDigest()
        # Time-resolved introspection series (rendered by the existing
        # telemetry HTML/CSV exporters unchanged).
        self.telemetry = Telemetry(
            TelemetryConfig(period_ns=self.config.period_ns)
        )
        self._wall = self.config.wall
        # Per-sim dispatch state.
        self._tick = -1
        self._batch_n = 0
        # Attribution cache: code object (or plain callable) -> site.
        # Keyed by identity on objects that live for the whole run, so
        # the cache never aliases; dropped on pickle (not serializable).
        self._sites: Dict[Any, CallSite] = {}
        self._refresh_series()

    # ------------------------------------------------------------------
    # Pickling: worker bundles ship whole profilers back to the parent.
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = {
            name: getattr(self, name)
            for name in (
                "config",
                "events",
                "wall_ns",
                "inserts",
                "dispatches",
                "stale_wakeups",
                "trampoline_hops",
                "peak_depth",
                "sift_cost",
                "batches",
                "batch_sizes",
                "telemetry",
                "_tick",
                "_batch_n",
            )
        }
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._wall = self.config.wall
        self._sites = {}
        self._refresh_series()

    # ------------------------------------------------------------------
    # Sim lifecycle
    # ------------------------------------------------------------------
    def _refresh_series(self) -> None:
        self._depth_series = self.telemetry.series(
            "prof.queue.depth", "level", "callbacks"
        )
        self._dispatch_series = self.telemetry.series(
            "prof.events.dispatched", "rate", "events"
        )
        self._hop_series = self.telemetry.series(
            "prof.trampoline.hops", "rate", "resumes"
        )

    def new_sim(self) -> None:
        """A fresh simulator attached: seal batch state, advance the pid."""
        self._flush_batch()
        self._tick = -1
        self.telemetry.new_sim()
        self._refresh_series()

    def _flush_batch(self) -> None:
        if self._batch_n:
            self.batches += 1
            self.batch_sizes.observe(float(self._batch_n))
            self._batch_n = 0

    # ------------------------------------------------------------------
    # Engine hooks (hot path — only reached while profiling is on)
    # ------------------------------------------------------------------
    def note_insert(self, now_ns: int, when_ns: int, depth: int) -> None:
        """A callback was pushed; ``depth`` is the queue length after."""
        self.inserts += 1
        self.sift_cost += depth.bit_length()
        if depth > self.peak_depth:
            self.peak_depth = depth
        self._depth_series.record(now_ns, float(depth))

    def note_stale(self) -> None:
        """A process received a wakeup from a detached (stale) event."""
        self.stale_wakeups += 1

    def dispatch(
        self,
        when_ns: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        depth: int,
    ) -> None:
        """Attribute and run one popped callback (``depth`` is the queue
        length after the pop)."""
        self.dispatches += 1
        self.sift_cost += depth.bit_length()
        self._depth_series.record(when_ns, float(depth))
        self._dispatch_series.add(when_ns, 1.0)
        if when_ns != self._tick:
            self._flush_batch()
            self._tick = when_ns
        self._batch_n += 1

        site = self._site_of(callback)
        self.events[site] = self.events.get(site, 0) + 1
        if site.kind == "process":
            self.trampoline_hops += 1
            self._hop_series.add(when_ns, 1.0)
        if self._wall:
            started = time.perf_counter_ns()
            callback(*args)
            self.wall_ns[site] = (
                self.wall_ns.get(site, 0) + time.perf_counter_ns() - started
            )
        else:
            callback(*args)

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def _site_of(self, callback: Callable[..., Any]) -> CallSite:
        generator = _generator_of(callback)
        if generator is not None:
            code = generator.gi_code
            site = self._sites.get(code)
            if site is None:
                site = self._site_for_generator(generator, code)
                self._sites[code] = site
            return site
        func = getattr(callback, "__func__", callback)
        code = getattr(func, "__code__", None)
        key: Any = code if code is not None else func
        site = self._sites.get(key)
        if site is None:
            module = getattr(func, "__module__", "") or ""
            name = getattr(func, "__qualname__", None) or getattr(
                func, "__name__", type(callback).__name__
            )
            site = _module_to_site(module, name, "callback")
            self._sites[key] = site
        return site

    def _site_for_generator(self, generator: Any, code: CodeType) -> CallSite:
        frame = getattr(generator, "gi_frame", None)
        module = ""
        if frame is not None:
            module = frame.f_globals.get("__name__", "") or ""
        if not module:
            module = _module_from_filename(code.co_filename)
        name = getattr(code, "co_qualname", None) or code.co_name
        return _module_to_site(module, name, "process")

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(self.events.values())

    def attributed_share(self) -> float:
        """Fraction of dispatched events attributed to a named layer."""
        total = self.total_events
        if total == 0:
            return 0.0
        named = sum(
            count
            for site, count in self.events.items()
            if site.layer != OTHER_LAYER
        )
        return named / total

    def hotspots(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Per-site rows, heaviest first (exact counts; deterministic)."""
        self._flush_batch()
        total_events = self.total_events
        total_wall = sum(self.wall_ns.values())
        rows: List[Dict[str, Any]] = []
        for site in sorted(
            self.events,
            key=lambda s: (-self.events[s], s.layer, s.component, s.callsite),
        ):
            count = self.events[site]
            wall = self.wall_ns.get(site, 0)
            rows.append(
                {
                    "layer": site.layer,
                    "component": site.component,
                    "callsite": site.callsite,
                    "kind": site.kind,
                    "events": count,
                    "share": count / total_events if total_events else 0.0,
                    "wall_ns": wall,
                    "wall_share": wall / total_wall if total_wall else 0.0,
                }
            )
        if top is not None:
            rows = rows[:top]
        return rows

    def layer_totals(self) -> List[Tuple[str, int]]:
        """(layer, events) in report order, heaviest unknown layers last."""
        totals: Dict[str, int] = {}
        for site, count in self.events.items():
            totals[site.layer] = totals.get(site.layer, 0) + count
        order = {layer: index for index, layer in enumerate(KNOWN_LAYERS)}
        return sorted(
            totals.items(),
            key=lambda item: (order.get(item[0], len(order)), item[0]),
        )

    def queue_stats(self) -> Dict[str, Any]:
        """Queue-introspection summary (exact, deterministic counts)."""
        self._flush_batch()
        digest = self.batch_sizes
        return {
            "inserts": self.inserts,
            "dispatches": self.dispatches,
            "stale_wakeups": self.stale_wakeups,
            "trampoline_hops": self.trampoline_hops,
            "peak_depth": self.peak_depth,
            "sift_cost": self.sift_cost,
            "batches": self.batches,
            "batch_mean": digest.mean,
            "batch_p99": digest.quantile(0.99),
            "batch_max": digest.max if digest.max is not None else 0.0,
        }

    # ------------------------------------------------------------------
    # Merging (sweep worker-bundle path)
    # ------------------------------------------------------------------
    def absorb(self, other: "Profiler") -> None:
        """Merge a worker profiler; absorbed in point order by the sweep
        engine, so merged counts equal what a serial run produces."""
        other._flush_batch()
        self._flush_batch()
        for site, count in other.events.items():
            self.events[site] = self.events.get(site, 0) + count
        for site, wall in other.wall_ns.items():
            self.wall_ns[site] = self.wall_ns.get(site, 0) + wall
        self.inserts += other.inserts
        self.dispatches += other.dispatches
        self.stale_wakeups += other.stale_wakeups
        self.trampoline_hops += other.trampoline_hops
        self.peak_depth = max(self.peak_depth, other.peak_depth)
        self.sift_cost += other.sift_cost
        self.batches += other.batches
        self.batch_sizes.merge(other.batch_sizes)
        self.telemetry.absorb(other.telemetry)
        self._refresh_series()


class NullProfiler:
    """The zero-cost default: the simulator stores ``None`` instead of
    this on its hot-path slot, so these methods exist only for API
    completeness (export helpers accept either)."""

    enabled = False
    config: Optional[ProfilerConfig] = None
    events: Dict[CallSite, int] = {}
    wall_ns: Dict[CallSite, int] = {}

    def new_sim(self) -> None:
        pass

    def note_insert(self, now_ns: int, when_ns: int, depth: int) -> None:
        pass

    def note_stale(self) -> None:
        pass

    def hotspots(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        return []

    def attributed_share(self) -> float:
        return 0.0

    @property
    def total_events(self) -> int:
        return 0


NULL_PROFILER = NullProfiler()


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def hotspot_table(profiler: Profiler, top: Optional[int] = None) -> str:
    """Aligned text table: heaviest call sites plus a coverage footer."""
    top = top if top is not None else profiler.config.top
    rows = profiler.hotspots(top)
    if not rows:
        return "(no events profiled)"
    total = profiler.total_events
    wall_on = bool(profiler.wall_ns)
    width = max(len(f"{r['component']}:{r['callsite']}") for r in rows)
    width = max(width, len("call site"))
    lines = [
        f"{'call site'.ljust(width)}  {'kind':<8} {'events':>10} {'ev%':>6}"
        + (f" {'wall ms':>9} {'wall%':>6}" if wall_on else "")
    ]
    for row in rows:
        name = f"{row['component']}:{row['callsite']}"
        line = (
            f"{name.ljust(width)}  {row['kind']:<8} "
            f"{row['events']:>10,} {row['share']:>5.1%}"
        )
        if wall_on:
            line += f" {row['wall_ns'] / 1e6:>8.2f}ms {row['wall_share']:>5.1%}"
        lines.append(line)
    shown = sum(row["events"] for row in rows)
    if shown < total:
        lines.append(
            f"{'(other sites)'.ljust(width)}  {'':<8} "
            f"{total - shown:>10,} {(total - shown) / total:>5.1%}"
        )
    layers = "  ".join(
        f"{layer}={count / total:.1%}" for layer, count in profiler.layer_totals()
    )
    lines.append(f"-- layers: {layers}")
    lines.append(
        f"-- attributed {profiler.attributed_share():.1%} of "
        f"{total:,} dispatched events to a named layer"
    )
    return "\n".join(lines)


def queue_report(profiler: Profiler) -> str:
    """Event-queue introspection summary as aligned text."""
    stats = profiler.queue_stats()
    lines = [
        f"queue inserts          {stats['inserts']:>12,}",
        f"queue dispatches       {stats['dispatches']:>12,}",
        f"stale wakeups          {stats['stale_wakeups']:>12,}",
        f"trampoline hops        {stats['trampoline_hops']:>12,}",
        f"peak queue depth       {stats['peak_depth']:>12,}",
        f"heap-sift cost proxy   {stats['sift_cost']:>12,}",
        f"same-tick batches      {stats['batches']:>12,}",
        (
            f"batch size             mean={stats['batch_mean']:.2f} "
            f"p99={stats['batch_p99']:.2f} max={stats['batch_max']:.0f}"
        ),
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Flamegraph exports
# ----------------------------------------------------------------------
def _stack_of(site: CallSite) -> Tuple[str, str, str]:
    return (site.layer, site.component, f"{site.callsite} [{site.kind}]")


def to_collapsed(profiler: Profiler, weight: str = "events") -> str:
    """Brendan-Gregg collapsed-stack text: ``layer;component;callsite N``.

    ``weight`` selects the sample weight: exact ``events`` counts
    (default, deterministic) or sampled ``wall`` nanoseconds.
    """
    if weight not in ("events", "wall"):
        raise ValueError(f"unknown collapsed-stack weight {weight!r}")
    source = profiler.events if weight == "events" else profiler.wall_ns
    lines = []
    for site in sorted(source):
        value = source[site]
        if value:
            lines.append(";".join(_stack_of(site)) + f" {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_collapsed(
    profiler: Profiler, path: str, weight: str = "events"
) -> None:
    atomic_write_text(path, to_collapsed(profiler, weight))


SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def to_speedscope(profiler: Profiler, name: str = "repro sim profile") -> dict:
    """Speedscope JSON document (sampled profiles over the site stacks).

    Always carries a ``sim events`` profile weighted by exact dispatch
    counts; when wall sampling was on, a second ``wall time`` profile
    weighted in nanoseconds.  Frame and sample order are deterministic.
    """
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame_of(label: str) -> int:
        index = frame_index.get(label)
        if index is None:
            index = len(frames)
            frame_index[label] = index
            frames.append({"name": label})
        return index

    sites = sorted(profiler.events)
    stacks = {site: [frame_of(part) for part in _stack_of(site)] for site in sites}

    def profile_for(
        title: str, unit: str, weights_by_site: Dict[CallSite, int]
    ) -> dict:
        samples: List[List[int]] = []
        weights: List[int] = []
        for site in sites:
            weight = weights_by_site.get(site, 0)
            if weight:
                samples.append(stacks[site])
                weights.append(weight)
        return {
            "type": "sampled",
            "name": title,
            "unit": unit,
            "startValue": 0,
            "endValue": sum(weights),
            "samples": samples,
            "weights": weights,
        }

    profiles = [profile_for("sim events", "none", profiler.events)]
    if profiler.wall_ns:
        profiles.append(
            profile_for("wall time", "nanoseconds", profiler.wall_ns)
        )
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "exporter": "repro.obs.prof",
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def write_speedscope(
    profiler: Profiler, path: str, name: str = "repro sim profile"
) -> None:
    atomic_write_text(path, json.dumps(to_speedscope(profiler, name)))


def bench_hotspots(profiler: Profiler, top: int = 10) -> List[Dict[str, Any]]:
    """Compact per-figure hotspot rows for ``BENCH_<date>.json`` documents."""
    return [
        {
            "site": f"{row['component']}:{row['callsite']}",
            "events": row["events"],
            "share": round(row["share"], 4),
        }
        for row in profiler.hotspots(top)
    ]
