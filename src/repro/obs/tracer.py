"""Span-based request tracing.

Each traced I/O carries an :class:`IoTrace` context through the stack.
The context records an ordered sequence of *phase marks* — ``(t, name)``
transitions on the request's own timeline — plus optional *nested*
spans for concurrent detail (a suspended program, a PCIe DMA, a map
fetch).  Because phases are transitions, the top-level spans of one I/O
tile its lifetime exactly: their durations always sum to the observed
end-to-end latency, which is what makes the latency-anatomy report
trustworthy (the conservation property the tests assert to the
nanosecond).

Marks may arrive from different components (host process, controller
callbacks, analytic device bookings that compute future timestamps), so
``phase`` clamps each mark to be monotonically non-decreasing; clamping
never breaks conservation, it only shortens the phase that would have
gone backwards.

The module is dependency-free by design: the simulator attaches a
tracer (see :mod:`repro.obs.core`) and every layer reaches it through
``sim.obs`` — no layer imports another layer to trace itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs.blame import BlameRecorder

#: Canonical ordering of span names for reports (unknown names follow,
#: alphabetically).  Mirrors a request's journey down and back up.
SPAN_ORDER: Tuple[str, ...] = (
    "submit",
    "blkmq_queue",
    "light_queue",
    "net_send",
    "server",
    "nvme_sq",
    "ctrl",
    "suspend_wait",
    "die_wait",
    "flash_read",
    "flash_prog",
    "dma",
    "write_buffer",
    "buffer_full",
    "gc_stall",
    "write_stall",
    "net_return",
    "cqe_post",
    "completion_isr",
    "completion_poll",
)


@dataclass(frozen=True)
class Span:
    """One named interval of a request (or of a background track)."""

    name: str
    start_ns: int
    end_ns: int
    track: str = "io"
    io_id: Optional[int] = None
    depth: int = 0  # 0 = top-level phase (tiles the request), 1 = detail
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class WaitEdge(NamedTuple):
    """One wait-for interval of a request: who it waited on, and why.

    ``resource`` names the contended thing (``ssd.die3``, ``nvme.q0``,
    ``net.link``); ``holder`` names what occupied it (``gc``,
    ``timeout_recovery``, ``outage``).  Edges are attribution detail on
    top of the phase timeline — they may overlap each other (a lost
    completion's timeout window can contain a die wait), so the blame
    layer charges wall-clock wait time from the *union* of the edges.
    """

    resource: str
    holder: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class IoTrace:
    """The per-I/O span context carried through the stack."""

    __slots__ = (
        "tracer",
        "io_id",
        "op",
        "offset",
        "nbytes",
        "start_ns",
        "end_ns",
        "pid",
        "_marks",
        "_nested",
        "_waits",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        io_id: int,
        op: object,
        offset: int,
        nbytes: int,
        start_ns: int,
        pid: int,
    ) -> None:
        self.tracer = tracer
        self.io_id = io_id
        self.op = str(getattr(op, "value", op))
        self.offset = offset
        self.nbytes = nbytes
        self.start_ns = int(start_ns)
        self.end_ns: Optional[int] = None
        self.pid = pid
        self._marks: List[Tuple[int, str]] = []
        self._nested: List[Span] = []
        self._waits: List[WaitEdge] = []

    # ------------------------------------------------------------------
    def phase(self, name: str, at: int) -> None:
        """Open the top-level phase ``name`` at time ``at``.

        The previously open phase (if any) closes at the same instant.
        ``at`` is clamped to keep marks monotonic, so callers may record
        retroactive transitions (e.g. naming a wait only after it ended)
        as long as they append in order.
        """
        at = int(at)
        floor = self._marks[-1][0] if self._marks else self.start_ns
        if at < floor:
            at = floor
        self._marks.append((at, name))

    def relabel(self, name: str) -> None:
        """Rename the currently open top-level phase."""
        if not self._marks:
            raise RuntimeError("no open phase to relabel")
        at, _old = self._marks[-1]
        self._marks[-1] = (at, name)

    def annotate(self, name: str, start_ns: int, end_ns: int, **args: object) -> None:
        """Record a nested detail span (may overlap phases freely)."""
        self._nested.append(
            Span(
                name=name,
                start_ns=int(start_ns),
                end_ns=int(end_ns),
                track="io",
                io_id=self.io_id,
                depth=1,
                args=tuple(sorted(args.items())),
            )
        )

    def wait(self, resource: str, holder: str, start_ns: int, end_ns: int) -> None:
        """Record a wait-for edge: this I/O sat on ``resource`` because of
        ``holder`` over ``[start_ns, end_ns]``.  Zero/negative intervals
        are dropped so call sites can emit unconditionally.
        """
        start_ns = int(start_ns)
        end_ns = int(end_ns)
        if end_ns > start_ns:
            self._waits.append(WaitEdge(resource, holder, start_ns, end_ns))

    def finish(self, at: int) -> None:
        """Close the trace; the last phase ends here."""
        if self.end_ns is not None:
            raise RuntimeError(f"io {self.io_id} finished twice")
        at = int(at)
        if self._marks and at < self._marks[-1][0]:
            at = self._marks[-1][0]
        self.end_ns = max(at, self.start_ns)
        self.tracer._finished(self)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def latency_ns(self) -> int:
        if self.end_ns is None:
            raise RuntimeError(f"io {self.io_id} not finished")
        return self.end_ns - self.start_ns

    def phases(self) -> List[Span]:
        """The top-level spans, tiling ``[start_ns, end_ns]`` exactly."""
        if self.end_ns is None:
            raise RuntimeError(f"io {self.io_id} not finished")
        spans: List[Span] = []
        for index, (at, name) in enumerate(self._marks):
            end = (
                self._marks[index + 1][0]
                if index + 1 < len(self._marks)
                else self.end_ns
            )
            spans.append(
                Span(
                    name=name,
                    start_ns=at,
                    end_ns=end,
                    track="io",
                    io_id=self.io_id,
                    depth=0,
                )
            )
        return spans

    def nested(self) -> List[Span]:
        return list(self._nested)

    def waits(self) -> List[WaitEdge]:
        """The wait-for edges recorded for this I/O, in emission order."""
        return list(self._waits)

    def spans(self) -> List[Span]:
        """Top-level phases followed by nested detail spans."""
        return self.phases() + self._nested


class SpanTracer:
    """Collects per-I/O contexts and background track spans."""

    enabled = True

    def __init__(self) -> None:
        self._next_io_id = 0
        self._pid = 0
        self.finished_ios: List[IoTrace] = []
        self.track_spans: List[Span] = []
        #: pid -> registry/spec name of the device that sim ran against
        #: (fed by device construction; names the Chrome-trace process).
        self.device_labels: Dict[int, str] = {}
        #: Optional blame consumer, fed each finished trace (see
        #: :mod:`repro.obs.blame`); wired by the Observability bundle.
        self.blame: Optional["BlameRecorder"] = None

    # ------------------------------------------------------------------
    def new_sim(self) -> None:
        """Called when a fresh :class:`Simulator` attaches.

        Each simulator's spans land in their own Chrome-trace process so
        back-to-back measurement runs (each with its own clock starting
        at zero) do not overlap in the viewer.
        """
        self._pid += 1

    @property
    def current_pid(self) -> int:
        return max(1, self._pid)

    def label_device(self, label: str) -> None:
        """Record which device the current sim's spans run against."""
        if label:
            self.device_labels[self.current_pid] = label

    # ------------------------------------------------------------------
    def begin_io(self, op: object, offset: int, nbytes: int, at: int) -> IoTrace:
        """Open a trace context for one I/O starting at ``at``."""
        trace = IoTrace(
            self,
            self._next_io_id,
            op,
            offset,
            nbytes,
            at,
            pid=self.current_pid,
        )
        self._next_io_id += 1
        return trace

    def span(
        self, track: str, name: str, start_ns: int, end_ns: int, **args: object
    ) -> None:
        """Record a background span on a named device track (GC, flush)."""
        self.track_spans.append(
            Span(
                name=name,
                start_ns=int(start_ns),
                end_ns=int(end_ns),
                track=track,
                io_id=None,
                depth=0,
                args=tuple(sorted(args.items())) + (("pid", self.current_pid),),
            )
        )

    def _finished(self, trace: IoTrace) -> None:
        self.finished_ios.append(trace)
        if self.blame is not None:
            self.blame.observe(trace)

    # ------------------------------------------------------------------
    def absorb(self, other: "SpanTracer") -> None:
        """Merge another tracer's spans into this one (worker hand-back).

        The other tracer's pids and io ids are rebased past this one's
        counters, so absorbing worker bundles in submission order yields
        the same ids a serial run would have assigned.
        """
        pid_base = self._pid
        io_base = self._next_io_id
        for trace in other.finished_ios:
            trace.tracer = self
            trace.io_id += io_base
            trace.pid += pid_base
            if trace._nested:
                trace._nested = [
                    Span(
                        name=span.name,
                        start_ns=span.start_ns,
                        end_ns=span.end_ns,
                        track=span.track,
                        io_id=trace.io_id,
                        depth=span.depth,
                        args=span.args,
                    )
                    for span in trace._nested
                ]
            self.finished_ios.append(trace)
        for span in other.track_spans:
            args = tuple(
                ("pid", value + pid_base) if name == "pid" else (name, value)
                for name, value in span.args
            )
            self.track_spans.append(
                Span(
                    name=span.name,
                    start_ns=span.start_ns,
                    end_ns=span.end_ns,
                    track=span.track,
                    io_id=span.io_id,
                    depth=span.depth,
                    args=args,
                )
            )
        for pid, label in sorted(other.device_labels.items()):
            self.device_labels[pid + pid_base] = label
        self._pid += other._pid
        self._next_io_id += other._next_io_id

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.finished_ios)

    def __iter__(self) -> Iterator[IoTrace]:
        return iter(self.finished_ios)

    def totals_by_name(self) -> Dict[str, int]:
        """Summed top-level phase durations across all finished I/Os."""
        totals: Dict[str, int] = {}
        for trace in self.finished_ios:
            for span in trace.phases():
                totals[span.name] = totals.get(span.name, 0) + span.duration_ns
        return totals


class NullTracer:
    """The zero-cost default: every hook is a no-op.

    ``begin_io`` returns ``None`` so instrumented code can guard with a
    single identity check per I/O; hot paths additionally guard on
    ``enabled`` so no argument tuples are even built.
    """

    enabled = False
    device_labels: Dict[int, str] = {}

    def new_sim(self) -> None:
        pass

    def label_device(self, label: str) -> None:
        pass

    def begin_io(
        self, op: object, offset: int, nbytes: int, at: int
    ) -> Optional[IoTrace]:
        return None

    def span(
        self, track: str, name: str, start_ns: int, end_ns: int, **args: object
    ) -> None:
        pass

    def __len__(self) -> int:
        return 0

    @property
    def finished_ios(self) -> Tuple[IoTrace, ...]:
        return ()

    @property
    def track_spans(self) -> Tuple[Span, ...]:
        return ()


NULL_TRACER = NullTracer()


def sort_span_names(names: Iterable[str]) -> List[str]:
    """Canonical report order: request-journey order, then alphabetical."""
    rank = {name: index for index, name in enumerate(SPAN_ORDER)}
    return sorted(set(names), key=lambda n: (rank.get(n, len(rank)), n))
