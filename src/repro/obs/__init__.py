"""repro.obs — cross-layer observability for the simulated I/O stack.

Six pieces:

* **Span tracing** (:mod:`repro.obs.tracer`): each I/O carries an
  :class:`IoTrace` context through kstack/nvme/ssd/spdk; top-level
  phases tile the request's lifetime exactly, nested spans carry
  concurrent detail, and background tracks record GC / flush activity.
* **Metrics** (:mod:`repro.obs.registry`): counters, time-weighted
  gauges, and log-bucketed histograms layers register into.
* **Telemetry** (:mod:`repro.obs.telemetry`): named time-series sampled
  on the sim clock (queue depths, busy fractions, buffer occupancy, GC
  and fault-recovery activity) with streaming tail digests.
* **Blame attribution** (:mod:`repro.obs.blame`): every layer that can
  make an I/O wait emits wait-for edges alongside its spans; a bounded
  top-K recorder keeps the slowest requests' full wait chains, rolls
  tail blame up by resource, and tracks SLO attainment + burn rate.
* **Self-profiling** (:mod:`repro.obs.prof`): where the *simulator
  itself* spends its events and wall time — hotspot attribution by
  layer/component/callsite, event-queue introspection, and
  collapsed-stack / speedscope flamegraph export.
* **Exporters & reports** (:mod:`repro.obs.export`,
  :mod:`repro.obs.html`, :mod:`repro.obs.anatomy`): Chrome
  ``trace_event`` JSON (open in Perfetto), text/CSV metric and
  telemetry dumps, a self-contained HTML timeline report, and the
  latency-anatomy breakdown.

Instrumentation is off by default (no-op tracer and registry); enable
it for any code that builds its own simulators with::

    from repro.obs import Observability, write_chrome_trace
    with Observability() as obs:
        result = run_figure("fig10")
    write_chrome_trace(obs.tracer, "fig10-trace.json")

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from repro.obs.anatomy import AnatomyReport, AnatomyRow, verify_conservation
from repro.obs.blame import (
    BlameConfig,
    BlameRecorder,
    OutlierRecord,
    SloSpec,
    blame_table,
    format_ns,
    parse_duration_ns,
    verify_blame_conservation,
)
from repro.obs.core import NULL_OBS, Observability, current_obs, obs_aware_cache
from repro.obs.prof import (
    NULL_PROFILER,
    CallSite,
    NullProfiler,
    Profiler,
    ProfilerConfig,
    bench_hotspots,
    hotspot_table,
    queue_report,
    to_collapsed,
    to_speedscope,
    write_collapsed,
    write_speedscope,
)
from repro.obs.export import (
    JSONL_SCHEMA,
    atomic_write_text,
    chrome_trace_events,
    metrics_to_csv,
    metrics_to_text,
    telemetry_counter_events,
    telemetry_to_csv,
    telemetry_to_text,
    to_chrome_trace,
    trace_jsonl_lines,
    trace_to_jsonl,
    write_chrome_trace,
    write_metrics_csv,
    write_telemetry_csv,
    write_trace_jsonl,
)
from repro.obs.html import (
    blame_report_html,
    blame_section_html,
    telemetry_report_html,
    write_blame_html,
    write_telemetry_html,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.telemetry import (
    NULL_SERIES,
    NULL_TELEMETRY,
    NullTelemetry,
    TailDigest,
    Telemetry,
    TelemetryConfig,
    TimeSeries,
)
from repro.obs.tracer import (
    NULL_TRACER,
    SPAN_ORDER,
    IoTrace,
    NullTracer,
    Span,
    SpanTracer,
    WaitEdge,
    sort_span_names,
)

__all__ = [
    "AnatomyReport",
    "AnatomyRow",
    "verify_conservation",
    "Observability",
    "current_obs",
    "obs_aware_cache",
    "NULL_OBS",
    "atomic_write_text",
    "chrome_trace_events",
    "telemetry_counter_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "metrics_to_text",
    "metrics_to_csv",
    "write_metrics_csv",
    "telemetry_to_csv",
    "telemetry_to_text",
    "write_telemetry_csv",
    "telemetry_report_html",
    "write_telemetry_html",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "IoTrace",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "SPAN_ORDER",
    "sort_span_names",
    "TailDigest",
    "Telemetry",
    "TelemetryConfig",
    "TimeSeries",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "NULL_SERIES",
    "CallSite",
    "Profiler",
    "ProfilerConfig",
    "NullProfiler",
    "NULL_PROFILER",
    "hotspot_table",
    "queue_report",
    "bench_hotspots",
    "to_collapsed",
    "write_collapsed",
    "to_speedscope",
    "write_speedscope",
    "WaitEdge",
    "BlameConfig",
    "BlameRecorder",
    "OutlierRecord",
    "SloSpec",
    "blame_table",
    "format_ns",
    "parse_duration_ns",
    "verify_blame_conservation",
    "JSONL_SCHEMA",
    "trace_jsonl_lines",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "blame_section_html",
    "blame_report_html",
    "write_blame_html",
]
