"""Log-scaled latency histograms — fio's ``clat`` view of a distribution.

fio reports completion latency as percentile buckets on a coarse
logarithmic grid; :class:`LatencyHistogram` reproduces that: samples go
into log2-spaced buckets with linear sub-buckets, so the memory cost is
constant regardless of sample count while percentile error stays within
the sub-bucket resolution (fio uses 64 sub-buckets; so do we).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

#: Linear sub-buckets per power-of-two group (fio's FIO_IO_U_PLAT_VAL).
SUB_BUCKETS = 64
SUB_BUCKET_BITS = 6
#: Number of power-of-two groups: covers 1 ns .. >1 hour.
GROUPS = 40


class LatencyHistogram:
    """Constant-memory latency distribution on fio's log-linear grid."""

    def __init__(self) -> None:
        self._counts = np.zeros(GROUPS * SUB_BUCKETS, dtype=np.int64)
        self._total = 0
        self._max_ns = 0
        self._min_ns: int = -1

    # ------------------------------------------------------------------
    @staticmethod
    def _bucket_of(value_ns: int) -> int:
        """fio's plat_val_to_idx: log2 group + linear sub-bucket."""
        if value_ns < 0:
            raise ValueError(f"negative latency: {value_ns}")
        msb = int(value_ns).bit_length() - 1 if value_ns > 0 else 0
        if msb < SUB_BUCKET_BITS:
            group, sub = 0, int(value_ns)
        else:
            group = msb - SUB_BUCKET_BITS + 1
            # Drop the leading bit, keep the next SUB_BUCKET_BITS bits.
            sub = (int(value_ns) >> (msb - SUB_BUCKET_BITS)) & (SUB_BUCKETS - 1)
        index = group * SUB_BUCKETS + sub
        return min(index, GROUPS * SUB_BUCKETS - 1)

    @staticmethod
    def _bucket_value(index: int) -> int:
        """Representative latency (ns) of a bucket (its lower edge mean)."""
        group, sub = divmod(index, SUB_BUCKETS)
        if group == 0:
            return sub
        base = 1 << (group + SUB_BUCKET_BITS - 1)
        step = base >> SUB_BUCKET_BITS
        return base + sub * step + step // 2

    # ------------------------------------------------------------------
    def record(self, latency_ns: float) -> None:
        value = int(latency_ns)
        self._counts[self._bucket_of(value)] += 1
        self._total += 1
        self._max_ns = max(self._max_ns, value)
        self._min_ns = value if self._min_ns < 0 else min(self._min_ns, value)

    def extend(self, latencies_ns: Iterable[float]) -> None:
        for value in latencies_ns:
            self.record(value)

    def __len__(self) -> int:
        return self._total

    # ------------------------------------------------------------------
    def percentile(self, pct: float) -> float:
        """Approximate percentile (within one sub-bucket of truth)."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError("pct must be in [0, 100]")
        if self._total == 0:
            return 0.0
        target = max(1, int(np.ceil(self._total * pct / 100.0)))
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, target))
        return float(self._bucket_value(index))

    def percentiles(self, pcts: Iterable[float]) -> Dict[float, float]:
        return {pct: self.percentile(pct) for pct in pcts}

    @property
    def min_ns(self) -> int:
        return max(self._min_ns, 0)

    @property
    def max_ns(self) -> int:
        return self._max_ns

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """(representative_ns, count) for every occupied bucket."""
        indices = np.nonzero(self._counts)[0]
        return [(self._bucket_value(int(i)), int(self._counts[i])) for i in indices]

    def render(self, *, width: int = 50) -> str:
        """fio-style text histogram (one row per occupied bucket)."""
        rows = []
        buckets = self.nonzero_buckets()
        if not buckets:
            return "(empty histogram)"
        peak = max(count for _, count in buckets)
        for value, count in buckets:
            bar = "#" * max(1, int(round(width * count / peak)))
            rows.append(f"{value / 1000.0:10.1f}us | {count:8d} {bar}")
        return "\n".join(rows)
