"""Time-series recording for the GC / power experiments (Figs. 7b and 8).

:class:`TimeSeries` stores raw ``(time, value)`` points.
:class:`WindowedAverage` buckets points into fixed windows and reports the
per-window mean — exactly how the paper's time-series plots are drawn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


class TimeSeries:
    """Raw ``(t_ns, value)`` samples in arrival order."""

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self._times: List[int] = []
        self._values: List[float] = []

    def record(self, t_ns: int, value: float) -> None:
        if self._times and t_ns < self._times[-1]:
            raise ValueError("time series records must be non-decreasing in time")
        self._times.append(int(t_ns))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=np.int64)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def windowed(self, window_ns: int) -> "WindowedAverage":
        """Aggregate into ``window_ns``-wide buckets of per-window means."""
        return WindowedAverage.from_points(self._times, self._values, window_ns)


@dataclass(frozen=True)
class WindowedAverage:
    """Per-window mean values; the x axis of a time-series figure."""

    window_ns: int
    starts_ns: Tuple[int, ...]
    means: Tuple[float, ...]

    @classmethod
    def from_points(
        cls, times: Sequence[int], values: Sequence[float], window_ns: int
    ) -> "WindowedAverage":
        if window_ns <= 0:
            raise ValueError("window must be positive")
        if not times:
            return cls(window_ns=window_ns, starts_ns=(), means=())
        times_arr = np.asarray(times, dtype=np.int64)
        values_arr = np.asarray(values, dtype=np.float64)
        buckets = times_arr // window_ns
        starts: List[int] = []
        means: List[float] = []
        for bucket in np.unique(buckets):
            mask = buckets == bucket
            starts.append(int(bucket) * window_ns)
            means.append(float(values_arr[mask].mean()))
        return cls(window_ns=window_ns, starts_ns=tuple(starts), means=tuple(means))

    def __len__(self) -> int:
        return len(self.starts_ns)


class PowerIntegrator:
    """Integrates a piecewise-constant power signal into energy.

    The device power model reports transitions ("power is now P watts");
    the integrator turns those into average power over arbitrary spans,
    which is what a wall-socket power meter shows.
    """

    def __init__(self, idle_watts: float) -> None:
        self._last_t: int = 0
        self._last_power: float = idle_watts
        self._energy_j_per_ns: float = 0.0
        self.series = TimeSeries("power")

    def set_power(self, t_ns: int, watts: float) -> None:
        if t_ns < self._last_t:
            raise ValueError("power transitions must be time-ordered")
        self._energy_j_per_ns += self._last_power * (t_ns - self._last_t)
        self._last_t = t_ns
        self._last_power = watts
        self.series.record(t_ns, watts)

    def average_watts(self, until_ns: int) -> float:
        """Mean power from t=0 to ``until_ns``."""
        if until_ns <= 0:
            return self._last_power
        total = self._energy_j_per_ns + self._last_power * max(
            0, until_ns - self._last_t
        )
        return total / until_ns
