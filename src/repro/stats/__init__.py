"""Measurement utilities: latency distributions and time series."""

from repro.stats.histogram import LatencyHistogram
from repro.stats.latency import LatencyRecorder, LatencySummary
from repro.stats.timeseries import TimeSeries, WindowedAverage

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "LatencyHistogram",
    "TimeSeries",
    "WindowedAverage",
]
