"""Latency distribution recording.

The paper reports average latency and the 99.999th ("five nines")
percentile.  :class:`LatencyRecorder` collects raw samples (integer
nanoseconds) and computes summaries on demand; :class:`LatencySummary`
is the immutable result object used in experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency distribution, in nanoseconds."""

    count: int
    mean_ns: float
    min_ns: float
    max_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    p9999_ns: float
    p99999_ns: float
    stdev_ns: float

    @property
    def mean_us(self) -> float:
        return self.mean_ns / NS_PER_US

    @property
    def p99999_us(self) -> float:
        return self.p99999_ns / NS_PER_US

    @property
    def p99_us(self) -> float:
        return self.p99_ns / NS_PER_US

    @property
    def max_us(self) -> float:
        return self.max_ns / NS_PER_US

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_us:.1f}us "
            f"p99={self.p99_us:.1f}us p99.999={self.p99999_us:.1f}us"
        )


EMPTY_SUMMARY = LatencySummary(
    count=0, mean_ns=0.0, min_ns=0.0, max_ns=0.0, p50_ns=0.0,
    p95_ns=0.0, p99_ns=0.0, p9999_ns=0.0, p99999_ns=0.0, stdev_ns=0.0,
)


class LatencyRecorder:
    """Accumulates latency samples and summarizes them.

    Samples are kept raw (one float per I/O) because the experiments need
    exact extreme percentiles from modest sample counts; at the scales
    this repository runs (<= a few hundred thousand I/Os per experiment)
    raw storage is cheap.
    """

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: List[float] = []

    def record(self, latency_ns: float) -> None:
        """Add one sample (nanoseconds)."""
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.append(float(latency_ns))

    def extend(self, latencies_ns: Iterable[float]) -> None:
        for value in latencies_ns:
            self.record(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> np.ndarray:
        return np.asarray(self._samples, dtype=np.float64)

    def percentile(self, pct: float) -> float:
        """Empirical percentile (``pct`` in [0, 100]), in nanoseconds.

        Uses the *higher* interpolation so that extreme percentiles from
        small sample counts report an actually observed latency rather
        than an interpolated value below the tail.
        """
        if not self._samples:
            return 0.0
        return float(np.percentile(self.samples, pct, method="higher"))

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return float(np.mean(self.samples))

    def summary(self) -> LatencySummary:
        if not self._samples:
            return EMPTY_SUMMARY
        data = self.samples
        pcts = np.percentile(data, [50, 95, 99, 99.99, 99.999], method="higher")
        return LatencySummary(
            count=len(self._samples),
            mean_ns=float(np.mean(data)),
            min_ns=float(np.min(data)),
            max_ns=float(np.max(data)),
            p50_ns=float(pcts[0]),
            p95_ns=float(pcts[1]),
            p99_ns=float(pcts[2]),
            p9999_ns=float(pcts[3]),
            p99999_ns=float(pcts[4]),
            stdev_ns=float(np.std(data)),
        )
