"""repro.perf — wall-clock self-profiling and perf-regression gating.

Times benchmark figures (wall seconds, simulated events per second,
sweep-cache state), aggregates them into top-level ``BENCH_<date>.json``
documents, and compares documents across revisions with a configurable
slowdown threshold::

    python -m repro perf fig04a fig05a          # run + write BENCH json
    python -m repro perf --compare BENCH_old.json --against BENCH_new.json

See ``docs/observability.md`` for the record schema and the CI
``perf-smoke`` wiring.
"""

from repro.perf.harness import (
    DEFAULT_THRESHOLD,
    SCHEMA,
    BenchRecord,
    Comparison,
    CompareRow,
    PerfSession,
    bench_filename,
    compare_docs,
    load_bench,
    write_bench,
)

__all__ = [
    "BenchRecord",
    "CompareRow",
    "Comparison",
    "PerfSession",
    "bench_filename",
    "compare_docs",
    "load_bench",
    "write_bench",
    "DEFAULT_THRESHOLD",
    "SCHEMA",
]
