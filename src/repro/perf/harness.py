"""Wall-clock self-profiling and the perf-regression harness.

The simulator is the product here, so its *throughput* — simulated
events executed per wall-clock second — is a first-class output next to
the figures themselves.  :class:`PerfSession` times each benchmark
figure (wall seconds, sim events, sweep-engine cache state) and
aggregates the records into a ``BENCH_<date>.json`` document; `compare
<compare_docs>` diffs two documents and flags figures whose wall time
regressed past a configurable threshold, which is what the CI
``perf-smoke`` job and ``python -m repro perf --compare`` gate on.

Cache state matters when comparing: a warm-cache run executes zero
simulations and its wall time says nothing about simulator throughput,
so comparisons only gate figures whose cache states match.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ContextManager, Dict, List, Optional, Tuple, Union

from repro.obs.export import atomic_write_text

#: Bump when the document layout changes incompatibly.
SCHEMA = 1

#: Default slowdown gate: new wall time > (1 + threshold) x old fails.
DEFAULT_THRESHOLD = 0.30


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass
class BenchRecord:
    """One figure's timing: what ran, how long, and out of which cache."""

    figure_id: str
    wall_s: float
    sim_events: int
    points: int = 0
    executed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    #: Optional per-figure hotspot rows from the self-profiler
    #: (``repro.obs.prof.bench_hotspots``): ({"site", "events", "share"}, ...).
    hotspots: Tuple[dict, ...] = ()

    @property
    def events_per_s(self) -> float:
        return self.sim_events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache(self) -> str:
        """``cold`` (all points simulated), ``warm`` (none), or ``mixed``."""
        if self.points == 0:
            return "none"
        if self.executed == 0:
            return "warm"
        if self.executed >= self.points:
            return "cold"
        return "mixed"

    def to_dict(self) -> dict:
        doc = {
            "figure_id": self.figure_id,
            "wall_s": round(self.wall_s, 4),
            "sim_events": self.sim_events,
            "events_per_s": round(self.events_per_s, 1),
            "points": self.points,
            "executed": self.executed,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "cache": self.cache,
        }
        if self.hotspots:
            doc["hotspots"] = [dict(row) for row in self.hotspots]
        return doc

    @classmethod
    def from_dict(cls, row: dict) -> "BenchRecord":
        return cls(
            figure_id=row["figure_id"],
            wall_s=float(row["wall_s"]),
            sim_events=int(row.get("sim_events", 0)),
            points=int(row.get("points", 0)),
            executed=int(row.get("executed", 0)),
            memo_hits=int(row.get("memo_hits", 0)),
            disk_hits=int(row.get("disk_hits", 0)),
            hotspots=tuple(row.get("hotspots", ())),
        )


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class PerfSession:
    """Collects per-figure timing over a run of benchmark figures.

    Use either the :meth:`measure` context manager around each figure,
    or the lower-level :meth:`mark`/:meth:`lap` pair when the figure
    call happens elsewhere (the pytest benchmarks).  Repeated laps for
    the same figure accumulate.
    """

    def __init__(self, engine: Any = None) -> None:
        if engine is None:
            from repro.core import sweep

            engine = sweep.default_engine()
        self.engine = engine
        self.records: Dict[str, BenchRecord] = {}

    # -- low-level marks ------------------------------------------------
    def mark(self) -> Tuple[float, int, dict]:
        from repro.sim import engine as sim_engine

        return (
            time.perf_counter(),
            sim_engine.events_executed_total,
            self.engine.stats.snapshot(),
        )

    def lap(
        self, figure_id: str, mark: Tuple[float, int, dict]
    ) -> Tuple[float, int, dict]:
        """Close the window opened by ``mark`` and book it to ``figure_id``;
        returns a fresh mark for the next window."""
        now = self.mark()
        wall_s = now[0] - mark[0]
        sim_events = now[1] - mark[1]
        stats = {key: now[2][key] - mark[2][key] for key in now[2]}
        record = self.records.get(figure_id)
        if record is None:
            self.records[figure_id] = BenchRecord(
                figure_id=figure_id,
                wall_s=wall_s,
                sim_events=sim_events,
                points=stats.get("points", 0),
                executed=stats.get("executed", 0),
                memo_hits=stats.get("memo_hits", 0),
                disk_hits=stats.get("disk_hits", 0),
            )
        else:
            record.wall_s += wall_s
            record.sim_events += sim_events
            record.points += stats.get("points", 0)
            record.executed += stats.get("executed", 0)
            record.memo_hits += stats.get("memo_hits", 0)
            record.disk_hits += stats.get("disk_hits", 0)
        return now

    # -- context-manager form -------------------------------------------
    def measure(self, figure_id: str) -> "ContextManager[PerfSession]":
        session = self

        class _Measure:
            def __enter__(self) -> "PerfSession":
                self._mark = session.mark()
                return session

            def __exit__(self, *exc: object) -> bool:
                if exc[0] is None:
                    session.lap(figure_id, self._mark)
                return False

        return _Measure()

    # -- aggregation ----------------------------------------------------
    def to_doc(self, date: Optional[str] = None, **meta: Any) -> dict:
        return {
            "schema": SCHEMA,
            "date": date or time.strftime("%Y-%m-%d"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "jobs": self.engine.jobs,
            **meta,
            "figures": {
                figure_id: record.to_dict()
                for figure_id, record in sorted(self.records.items())
            },
        }


def bench_filename(date: Optional[str] = None) -> str:
    return f"BENCH_{date or time.strftime('%Y%m%d')}.json"


def write_bench(doc: dict, path: Union[str, Path, None] = None) -> Path:
    """Write a bench document atomically; defaults to ``BENCH_<date>.json``
    in the current directory.  Returns the path written."""
    target = Path(path) if path is not None else Path(bench_filename())
    atomic_write_text(target, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return target


def load_bench(path: Union[str, Path]) -> dict:
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {doc.get('schema')!r}"
        )
    return doc


# ----------------------------------------------------------------------
# Comparison / gating
# ----------------------------------------------------------------------
@dataclass
class CompareRow:
    figure_id: str
    status: str  # ok | slower | faster | incomparable | added | removed
    old_wall_s: Optional[float] = None
    new_wall_s: Optional[float] = None
    old_events_per_s: Optional[float] = None
    new_events_per_s: Optional[float] = None
    note: str = ""
    #: ``component:callsite (share)`` of the new document's heaviest
    #: self-profiler site, when the bench was run with ``perf --profile``.
    top_hotspot: str = ""
    #: Same for the old document — lets the render show a hotspot
    #: *shift* when both benches were profiled.
    old_top_hotspot: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if not self.old_wall_s or self.new_wall_s is None:
            return None
        return self.new_wall_s / self.old_wall_s

    @property
    def events_delta(self) -> Optional[float]:
        """Fractional sim-events/s change (+0.10 = 10% more throughput)."""
        if not self.old_events_per_s or self.new_events_per_s is None:
            return None
        return self.new_events_per_s / self.old_events_per_s - 1.0


@dataclass
class Comparison:
    threshold: float
    rows: List[CompareRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[CompareRow]:
        return [row for row in self.rows if row.status == "slower"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        if not self.rows:
            return "(no figures in common)"
        lines = [
            f"{'figure':<22} {'old wall':>9} {'new wall':>9} {'ratio':>7} "
            f"{'old ev/s':>10} {'new ev/s':>10} {'ev/s %':>7}  status"
        ]
        for row in self.rows:
            old_w = f"{row.old_wall_s:.2f}s" if row.old_wall_s is not None else "-"
            new_w = f"{row.new_wall_s:.2f}s" if row.new_wall_s is not None else "-"
            ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "-"
            old_e = (
                f"{row.old_events_per_s:,.0f}"
                if row.old_events_per_s is not None
                else "-"
            )
            new_e = (
                f"{row.new_events_per_s:,.0f}"
                if row.new_events_per_s is not None
                else "-"
            )
            delta = row.events_delta
            delta_s = f"{delta:+.0%}" if delta is not None else "-"
            status = row.status + (f" ({row.note})" if row.note else "")
            lines.append(
                f"{row.figure_id:<22} {old_w:>9} {new_w:>9} {ratio:>7} "
                f"{old_e:>10} {new_e:>10} {delta_s:>7}  {status}"
            )
        slower = len(self.regressions)
        lines.append(
            f"-- {slower} regression(s) past the "
            f"{self.threshold:.0%} slowdown threshold"
        )
        for row in self.rows:
            if not (row.top_hotspot or row.old_top_hotspot):
                continue
            if row.old_top_hotspot and row.old_top_hotspot != row.top_hotspot:
                lines.append(
                    f"-- {row.figure_id}: top hotspot "
                    f"{row.old_top_hotspot} -> {row.top_hotspot or '(none)'}"
                )
            else:
                lines.append(
                    f"-- {row.figure_id}: top hotspot {row.top_hotspot}"
                )
        return "\n".join(lines)


def _top_hotspot(row: Optional[dict]) -> str:
    """Render the heaviest profiler site of a bench row, or ``""``."""
    hotspots = (row or {}).get("hotspots") or ()
    if not hotspots:
        return ""
    top = hotspots[0]
    return f"{top.get('site', '?')} ({float(top.get('share', 0.0)):.0%} of events)"


def compare_docs(
    old_doc: dict, new_doc: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> Comparison:
    """Diff two bench documents figure-by-figure.

    A figure gates (``slower``) only when it appears in both documents
    with the *same cache state* and its new wall time exceeds
    ``(1 + threshold)`` times the old; mismatched cache states are
    reported ``incomparable`` instead of producing a bogus verdict.
    """
    comparison = Comparison(threshold=threshold)
    old_figures = old_doc.get("figures", {})
    new_figures = new_doc.get("figures", {})
    for figure_id in sorted(set(old_figures) | set(new_figures)):
        old_row = old_figures.get(figure_id)
        new_row = new_figures.get(figure_id)
        if old_row is None:
            record = BenchRecord.from_dict(new_row)
            comparison.rows.append(
                CompareRow(
                    figure_id,
                    "added",
                    new_wall_s=record.wall_s,
                    new_events_per_s=record.events_per_s,
                    top_hotspot=_top_hotspot(new_row),
                )
            )
            continue
        if new_row is None:
            record = BenchRecord.from_dict(old_row)
            comparison.rows.append(
                CompareRow(
                    figure_id,
                    "removed",
                    old_wall_s=record.wall_s,
                    old_events_per_s=record.events_per_s,
                )
            )
            continue
        old_rec = BenchRecord.from_dict(old_row)
        new_rec = BenchRecord.from_dict(new_row)
        row = CompareRow(
            figure_id,
            "ok",
            old_wall_s=old_rec.wall_s,
            new_wall_s=new_rec.wall_s,
            old_events_per_s=old_rec.events_per_s,
            new_events_per_s=new_rec.events_per_s,
            top_hotspot=_top_hotspot(new_row),
            old_top_hotspot=_top_hotspot(old_row),
        )
        if old_rec.cache != new_rec.cache:
            row.status = "incomparable"
            row.note = f"cache {old_rec.cache} vs {new_rec.cache}"
        elif old_rec.wall_s > 0 and row.ratio > 1.0 + threshold:
            row.status = "slower"
            row.note = f"+{(row.ratio - 1.0):.0%}"
        elif old_rec.wall_s > 0 and row.ratio < 1.0 - threshold:
            row.status = "faster"
            row.note = f"-{(1.0 - row.ratio):.0%}"
        comparison.rows.append(row)
    return comparison
