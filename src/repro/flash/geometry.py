"""Physical organization of an SSD's flash array.

The hierarchy follows Section II-A2 of the paper: the device has multiple
*channels* (system buses), each channel hosts several *ways* (dies), each
die has planes, blocks, and pages.  ULL SSDs additionally pair channels
into *super-channels*; that pairing lives in :mod:`repro.ssd.channels`,
not here — geometry only describes the raw array.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlashGeometry:
    """Dimensions of the flash array.

    Addresses used throughout the simulator:

    * a *physical page address* (PPA) is a flat integer in
      ``[0, total_pages)``;
    * a *block address* is a flat integer in ``[0, total_blocks)``;
    * helpers map between the flat forms and (die, plane, block, page)
      coordinates.
    """

    channels: int
    ways_per_channel: int
    planes_per_die: int
    blocks_per_plane: int
    pages_per_block: int
    page_size: int  # bytes

    def __post_init__(self) -> None:
        for field in (
            "channels",
            "ways_per_channel",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def dies(self) -> int:
        return self.channels * self.ways_per_channel

    @property
    def blocks_per_die(self) -> int:
        return self.planes_per_die * self.blocks_per_plane

    @property
    def total_blocks(self) -> int:
        return self.dies * self.blocks_per_die

    @property
    def pages_per_die(self) -> int:
        return self.blocks_per_die * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.dies * self.pages_per_die

    @property
    def block_size(self) -> int:
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def die_of_page(self, ppa: int) -> int:
        self._check_ppa(ppa)
        return ppa // self.pages_per_die

    def channel_of_die(self, die: int) -> int:
        if not 0 <= die < self.dies:
            raise ValueError(f"die out of range: {die}")
        return die % self.channels

    def channel_of_page(self, ppa: int) -> int:
        return self.channel_of_die(self.die_of_page(ppa))

    def block_of_page(self, ppa: int) -> int:
        self._check_ppa(ppa)
        return ppa // self.pages_per_block

    def die_of_block(self, block: int) -> int:
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block out of range: {block}")
        return block // self.blocks_per_die

    def first_page_of_block(self, block: int) -> int:
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block out of range: {block}")
        return block * self.pages_per_block

    def page_offset_in_block(self, ppa: int) -> int:
        self._check_ppa(ppa)
        return ppa % self.pages_per_block

    def _check_ppa(self, ppa: int) -> None:
        if not 0 <= ppa < self.total_pages:
            raise ValueError(f"physical page address out of range: {ppa}")

    def describe(self) -> str:
        cap_mib = self.capacity_bytes / (1 << 20)
        return (
            f"{self.channels}ch x {self.ways_per_channel}way "
            f"x {self.planes_per_die}pl x {self.blocks_per_plane}blk "
            f"x {self.pages_per_block}pg @ {self.page_size}B "
            f"= {cap_mib:.0f} MiB"
        )
