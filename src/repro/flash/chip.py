"""Per-die flash operation model with program suspend/resume.

A die executes one array operation at a time (read / program / erase).
Operations are booked analytically on a timeline: issuing an operation
reserves the earliest feasible interval and returns it, so no simulation
process is needed per flash transaction.

The Z-NAND-specific mechanism (paper Section II-A3): when a read arrives
while a program (or erase) is mid-flight, the die *suspends* the program,
serves the read after a small suspend penalty, and then *resumes* the
program, pushing its completion out by the read's duration plus the
suspend/resume overheads.  This is what keeps ULL read latency flat under
write interference (Fig. 6) and hides garbage collection (Figs. 7b, 8b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.flash.timing import FlashTiming
from repro.sim.engine import Simulator


class OpKind(enum.Enum):
    """Array operation types."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass
class _InFlightOp:
    kind: OpKind
    start: int
    end: int
    suspends_used: int = 0


class FlashDie:
    """One flash die (a "way" on a channel).

    ``observer`` (if given) is called as ``observer(kind, start, end)``
    for every booked operation — the power model subscribes through this
    hook.
    """

    def __init__(
        self,
        sim: Simulator,
        timing: FlashTiming,
        *,
        allow_suspend: bool = False,
        observer: Optional[Callable[[OpKind, int, int], None]] = None,
        seed: int = 97,
    ) -> None:
        import numpy as np

        self.sim = sim
        self.timing = timing
        self.allow_suspend = allow_suspend
        self.observer = observer
        self._rng = np.random.default_rng(seed)
        # Slot-cached timing: the per-op-class table resolved once, plus
        # the bound RNG method — booking an op reads flat locals instead
        # of walking timing-attribute chains per call.  The RNG draw
        # order is untouched (still exactly one uniform per jittered
        # op), so booked intervals are bit-identical.
        self._slots = timing.slots()
        self._uniform = self._rng.uniform
        self.free_at: int = 0
        self.busy_ns: int = 0
        self._last_slow_op: Optional[_InFlightOp] = None
        # End of the most recent suspended read: a second read arriving
        # during the same program must queue behind the first one.
        self._read_front: int = 0
        # Counters for tests / reporting.
        self.reads = 0
        self.programs = 0
        self.erases = 0
        self.suspends = 0

    # ------------------------------------------------------------------
    def _jittered(self, base_ns: int, jitter: float) -> int:
        """Per-op latency with word-line/page-type variation applied."""
        if jitter <= 0.0:
            return base_ns
        factor = 1.0 + self._uniform(-jitter, jitter)
        return max(1, int(round(base_ns * factor)))

    def read(self, not_before: int = 0) -> Tuple[int, int]:
        """Book a page read; returns its ``(start, end)`` interval."""
        self.reads += 1
        slots = self._slots
        duration = self._jittered(slots.read_ns, slots.read_jitter)
        arrival = max(self.sim.now, not_before)
        slow = self._suspendable_op(arrival)
        if slow is not None:
            return self._suspend_and_read(slow, arrival, duration)
        return self._book(OpKind.READ, duration, arrival)

    def program(self, not_before: int = 0) -> Tuple[int, int]:
        """Book a page program; returns its ``(start, end)`` interval."""
        self.programs += 1
        slots = self._slots
        duration = self._jittered(slots.program_ns, slots.program_jitter)
        interval = self._book(OpKind.PROGRAM, duration, not_before)
        self._last_slow_op = _InFlightOp(OpKind.PROGRAM, *interval)
        return interval

    def erase(self, not_before: int = 0) -> Tuple[int, int]:
        """Book a block erase; returns its ``(start, end)`` interval."""
        self.erases += 1
        interval = self._book(OpKind.ERASE, self._slots.erase_ns, not_before)
        self._last_slow_op = _InFlightOp(OpKind.ERASE, *interval)
        return interval

    # ------------------------------------------------------------------
    def _book(self, kind: OpKind, duration: int, not_before: int) -> Tuple[int, int]:
        start = max(self.sim.now, self.free_at, not_before)
        end = start + duration
        self.free_at = end
        self.busy_ns += duration
        if self.observer is not None:
            self.observer(kind, start, end)
        return start, end

    def _suspendable_op(self, arrival: int) -> Optional[_InFlightOp]:
        """The slow op to suspend for a read arriving at ``arrival``.

        Suspension applies only when the slow operation is the *last*
        thing booked on the die (``free_at`` equals its end) — i.e. the
        read would otherwise wait directly behind it.  If other work is
        already queued behind the slow op, the read takes the FIFO path.
        """
        if not self.allow_suspend:
            return None
        slow = self._last_slow_op
        if slow is None:
            return None
        if slow.end != self.free_at:
            return None  # other ops queued behind; plain FIFO
        if not slow.start <= arrival < slow.end:
            return None  # not actually in flight at arrival
        if slow.suspends_used >= self._slots.max_suspends_per_op:
            return None
        return slow

    def _suspend_and_read(
        self, slow: _InFlightOp, arrival: int, read_ns: int
    ) -> Tuple[int, int]:
        slots = self._slots
        read_start = max(arrival + slots.suspend_ns, self._read_front)
        read_end = read_start + read_ns
        self._read_front = read_end
        # The slow op loses the window [arrival, read_end] and pays the
        # resume overhead on top.
        stolen = (read_end - arrival) + slots.resume_ns
        slow.end += stolen
        slow.suspends_used += 1
        self.free_at = slow.end
        self.busy_ns += read_ns + slots.suspend_ns + slots.resume_ns
        self.suspends += 1
        if self.observer is not None:
            self.observer(OpKind.READ, read_start, read_end)
        return read_start, read_end

    # ------------------------------------------------------------------
    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` this die spent busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)
