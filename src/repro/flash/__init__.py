"""Flash memory device models.

Geometry (channels / ways / dies / planes / blocks / pages), timing
presets for the 3D flash technologies in the paper's Table I, and a
per-die operation model that supports the program suspend/resume
mechanism of Z-NAND (Section II-A3).
"""

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import (
    BICS_3D,
    PLANAR_MLC,
    TABLE_I,
    V_NAND,
    Z_NAND,
    FlashTiming,
)
from repro.flash.chip import FlashDie, OpKind

__all__ = [
    "FlashGeometry",
    "FlashTiming",
    "FlashDie",
    "OpKind",
    "Z_NAND",
    "V_NAND",
    "BICS_3D",
    "PLANAR_MLC",
    "TABLE_I",
]
