"""Flash timing parameters and the Table I technology presets.

All latencies are integer nanoseconds.  The three 3D technologies come
straight from the paper's Table I (sourced from Cheong et al., ISSCC'18);
the planar-MLC preset models the flash inside the Intel 750 NVMe SSD the
paper uses as its comparison device.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, NamedTuple

US = 1_000  # ns per microsecond
MS = 1_000_000  # ns per millisecond


class TimingSlots(NamedTuple):
    """The per-op-class latency table a die resolves once at creation.

    Booking an operation used to walk ``die.timing.<field>`` attribute
    chains on every call; the slots tuple is the flat, resolved form the
    hot path reads instead (see :meth:`FlashTiming.slots`).
    """

    read_ns: int
    read_jitter: float
    program_ns: int
    program_jitter: float
    erase_ns: int
    suspend_ns: int
    resume_ns: int
    max_suspends_per_op: int


@dataclass(frozen=True)
class FlashTiming:
    """Per-die operation latencies and interface speed.

    ``bus_mbps`` is the channel interface throughput (MB/s) used to
    compute data-transfer time for a page moving over the channel.
    Suspend/resume overheads only matter when the die model is created
    with suspend support (Z-NAND).
    """

    name: str
    read_ns: int  # tR: cell array -> page register
    program_ns: int  # tPROG
    erase_ns: int  # tBERS
    bus_mbps: int  # channel interface throughput
    suspend_ns: int = 2 * US  # latency to park an in-flight program
    resume_ns: int = 2 * US  # latency to restore the parked program
    max_suspends_per_op: int = 4
    # Per-operation latency variation (word-line position, page type —
    # MLC lower/upper pages differ by ~2x): each read/program takes
    # ``base * (1 + U(-jitter, +jitter))``.
    read_jitter: float = 0.0
    program_jitter: float = 0.0
    # Table I bookkeeping (reporting only)
    layers: int = 0
    die_capacity_gbit: int = 0
    page_size: int = 0

    def __post_init__(self) -> None:
        if min(self.read_ns, self.program_ns, self.erase_ns) <= 0:
            raise ValueError("operation latencies must be positive")
        if self.bus_mbps <= 0:
            raise ValueError("bus throughput must be positive")
        # Transfer sizes are drawn from a handful of constants (unit and
        # physical page sizes), so the ns conversion is memoized.  Not a
        # dataclass field: caches carry no value of their own and stay
        # out of eq/repr/replace.
        object.__setattr__(self, "_transfer_cache", {})

    def transfer_ns(self, nbytes: int) -> int:
        """Time to move ``nbytes`` over the channel interface."""
        cache: Dict[int, int] = self._transfer_cache  # type: ignore[attr-defined]
        cached = cache.get(nbytes)
        if cached is not None:
            return cached
        if nbytes < 0:
            raise ValueError("negative transfer size")
        # MB/s == bytes/us; convert to ns.
        result = int(round(nbytes * 1_000 / self.bus_mbps))
        cache[nbytes] = result
        return result

    def slots(self) -> TimingSlots:
        """The resolved per-op-class latency table for this timing."""
        return TimingSlots(
            read_ns=self.read_ns,
            read_jitter=self.read_jitter,
            program_ns=self.program_ns,
            program_jitter=self.program_jitter,
            erase_ns=self.erase_ns,
            suspend_ns=self.suspend_ns,
            resume_ns=self.resume_ns,
            max_suspends_per_op=self.max_suspends_per_op,
        )

    def with_overrides(self, **kwargs: object) -> "FlashTiming":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)


# ----------------------------------------------------------------------
# Table I: "Analysis of 3D flash characteristics" + the planar MLC used
# by the Intel 750.
# ----------------------------------------------------------------------

Z_NAND = FlashTiming(
    name="Z-NAND",
    read_ns=3 * US,
    program_ns=100 * US,
    erase_ns=1 * MS,
    bus_mbps=1200,  # high-speed DDR interface (Section II-A1)
    suspend_ns=1 * US,
    resume_ns=1 * US,
    read_jitter=0.20,
    program_jitter=0.10,
    layers=48,
    die_capacity_gbit=64,
    page_size=2048,
)

V_NAND = FlashTiming(
    name="V-NAND",
    read_ns=60 * US,
    program_ns=700 * US,
    erase_ns=5 * MS,
    bus_mbps=800,
    layers=64,
    die_capacity_gbit=512,
    page_size=16384,
)

BICS_3D = FlashTiming(
    name="BiCS",
    read_ns=45 * US,
    program_ns=660 * US,
    erase_ns=5 * MS,
    bus_mbps=800,
    layers=48,
    die_capacity_gbit=256,
    page_size=16384,
)

# Intel 750-class planar MLC.  tR chosen so that a cache-missing 4 KB
# random read lands near the paper's observed 82.9 us device latency
# (tR + transfer + controller firmware time).
PLANAR_MLC = FlashTiming(
    name="planar-MLC",
    read_ns=70 * US,
    program_ns=1100 * US,
    erase_ns=6 * MS,
    bus_mbps=800,
    read_jitter=0.30,
    program_jitter=0.25,
    layers=1,
    die_capacity_gbit=128,
    page_size=16384,
)

TABLE_I = (BICS_3D, V_NAND, Z_NAND)
