"""Job specification — the subset of fio options the paper exercises.

The paper's fio setup (Section III-A): O_DIRECT (page cache bypassed —
our stacks never model one, matching that flag), libaio for async
queue-depth sweeps, pvsync2 for synchronous completion-method studies,
block sizes 4 KB-1 MB, queue depths 1-256.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class IoEngineKind(enum.Enum):
    """fio ``ioengine=`` values we model."""

    PSYNC = "pvsync2"  # synchronous preadv2/pwritev2
    LIBAIO = "libaio"  # Linux native AIO
    SPDK = "spdk"  # SPDK fio_plugin (always synchronous QD1 here)


@dataclass(frozen=True)
class FioJob:
    """One benchmark job."""

    name: str
    rw: str = "randread"
    block_size: int = 4096
    iodepth: int = 1
    engine: IoEngineKind = IoEngineKind.PSYNC
    io_count: int = 1000
    write_fraction: float = 0.5  # only for rw/randrw
    seed: int = 1234
    region_bytes: Optional[int] = None  # None = whole device
    capture_timeseries: bool = False  # keep (t, latency) pairs (Fig. 7b)
    capture_trace: bool = False  # keep one TraceEntry per I/O

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.block_size % 512:
            raise ValueError("block size must be a positive multiple of 512")
        if self.iodepth < 1:
            raise ValueError("iodepth must be >= 1")
        if self.io_count < 1:
            raise ValueError("io_count must be >= 1")
        if self.engine in (IoEngineKind.PSYNC, IoEngineKind.SPDK) and self.iodepth != 1:
            raise ValueError(f"{self.engine.value} is synchronous: iodepth must be 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")

    @property
    def total_bytes(self) -> int:
        return self.block_size * self.io_count
