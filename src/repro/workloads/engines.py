"""I/O engines: how a job's I/Os are issued and completed.

* :class:`SyncJobEngine` — pvsync2 / SPDK-plugin style: one I/O at a
  time through a stack's ``sync_io`` process (queue depth 1).
* :class:`AsyncJobEngine` — libaio style: keeps ``iodepth`` commands in
  flight over a :class:`~repro.kstack.stack.KernelStack`, completing
  through the interrupt path (how the paper runs its queue-depth and
  bandwidth sweeps).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.obs.registry import NULL_REGISTRY
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.ssd.device import IoOp
from repro.stats.latency import LatencyRecorder
from repro.stats.timeseries import TimeSeries
from repro.workloads.job import FioJob
from repro.workloads.patterns import AccessPattern
from repro.workloads.trace import TraceRecorder

if TYPE_CHECKING:
    from repro.kstack.driver import DriverRequest
    from repro.obs.core import Observability


class MetricsCollector:
    """Per-direction latency recorders plus an optional time series.

    When an :class:`~repro.obs.core.Observability` bundle is supplied its
    registry additionally receives the workload-level instruments
    (``io.latency_us``, ``io.reads`` / ``io.writes``, ``io.bytes``);
    without one the instruments are shared no-ops.
    """

    def __init__(
        self,
        *,
        capture_timeseries: bool = False,
        capture_trace: bool = False,
        obs: "Optional[Observability]" = None,
    ) -> None:
        self.all = LatencyRecorder("all")
        self.reads = LatencyRecorder("reads")
        self.writes = LatencyRecorder("writes")
        self.series: Optional[TimeSeries] = (
            TimeSeries("latency") if capture_timeseries else None
        )
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder() if capture_trace else None
        )
        self.bytes_done = 0
        registry = obs.registry if obs is not None else NULL_REGISTRY
        self._m_latency = registry.histogram(
            "io.latency_us", unit="us", help="application-observed I/O latency"
        )
        self._m_reads = registry.counter("io.reads", help="read I/Os completed")
        self._m_writes = registry.counter("io.writes", help="write I/Os completed")
        self._m_bytes = registry.counter(
            "io.bytes", unit="B", help="payload bytes transferred"
        )

    def record(
        self,
        op: IoOp,
        latency_ns: float,
        now_ns: int,
        nbytes: int,
        offset: int = 0,
    ) -> None:
        self.all.record(latency_ns)
        if op is IoOp.READ:
            self.reads.record(latency_ns)
            self._m_reads.inc()
        else:
            self.writes.record(latency_ns)
            self._m_writes.inc()
        self._m_latency.observe(latency_ns / 1000.0)
        self._m_bytes.inc(nbytes)
        if self.series is not None:
            self.series.record(now_ns, latency_ns)
        if self.trace is not None:
            self.trace.record(
                op, offset, nbytes, int(now_ns - latency_ns), now_ns
            )
        self.bytes_done += nbytes


class SyncJobEngine:
    """Queue-depth-1 synchronous issue loop."""

    def __init__(
        self,
        sim: Simulator,
        stack: Any,
        job: FioJob,
        pattern: AccessPattern,
        metrics: MetricsCollector,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.job = job
        self.pattern = pattern
        self.metrics = metrics

    def run(self) -> Generator[Event, Any, None]:
        """Process: issue every I/O back-to-back."""
        block_size = self.job.block_size
        for op, offset in self.pattern.take(self.job.io_count):
            latency = yield from self.stack.sync_io(op, offset, block_size)
            self.metrics.record(op, latency, self.sim.now, block_size, offset)


class AsyncJobEngine:
    """libaio-style windowed issue loop over a kernel stack."""

    def __init__(
        self,
        sim: Simulator,
        stack: Any,
        job: FioJob,
        pattern: AccessPattern,
        metrics: MetricsCollector,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.job = job
        self.pattern = pattern
        self.metrics = metrics
        self._inflight = 0
        self._completed = 0
        self._slot_waiter: Optional[Event] = None
        self._drained: Optional[Event] = None

    def run(self) -> Generator[Event, Any, None]:
        """Process: keep ``iodepth`` I/Os outstanding until done."""
        job = self.job
        for _ in range(job.io_count):
            while self._inflight >= job.iodepth:
                self._slot_waiter = Event(self.sim)
                yield self._slot_waiter
            op, offset = self.pattern.next_io()
            issued_at = self.sim.now
            request = yield from self.stack.submit_async(op, offset, job.block_size)
            self._inflight += 1
            request.pending.cqe_event.add_callback(
                lambda _event, req=request, t0=issued_at, op=op, off=offset: (
                    self._on_cqe(req, t0, op, off)
                )
            )
        if self._completed < job.io_count:
            self._drained = Event(self.sim)
            yield self._drained

    # ------------------------------------------------------------------
    def _on_cqe(
        self, request: "DriverRequest", issued_at: int, op: IoOp, offset: int
    ) -> None:
        trace = getattr(request.pending, "trace", None)
        if trace is not None:
            trace.phase("completion_isr", self.sim.now)
        delay = self.stack.async_completion_ns()
        self.sim.schedule(delay, self._finish, request, issued_at, op, offset)

    def _finish(
        self, request: "DriverRequest", issued_at: int, op: IoOp, offset: int
    ) -> None:
        self.stack.complete_async(request)
        trace = getattr(request.pending, "trace", None)
        if trace is not None:
            trace.finish(self.sim.now)
        self.metrics.record(
            op, self.sim.now - issued_at, self.sim.now, self.job.block_size, offset
        )
        self._inflight -= 1
        self._completed += 1
        if self._slot_waiter is not None and not self._slot_waiter.triggered:
            self._slot_waiter.succeed()
        if (
            self._drained is not None
            and not self._drained.triggered
            and self._completed >= self.job.io_count
        ):
            self._drained.succeed()
