"""Parse fio job files into :class:`~repro.workloads.job.FioJob` specs.

The paper's workloads are all fio invocations; this front end lets the
simulator run (the supported subset of) real fio job files unchanged:

    [global]
    rw=randread
    bs=4k
    ioengine=libaio
    iodepth=16

    [job1]
    number_ios=10000

Supported keys: ``rw``, ``bs``/``blocksize``, ``iodepth``, ``ioengine``
(``pvsync2``/``psync``/``sync`` -> sync, ``libaio``, ``spdk``),
``number_ios``/``loops``-free sizing via ``size``, ``rwmixwrite``/
``rwmixread``, ``numjobs``, ``randseed``, ``direct`` (accepted and
ignored — the simulated stacks never have a page cache, matching
O_DIRECT), ``name``.  Unknown keys raise, so a silently-unsupported
option can't skew an experiment.
"""

from __future__ import annotations

import configparser
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workloads.job import FioJob, IoEngineKind

#: Keys accepted but without simulation effect (documented no-ops).
IGNORED_KEYS = frozenset(
    {"direct", "filename", "group_reporting", "time_based", "thread"}
)

_SIZE_RE = re.compile(r"^(\d+)([kKmMgG]?)[bB]?$")
_SIZE_MULT = {"": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30}

_ENGINE_OF = {
    "pvsync2": IoEngineKind.PSYNC,
    "psync": IoEngineKind.PSYNC,
    "sync": IoEngineKind.PSYNC,
    "libaio": IoEngineKind.LIBAIO,
    "spdk": IoEngineKind.SPDK,
}


class FioFileError(ValueError):
    """A job file could not be interpreted."""


def parse_size(text: str) -> int:
    """``4k`` -> 4096, ``1m`` -> 1048576, plain numbers pass through."""
    match = _SIZE_RE.match(text.strip())
    if not match:
        raise FioFileError(f"unparseable size: {text!r}")
    value, suffix = match.groups()
    return int(value) * _SIZE_MULT[suffix.lower()]


@dataclass
class _Options:
    """Accumulated option state (global + per-job overrides)."""

    values: Dict[str, str]

    def updated(self, overrides: Dict[str, str]) -> "_Options":
        merged = dict(self.values)
        merged.update(overrides)
        return _Options(merged)

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.values.get(key, default)


def _build_job(name: str, options: _Options) -> FioJob:
    unknown = (
        set(options.values)
        - {
            "rw", "readwrite", "bs", "blocksize", "iodepth", "ioengine",
            "number_ios", "size", "rwmixwrite", "rwmixread", "numjobs",
            "randseed", "name",
        }
        - IGNORED_KEYS
    )
    if unknown:
        raise FioFileError(f"unsupported fio option(s): {sorted(unknown)}")

    rw = options.get("rw") or options.get("readwrite") or "read"
    block_size = parse_size(options.get("bs") or options.get("blocksize") or "4k")
    engine_name = (options.get("ioengine") or "pvsync2").lower()
    try:
        engine = _ENGINE_OF[engine_name]
    except KeyError:
        raise FioFileError(f"unsupported ioengine: {engine_name!r}") from None
    iodepth = int(options.get("iodepth") or 1)
    if engine in (IoEngineKind.PSYNC, IoEngineKind.SPDK):
        iodepth = 1  # fio ignores iodepth for sync engines

    if options.get("number_ios"):
        io_count = int(options.get("number_ios"))
    elif options.get("size"):
        io_count = max(1, parse_size(options.get("size")) // block_size)
    else:
        raise FioFileError(f"job {name!r} needs number_ios= or size=")

    if options.get("rwmixwrite"):
        write_fraction = int(options.get("rwmixwrite")) / 100.0
    elif options.get("rwmixread"):
        write_fraction = 1.0 - int(options.get("rwmixread")) / 100.0
    else:
        write_fraction = 0.5

    return FioJob(
        name=options.get("name") or name,
        rw=rw,
        block_size=block_size,
        iodepth=iodepth,
        engine=engine,
        io_count=io_count,
        write_fraction=write_fraction,
        seed=int(options.get("randseed") or 1234),
    )


def parse_fio_file(text: str) -> List[FioJob]:
    """Parse job-file text; returns one FioJob per job section (times
    ``numjobs``)."""
    parser = configparser.ConfigParser(
        delimiters=("=",), interpolation=None, strict=False,
        allow_no_value=True,
    )
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise FioFileError(f"bad job file: {exc}") from exc
    sections = parser.sections()
    if not sections:
        raise FioFileError("job file defines no sections")
    global_options = _Options(
        dict(parser.items("global")) if "global" in sections else {}
    )
    jobs: List[FioJob] = []
    for section in sections:
        if section == "global":
            continue
        options = global_options.updated(dict(parser.items(section)))
        replicas = int(options.get("numjobs") or 1)
        base = _build_job(section, options)
        for replica in range(replicas):
            if replica == 0:
                jobs.append(base)
            else:
                from dataclasses import replace

                jobs.append(
                    replace(
                        base,
                        name=f"{base.name}.{replica}",
                        seed=base.seed + replica,
                    )
                )
    if not jobs:
        raise FioFileError("job file defines no jobs (only [global])")
    return jobs


def load_fio_file(path: str) -> List[FioJob]:
    """Parse a job file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_fio_file(handle.read())
