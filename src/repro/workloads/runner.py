"""Run a job against a stack and collect every metric the paper reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Tuple

from repro.host.accounting import CpuAccounting, ExecMode
from repro.sim.engine import Simulator
from repro.stats.latency import LatencySummary
from repro.stats.timeseries import TimeSeries
from repro.workloads.trace import TraceRecorder
from repro.workloads.engines import AsyncJobEngine, MetricsCollector, SyncJobEngine
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.patterns import make_pattern

if TYPE_CHECKING:
    from repro.obs.anatomy import AnatomyReport


@dataclass(frozen=True)
class JobResult:
    """Everything measured while a job ran."""

    job: FioJob
    latency: LatencySummary
    read_latency: LatencySummary
    write_latency: LatencySummary
    duration_ns: int
    bytes_done: int
    timeseries: Optional[TimeSeries]
    trace: Optional[TraceRecorder]
    accounting: Optional[CpuAccounting]
    avg_power_w: Optional[float]
    #: The observability bundle active during the run (span tracer +
    #: metrics registry), or ``None`` when tracing was disabled.
    obs: Optional[object] = None

    @property
    def bandwidth_mbps(self) -> float:
        """Throughput in MB/s (10^6 bytes per second)."""
        if self.duration_ns <= 0:
            return 0.0
        return self.bytes_done * 1_000 / self.duration_ns

    @property
    def iops(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.latency.count * 1e9 / self.duration_ns

    def cpu_utilization(self, mode: Optional[ExecMode] = None) -> float:
        if self.accounting is None:
            return 0.0
        return self.accounting.utilization(self.duration_ns, mode)

    def anatomy(self, op: Optional[str] = None) -> "Optional[AnatomyReport]":
        """Latency-anatomy breakdown of the traced I/Os, or ``None``.

        Requires the job to have run with tracing enabled (an installed
        :class:`~repro.obs.core.Observability`); ``op`` filters to
        ``"read"`` / ``"write"``.
        """
        if self.obs is None or not getattr(self.obs, "enabled", False):
            return None
        from repro.obs.anatomy import AnatomyReport

        return AnatomyReport.from_tracer(self.obs.tracer, op=op)


def run_jobs(
    sim: Simulator,
    pairs: Iterable[Tuple[Any, FioJob]],
    *,
    region_offset: int = 0,
) -> List[JobResult]:
    """Run several (stack, job) pairs *concurrently* on one simulator.

    This is fio's ``numjobs`` semantics: every job hammers the same
    device at the same time, each from its own stack (its own core and
    queue pair).  Returns one :class:`JobResult` per pair, in order.
    """
    obs = sim.obs if getattr(sim.obs, "enabled", False) else None
    prepared: List[Tuple[Any, FioJob, MetricsCollector, Any]] = []
    for stack, job in pairs:
        device = stack.device
        region = job.region_bytes or (device.capacity_bytes - region_offset)
        pattern = make_pattern(
            job.rw,
            job.block_size,
            region,
            write_fraction=job.write_fraction,
            seed=job.seed,
            region_offset=region_offset,
        )
        metrics = MetricsCollector(
            capture_timeseries=job.capture_timeseries,
            capture_trace=job.capture_trace,
            obs=obs,
        )
        if job.engine is IoEngineKind.LIBAIO:
            engine = AsyncJobEngine(sim, stack, job, pattern, metrics)
        else:
            engine = SyncJobEngine(sim, stack, job, pattern, metrics)
        prepared.append((stack, job, metrics, engine))
    started = sim.now
    processes = [sim.process(engine.run()) for _, _, _, engine in prepared]
    for process in processes:
        sim.run_until_event(process)
        if not process.triggered:
            raise RuntimeError("concurrent job did not finish (deadlock?)")
    results: List[JobResult] = []
    for stack, job, metrics, _engine in prepared:
        device = stack.device
        power = getattr(device, "power", None)
        results.append(
            JobResult(
                job=job,
                latency=metrics.all.summary(),
                read_latency=metrics.reads.summary(),
                write_latency=metrics.writes.summary(),
                duration_ns=sim.now - started,
                bytes_done=metrics.bytes_done,
                timeseries=metrics.series,
                trace=metrics.trace,
                accounting=getattr(stack, "accounting", None),
                avg_power_w=(
                    power.average_watts(sim.now) if power is not None else None
                ),
                obs=obs,
            )
        )
    return results


def run_job(
    sim: Simulator,
    stack: Any,
    job: FioJob,
    *,
    region_offset: int = 0,
) -> JobResult:
    """Execute ``job`` on ``stack`` and summarize the run.

    ``stack`` must expose ``sync_io`` (psync/SPDK jobs) or the async trio
    ``submit_async`` / ``async_completion_ns`` / ``complete_async``
    (libaio jobs), plus ``device`` for capacity discovery.
    """
    device = stack.device
    region = job.region_bytes or (device.capacity_bytes - region_offset)
    pattern = make_pattern(
        job.rw,
        job.block_size,
        region,
        write_fraction=job.write_fraction,
        seed=job.seed,
        region_offset=region_offset,
    )
    obs = sim.obs if getattr(sim.obs, "enabled", False) else None
    metrics = MetricsCollector(
        capture_timeseries=job.capture_timeseries,
        capture_trace=job.capture_trace,
        obs=obs,
    )
    if job.engine is IoEngineKind.LIBAIO:
        engine = AsyncJobEngine(sim, stack, job, pattern, metrics)
    else:
        engine = SyncJobEngine(sim, stack, job, pattern, metrics)
    started = sim.now
    process = sim.process(engine.run())
    sim.run_until_event(process)
    if not process.triggered:
        raise RuntimeError(f"job {job.name!r} did not finish (deadlock?)")
    duration = sim.now - started
    accounting = getattr(stack, "accounting", None)
    power = getattr(device, "power", None)
    return JobResult(
        job=job,
        latency=metrics.all.summary(),
        read_latency=metrics.reads.summary(),
        write_latency=metrics.writes.summary(),
        duration_ns=duration,
        bytes_done=metrics.bytes_done,
        timeseries=metrics.series,
        trace=metrics.trace,
        accounting=accounting,
        avg_power_w=power.average_watts(sim.now) if power is not None else None,
        obs=obs,
    )
