"""Per-I/O trace recording and analysis.

fio can emit per-I/O logs (``write_lat_log``); this is the simulated
equivalent: a :class:`TraceRecorder` captures one :class:`TraceEntry`
per completed I/O, and the analysis helpers slice the trace the way the
paper's figures do (per direction, over time, tail inspection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.ssd.device import IoOp
from repro.stats.latency import LatencyRecorder, LatencySummary


@dataclass(frozen=True)
class TraceEntry:
    """One completed I/O."""

    index: int
    op: IoOp
    offset: int
    nbytes: int
    submit_ns: int
    complete_ns: int

    @property
    def latency_ns(self) -> int:
        return self.complete_ns - self.submit_ns


class TraceRecorder:
    """Ordered record of every completed I/O in a run."""

    def __init__(self) -> None:
        self._entries: List[TraceEntry] = []

    def record(
        self, op: IoOp, offset: int, nbytes: int, submit_ns: int, complete_ns: int
    ) -> TraceEntry:
        if complete_ns < submit_ns:
            raise ValueError("completion before submission")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive: {nbytes}")
        entry = TraceEntry(
            index=len(self._entries),
            op=op,
            offset=offset,
            nbytes=nbytes,
            submit_ns=submit_ns,
            complete_ns=complete_ns,
        )
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    # ------------------------------------------------------------------
    def filter(self, op: Optional[IoOp] = None) -> List[TraceEntry]:
        """Entries of one direction (or all)."""
        if op is None:
            return list(self._entries)
        return [entry for entry in self._entries if entry.op is op]

    def summary(self, op: Optional[IoOp] = None) -> LatencySummary:
        recorder = LatencyRecorder()
        for entry in self.filter(op):
            recorder.record(entry.latency_ns)
        return recorder.summary()

    def slowest(self, count: int = 10) -> List[TraceEntry]:
        """The worst I/Os — what a tail investigation looks at first."""
        return sorted(
            self._entries, key=lambda entry: entry.latency_ns, reverse=True
        )[:count]

    def outstanding_at(self, t_ns: int) -> int:
        """How many I/Os were in flight at ``t_ns`` (queue-depth probe)."""
        return sum(
            1
            for entry in self._entries
            if entry.submit_ns <= t_ns < entry.complete_ns
        )

    def throughput_mbps(self) -> float:
        """Aggregate throughput over the traced span."""
        if not self._entries:
            return 0.0
        span = max(e.complete_ns for e in self._entries) - min(
            e.submit_ns for e in self._entries
        )
        if span <= 0:
            return 0.0
        return sum(e.nbytes for e in self._entries) * 1_000 / span

    def interarrival_ns(self) -> np.ndarray:
        """Submission inter-arrival gaps (burstiness analysis)."""
        submits = np.asarray(
            sorted(entry.submit_ns for entry in self._entries), dtype=np.int64
        )
        if len(submits) < 2:
            return np.empty(0, dtype=np.int64)
        return np.diff(submits)

    # ------------------------------------------------------------------
    def to_fio_log(self) -> str:
        """Render in fio's ``lat.log`` format: ``time_ms, latency_ns,
        direction, block_size``."""
        direction = {IoOp.READ: 0, IoOp.WRITE: 1, IoOp.TRIM: 2}
        lines = [
            f"{entry.complete_ns // 1_000_000}, {entry.latency_ns}, "
            f"{direction[entry.op]}, {entry.nbytes}"
            for entry in self._entries
        ]
        return "\n".join(lines)
