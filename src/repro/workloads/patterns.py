"""Access pattern generation (fio's ``rw=`` parameter).

Patterns yield ``(op, offset)`` pairs deterministically from a seed, so
every experiment is reproducible.  Offsets are block-aligned and wrap
inside the target region.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.ssd.device import IoOp

#: fio rw= values we understand.
RW_MODES = ("read", "write", "randread", "randwrite", "rw", "randrw")


class AccessPattern:
    """Deterministic stream of ``(op, offset)`` pairs."""

    def __init__(
        self,
        rw: str,
        block_size: int,
        region_bytes: int,
        *,
        write_fraction: float = 0.5,
        seed: int = 1234,
        region_offset: int = 0,
        hotspot_fraction: float = 0.0,
        hotspot_weight: float = 0.0,
    ) -> None:
        if rw not in RW_MODES:
            raise ValueError(f"unknown rw mode {rw!r}; expected one of {RW_MODES}")
        if block_size <= 0 or region_bytes < block_size:
            raise ValueError("region must hold at least one block")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 <= hotspot_fraction < 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1)")
        if not 0.0 <= hotspot_weight <= 1.0:
            raise ValueError("hotspot_weight must be in [0, 1]")
        if (hotspot_fraction > 0.0) != (hotspot_weight > 0.0):
            raise ValueError(
                "hotspot_fraction and hotspot_weight must be set together"
            )
        self.rw = rw
        self.block_size = block_size
        self.region_offset = region_offset
        self.blocks = region_bytes // block_size
        self.write_fraction = write_fraction
        # Skew: ``hotspot_weight`` of random accesses land in the first
        # ``hotspot_fraction`` of the region (the classic 80/20 shape
        # used for hot/cold GC studies).
        self.hotspot_fraction = hotspot_fraction
        self.hotspot_weight = hotspot_weight
        self._hot_blocks = max(1, int(self.blocks * hotspot_fraction))
        self._rng = np.random.default_rng(seed)
        self._cursor = 0

    # ------------------------------------------------------------------
    @property
    def is_random(self) -> bool:
        return self.rw.startswith("rand")

    @property
    def is_mixed(self) -> bool:
        return self.rw in ("rw", "randrw")

    def _next_offset(self) -> int:
        if self.is_random:
            if self.hotspot_weight > 0.0:
                if self._rng.random() < self.hotspot_weight:
                    block = int(self._rng.integers(0, self._hot_blocks))
                elif self._hot_blocks < self.blocks:
                    block = int(self._rng.integers(self._hot_blocks, self.blocks))
                else:
                    block = int(self._rng.integers(0, self.blocks))
            else:
                block = int(self._rng.integers(0, self.blocks))
        else:
            block = self._cursor
            self._cursor = (self._cursor + 1) % self.blocks
        return self.region_offset + block * self.block_size

    def _next_op(self) -> IoOp:
        if self.is_mixed:
            return (
                IoOp.WRITE
                if self._rng.random() < self.write_fraction
                else IoOp.READ
            )
        return IoOp.WRITE if "write" in self.rw else IoOp.READ

    def next_io(self) -> Tuple[IoOp, int]:
        """The next ``(op, offset)`` in the stream."""
        return self._next_op(), self._next_offset()

    def take(self, count: int) -> Iterator[Tuple[IoOp, int]]:
        """Yield the next ``count`` I/Os."""
        for _ in range(count):
            yield self.next_io()


def make_pattern(
    rw: str,
    block_size: int,
    region_bytes: int,
    *,
    write_fraction: float = 0.5,
    seed: int = 1234,
    region_offset: int = 0,
    hotspot_fraction: float = 0.0,
    hotspot_weight: float = 0.0,
) -> AccessPattern:
    """Convenience constructor mirroring a fio job's pattern options."""
    return AccessPattern(
        rw,
        block_size,
        region_bytes,
        write_fraction=write_fraction,
        seed=seed,
        region_offset=region_offset,
        hotspot_fraction=hotspot_fraction,
        hotspot_weight=hotspot_weight,
    )
