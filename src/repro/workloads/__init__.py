"""fio-like workload generation and execution.

A :class:`FioJob` describes what the paper's fio invocations describe:
access pattern (``rw=``), block size, queue depth, I/O engine (sync
pvsync2 vs. async libaio), mix fraction, and I/O count.  The runner
drives a storage stack with it and collects latency, bandwidth, CPU,
and instruction metrics.
"""

from repro.workloads.patterns import AccessPattern, make_pattern
from repro.workloads.job import FioJob
from repro.workloads.engines import AsyncJobEngine, SyncJobEngine
from repro.workloads.runner import JobResult, run_job

__all__ = [
    "AccessPattern",
    "make_pattern",
    "FioJob",
    "SyncJobEngine",
    "AsyncJobEngine",
    "JobResult",
    "run_job",
]
