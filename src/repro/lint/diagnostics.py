"""Diagnostics: what simlint reports.

A :class:`Diagnostic` is one finding — a rule code, a location, and a
message.  Diagnostics sort by (path, line, col, code) so output order is
stable across runs regardless of rule-execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Diagnostic:
    """One simlint finding at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def format(self) -> str:
        """Render as ``path:line:col: CODE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One ``# simlint: disable=...`` comment found in a file.

    ``codes`` is ``None`` for ``disable=all``; ``target_line`` is the line
    the suppression applies to (the comment's own line for same-line
    ``disable``, the following line for ``disable-next-line``).  The engine
    marks a suppression ``used`` when it absorbs at least one diagnostic;
    unused suppressions are themselves findings (``SIM008``), as are
    suppressions with no reason string (``SIM007``).
    """

    line: int
    target_line: int
    codes: Any  # Optional[FrozenSet[str]]; None means "all codes"
    reason: str
    used: bool = False

    def matches(self, diag: Diagnostic) -> bool:
        if diag.line != self.target_line:
            return False
        return self.codes is None or diag.code in self.codes
