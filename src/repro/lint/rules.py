"""The simlint rule pack: determinism & invariant checks for the sim stack.

Every rule targets a way the testbed's bit-identical-rerun guarantee has
actually been (or could be) broken:

* ``SIM001`` — wall-clock reads inside simulation layers.  Sim code must
  derive every timestamp from ``Simulator.now``; a ``time.time()`` call in
  an ``ssd``/``ftl``/... module leaks host time into results.
* ``SIM002`` — global-state RNG (``random.random()``, ``numpy.random.seed``).
  All randomness must flow from seeded per-layer generators
  (``np.random.default_rng(seed)``, ``random.Random(seed)``) so streams
  are independent and reproducible.
* ``SIM003`` — iteration over ``set``/``frozenset`` (or dicts built from
  them) where order reaches output: Python set order varies with hash
  randomization, silently breaking byte-identity of exports and cache keys.
* ``SIM004`` — float accumulation over unordered containers: float addition
  is not associative, so ``sum(a_set)`` can differ between runs even when
  the *elements* are identical.
* ``SIM005`` — mutable default arguments: shared mutable state across calls
  makes results depend on call history.
* ``SIM006`` — bare ``except:`` and swallowed exceptions (``except X: pass``):
  an event handler that eats an error turns a loud failure into a silent
  divergence between runs.
* ``SIM009`` — ad-hoc wall-time measurement: ``time.perf_counter`` /
  ``time.monotonic`` (and their ``_ns`` forms) anywhere outside the two
  sanctioned homes — the perf harness (:mod:`repro.perf`) and the
  self-profiler (:mod:`repro.obs.prof`).  Scattered timing drifts out of
  the regression gate; centralized timing stays comparable across runs.
  (Inside sim layers every wall-clock read is already SIM001.)

Engine-level codes (emitted by :mod:`repro.lint.engine`, not rules here):
``SIM000`` (file does not parse), ``SIM007`` (suppression comment without a
reason), ``SIM008`` (suppression that suppresses nothing).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic

# ----------------------------------------------------------------------
# Name resolution: map an AST call target to a canonical dotted name,
# following import aliases (`import numpy as np` -> np.random.seed is
# numpy.random.seed).  Only names rooted at an actual import count, so a
# local variable that happens to be called `random` is not a finding.
# ----------------------------------------------------------------------


class ImportMap:
    """Alias -> canonical dotted prefix, built from a module's imports."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative import: never a stdlib/numpy root
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name for ``node``, or None.

        Returns a name only when its root is an imported alias — calls on
        locals, attributes of ``self``, etc. resolve to ``None``.
        """
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, sep, rest = dotted.partition(".")
        if head not in self.aliases:
            return None
        resolved = self.aliases[head]
        return f"{resolved}.{rest}" if sep else resolved


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


# ----------------------------------------------------------------------
# Set-ish inference: is this expression (syntactically) an unordered
# container?  Covers literals, set()/frozenset() calls, set algebra, and
# one level of local-name / self-attribute assignment within the module.
# ----------------------------------------------------------------------

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


class SetishIndex:
    """Names and ``self.<attr>`` targets assigned set-valued expressions."""

    def __init__(self, tree: ast.AST) -> None:
        self.names: Set[str] = set()
        self.self_attrs: Set[str] = set()
        # Two passes so `a = set(); b = a` infers b on the second pass.
        for _ in range(2):
            for node in ast.walk(tree):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None or not self.is_setish(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.names.add(target.id)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.self_attrs.add(target.attr)

    def is_setish(self, node: ast.expr) -> bool:
        """True when ``node`` syntactically evaluates to a set/frozenset."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_setish(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_setish(node.left) or self.is_setish(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_setish(node.body) and self.is_setish(node.orelse)
        if isinstance(node, ast.Name):
            return node.id in self.names
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.self_attrs
        if isinstance(node, ast.Subscript):
            # e.g. self._closed[die] where self._closed holds sets: only
            # inferred when the *container* name was assigned a list/dict
            # of sets — too deep for syntax; handled by direct review.
            return False
        return False


# ----------------------------------------------------------------------
# Module context handed to every rule.
# ----------------------------------------------------------------------


class ModuleContext:
    """Everything a rule needs to check one parsed module."""

    def __init__(self, *, display: str, tree: ast.AST, is_sim_layer: bool) -> None:
        self.display = display
        self.tree = tree
        self.is_sim_layer = is_sim_layer
        self.imports = ImportMap(tree)
        self.setish = SetishIndex(tree)

    def diag(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        return Diagnostic(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


# ----------------------------------------------------------------------
# Rule registry.
# ----------------------------------------------------------------------


class Rule:
    """Base class: subclasses set ``code``/``name``/``summary`` and ``check``."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.code} {self.name}>"


RULES: Dict[str, Rule] = {}

#: Codes emitted by the engine itself rather than a rule below.
ENGINE_CODES: Dict[str, str] = {
    "SIM000": "file does not parse (syntax error)",
    "SIM007": "simlint suppression without a reason string",
    "SIM008": "simlint suppression that suppresses nothing",
}


def register(cls: type) -> type:
    rule = cls()
    if rule.code in RULES or rule.code in ENGINE_CODES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def _flow_rules() -> Dict[str, Tuple[str, str]]:
    """Metadata for the dataflow rule pack (SIM010-SIM014).

    Imported lazily: the flow package uses this module's ImportMap, so a
    top-level import here would be circular.
    """
    from repro.lint.flow.rules import FLOW_RULES

    return FLOW_RULES


def all_codes() -> List[str]:
    return sorted(set(RULES) | set(ENGINE_CODES) | set(_flow_rules()))


# ----------------------------------------------------------------------
# SIM001 — wall-clock reads inside simulation layers.
# ----------------------------------------------------------------------

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    code = "SIM001"
    name = "wall-clock-in-sim"
    summary = "wall-clock read inside a simulation layer"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if not ctx.is_sim_layer:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved in _WALL_CLOCK:
                yield ctx.diag(
                    node,
                    self.code,
                    f"{resolved}() in a sim layer: simulated code must "
                    "take time from the simulator clock (Simulator.now)",
                )


# ----------------------------------------------------------------------
# SIM002 — global-state RNG calls.
# ----------------------------------------------------------------------

_RANDOM_GLOBAL_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "binomialvariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
        "seed",
        "setstate",
    }
)

_NUMPY_GLOBAL_FNS = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "bytes",
        "get_state",
        "set_state",
    }
)


@register
class GlobalRngRule(Rule):
    code = "SIM002"
    name = "global-rng"
    summary = "global-state RNG call (unseeded / shared stream)"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved is None:
                continue
            hit = None
            if resolved.startswith("random."):
                fn = resolved[len("random."):]
                if fn in _RANDOM_GLOBAL_FNS:
                    hit = resolved
            elif resolved.startswith("numpy.random."):
                fn = resolved.rsplit(".", 1)[-1]
                if fn in _NUMPY_GLOBAL_FNS:
                    hit = resolved
            if hit is not None:
                yield ctx.diag(
                    node,
                    self.code,
                    f"{hit}() uses interpreter-global RNG state: derive "
                    "randomness from a seeded per-layer generator "
                    "(np.random.default_rng(seed) / random.Random(seed))",
                )


# ----------------------------------------------------------------------
# SIM003 — ordering hazards: iterating sets (or building dicts from them).
# ----------------------------------------------------------------------

# Call targets that materialize their argument's iteration order.
_ORDER_SENSITIVE_CALLS: Dict[str, Tuple[int, ...]] = {
    "list": (0,),
    "tuple": (0,),
    "iter": (0,),
    "next": (0,),
    "enumerate": (0,),
    "zip": (0, 1, 2, 3),
    "map": (1, 2, 3),
    "filter": (1,),
    "dict.fromkeys": (0,),
}

_FIX_HINT = "wrap in sorted() to pin a deterministic order"

# Reductions whose result does not depend on iteration order: a
# comprehension feeding these directly is not an ordering hazard.
# (``sum`` over floats IS order-dependent — that is SIM004's job.)
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"any", "all", "min", "max", "len", "set", "frozenset", "sorted"}
)


@register
class UnorderedIterationRule(Rule):
    code = "SIM003"
    name = "unordered-iteration"
    summary = "iteration order taken from a set/frozenset"

    def _exempt_comprehensions(self, ctx: ModuleContext) -> Set[int]:
        """ids of comprehension nodes consumed by order-insensitive calls."""
        exempt: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name is None and isinstance(node.func, ast.Name):
                name = node.func.id
            if name not in _ORDER_INSENSITIVE_CONSUMERS:
                continue
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    exempt.add(id(arg))
        return exempt

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        setish = ctx.setish.is_setish
        exempt = self._exempt_comprehensions(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and setish(node.iter):
                yield ctx.diag(
                    node.iter,
                    self.code,
                    "for-loop over a set: iteration order is not "
                    f"deterministic across runs; {_FIX_HINT}",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if id(node) in exempt:
                    continue
                kind = (
                    "dict built from a set"
                    if isinstance(node, ast.DictComp)
                    else "sequence built from a set"
                )
                for gen in node.generators:
                    if setish(gen.iter):
                        yield ctx.diag(
                            gen.iter,
                            self.code,
                            f"{kind}: element order is not deterministic "
                            f"across runs; {_FIX_HINT}",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Diagnostic]:
        setish = ctx.setish.is_setish
        func = node.func
        # "sep".join(S) — any .join whose argument is a set.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and setish(node.args[0])
        ):
            yield ctx.diag(
                node.args[0],
                self.code,
                f"str.join over a set: output order varies; {_FIX_HINT}",
            )
            return
        name = ctx.imports.resolve(func)
        if name is None and isinstance(func, ast.Name):
            name = func.id  # builtins are not imports
        if name is None and isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted == "dict.fromkeys":
                name = dotted
        positions = _ORDER_SENSITIVE_CALLS.get(name or "")
        if not positions:
            return
        for position in positions:
            if position < len(node.args) and setish(node.args[position]):
                yield ctx.diag(
                    node.args[position],
                    self.code,
                    f"{name}() materializes set iteration order, which is "
                    f"not deterministic across runs; {_FIX_HINT}",
                )


# ----------------------------------------------------------------------
# SIM004 — float accumulation over unordered containers.
# ----------------------------------------------------------------------

_FLOAT_ACCUMULATORS: Dict[str, int] = {
    "sum": 0,
    "math.fsum": 0,
    "statistics.mean": 0,
    "statistics.fmean": 0,
    "statistics.median": 0,
    "statistics.stdev": 0,
    "statistics.pstdev": 0,
}


@register
class FloatOverUnorderedRule(Rule):
    code = "SIM004"
    name = "float-accumulation-unordered"
    summary = "float reduction over an unordered container"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        setish = ctx.setish.is_setish
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name is None and isinstance(node.func, ast.Name):
                name = node.func.id
            if name not in _FLOAT_ACCUMULATORS:
                continue
            position = _FLOAT_ACCUMULATORS[name]
            if position >= len(node.args):
                continue
            arg = node.args[position]
            hazard = setish(arg) or (
                isinstance(arg, (ast.GeneratorExp, ast.ListComp))
                and any(setish(gen.iter) for gen in arg.generators)
            )
            if hazard:
                yield ctx.diag(
                    arg,
                    self.code,
                    f"{name}() over a set accumulates floats in hash order; "
                    "float addition is order-dependent — sort first "
                    "(sum(sorted(s)) or math.fsum(sorted(s)))",
                )


# ----------------------------------------------------------------------
# SIM005 — mutable default arguments.
# ----------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.Counter",
        "collections.deque",
        "collections.OrderedDict",
    }
)


@register
class MutableDefaultRule(Rule):
    code = "SIM005"
    name = "mutable-default"
    summary = "mutable default argument"

    def _is_mutable(self, ctx: ModuleContext, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = ctx.imports.resolve(node.func)
            if name is None and isinstance(node.func, ast.Name):
                name = node.func.id
            return name in _MUTABLE_FACTORIES
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults: Iterable[Optional[ast.expr]] = list(args.defaults) + list(
                args.kw_defaults
            )
            for default in defaults:
                if default is not None and self._is_mutable(ctx, default):
                    yield ctx.diag(
                        default,
                        self.code,
                        "mutable default argument is shared across calls, "
                        "making behavior depend on call history; default "
                        "to None and construct inside the function",
                    )


# ----------------------------------------------------------------------
# SIM006 — bare except / swallowed exceptions.
# ----------------------------------------------------------------------


def _swallows(body: List[ast.stmt]) -> bool:
    """True when a handler body does nothing (only pass/.../docstring)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


@register
class BareExceptRule(Rule):
    code = "SIM006"
    name = "bare-or-swallowed-except"
    summary = "bare except or silently swallowed exception"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diag(
                    node,
                    self.code,
                    "bare except catches SystemExit/KeyboardInterrupt too; "
                    "name the exceptions this handler is for",
                )
            elif _swallows(node.body):
                yield ctx.diag(
                    node,
                    self.code,
                    "exception swallowed (handler body does nothing): a "
                    "silent failure here becomes a silent divergence "
                    "between runs — handle, log, or use "
                    "contextlib.suppress at the call site",
                )


# ----------------------------------------------------------------------
# SIM009 — ad-hoc wall-time measurement outside its sanctioned homes.
# ----------------------------------------------------------------------

_MONOTONIC_CLOCKS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)


def _is_timing_home(display: str) -> bool:
    """True for the modules allowed to read monotonic clocks: anything
    under a ``perf`` package directory, and ``obs/prof.py``."""
    parts = display.replace("\\", "/").split("/")
    if "perf" in parts[:-1]:
        return True
    return parts[-1] == "prof.py" and "obs" in parts[:-1]


@register
class AdHocTimingRule(Rule):
    code = "SIM009"
    name = "adhoc-wall-timing"
    summary = "monotonic-clock read outside repro.perf / repro.obs.prof"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.is_sim_layer:
            return  # every wall-clock read there is already SIM001
        if _is_timing_home(ctx.display):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved in _MONOTONIC_CLOCKS:
                yield ctx.diag(
                    node,
                    self.code,
                    f"{resolved}() outside repro.perf / repro.obs.prof: "
                    "route wall-time measurement through the perf harness "
                    "(PerfSession) or the self-profiler so timing stays "
                    "in the regression gate",
                )


def rules_table() -> List[Tuple[str, str]]:
    """(code, summary) rows for every code simlint can emit."""
    rows = [(code, rule.summary) for code, rule in RULES.items()]
    rows.extend(ENGINE_CODES.items())
    rows.extend(
        (code, summary) for code, (_name, summary) in _flow_rules().items()
    )
    return sorted(rows)
