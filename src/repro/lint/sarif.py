"""SARIF 2.1.0 export for simlint findings.

SARIF (Static Analysis Results Interchange Format) is the schema code
hosts ingest for inline review annotations; ``python -m repro lint
--format sarif`` emits one run with the full rule table in
``tool.driver.rules`` and one ``result`` per diagnostic, so CI can
upload the file as an artifact (or to a code-scanning endpoint) without
any adapter glue.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.lint.engine import LintResult
from repro.lint.rules import rules_table

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Codes that indicate broken input rather than a style finding.
_ERROR_CODES = frozenset({"SIM000"})


def to_sarif(result: LintResult) -> Dict[str, Any]:
    """Render a :class:`LintResult` as a SARIF 2.1.0 document (dict)."""
    rules = [
        {
            "id": code,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {
                "level": "error" if code in _ERROR_CODES else "warning",
            },
        }
        for code, summary in rules_table()
    ]
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}

    results = []
    for diag in result.diagnostics:
        entry: Dict[str, Any] = {
            "ruleId": diag.code,
            "level": "error" if diag.code in _ERROR_CODES else "warning",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col,
                        },
                    }
                }
            ],
        }
        if diag.code in rule_index:
            entry["ruleIndex"] = rule_index[diag.code]
        results.append(entry)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "docs/lint.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
