"""Dimension tags: the lattice simflow infers over names and expressions.

A :class:`Dim` is a (kind, unit) pair:

* kind ``time``  — units ``ns``/``us``/``ms``/``s`` (sim clock is ns);
* kind ``size``  — units ``bytes``/``sectors``/``pages``/``blocks``;
* kind ``addr``  — units ``logical`` (lpn/lba) / ``physical`` (ppa/ppn/pba)
  / ``block`` (pba at block granularity folds into physical);
* ``DIMLESS``    — a bare number (literals, counts, ratios);
* ``UNKNOWN``    — no evidence either way.

The analysis is optimistic: ``UNKNOWN`` never participates in a finding,
and ``DIMLESS`` acts as a wildcard in arithmetic (``t_ns + 1`` is fine).
Only two *known, conflicting* tags produce a diagnostic, which is what
lets the pass run over the whole tree without drowning in noise.

Evidence sources, strongest first:

1. an annotation naming a :mod:`repro.units` alias (``Ns``, ``Bytes``,
   ``Lpn``, ...);
2. a name suffix convention (``*_ns``, ``*_bytes``, ``lpn``, ``prev_ppa``);
3. a blessed converter call (``us_to_ns(x)`` is ``ns`` whatever ``x`` was);
4. a literal-scale conversion idiom (``x_ns / 1_000`` is ``us``);
5. a callee's return summary (interprocedural, see ``callgraph``).

Rate names (``*_per_s``, ``*_mbps``, ``pages_per_block``) are deliberately
``UNKNOWN``: a rate is neither of its constituent units.
"""

from __future__ import annotations

from typing import NamedTuple, Optional


class Dim(NamedTuple):
    """One point of the dimension lattice."""

    kind: str  # "time" | "size" | "addr" | "none" | "unknown"
    unit: str

    @property
    def known(self) -> bool:
        return self.kind not in ("none", "unknown")

    def describe(self) -> str:
        if self.kind == "none":
            return "dimensionless"
        if self.kind == "unknown":
            return "unknown"
        if self.kind == "addr":
            return f"{self.unit} address"
        return f"{self.kind}:{self.unit}"


UNKNOWN = Dim("unknown", "")
DIMLESS = Dim("none", "")

TIME_NS = Dim("time", "ns")
TIME_US = Dim("time", "us")
TIME_MS = Dim("time", "ms")
TIME_S = Dim("time", "s")

SIZE_BYTES = Dim("size", "bytes")
SIZE_SECTORS = Dim("size", "sectors")
SIZE_PAGES = Dim("size", "pages")
SIZE_BLOCKS = Dim("size", "blocks")

ADDR_LOGICAL = Dim("addr", "logical")
ADDR_PHYSICAL = Dim("addr", "physical")

#: ns per unit — the scale ladder literal-conversion idioms move along.
TIME_SCALE_NS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}
_SCALE_TO_UNIT = {scale: unit for unit, scale in TIME_SCALE_NS.items()}

_TIME_SUFFIXES = {"ns": TIME_NS, "us": TIME_US, "ms": TIME_MS, "s": TIME_S}
_SIZE_SUFFIXES = {
    "bytes": SIZE_BYTES,
    "nbytes": SIZE_BYTES,
    "sectors": SIZE_SECTORS,
    "pages": SIZE_PAGES,
    "blocks": SIZE_BLOCKS,
}
#: Address-space vocabularies: host/FTL logical vs flash physical.
LOGICAL_ADDR_NAMES = frozenset({"lpn", "lba"})
PHYSICAL_ADDR_NAMES = frozenset({"ppa", "ppn", "pba"})

#: Annotation names (from repro.units) -> dim.  ``Count`` maps to
#: DIMLESS: an *explicitly declared* count, distinct from UNKNOWN.
ANNOTATION_DIMS = {
    "Count": DIMLESS,
    "Ns": TIME_NS,
    "Us": TIME_US,
    "Ms": TIME_MS,
    "Sec": TIME_S,
    "Bytes": SIZE_BYTES,
    "Sectors": SIZE_SECTORS,
    "Pages": SIZE_PAGES,
    "Blocks": SIZE_BLOCKS,
    "Lpn": ADDR_LOGICAL,
    "Lba": ADDR_LOGICAL,
    "Ppa": ADDR_PHYSICAL,
    "Ppn": ADDR_PHYSICAL,
    "Pba": ADDR_PHYSICAL,
}

#: Blessed converters (repro.units) -> (argument dim, result dim).
CONVERTER_SIGNATURES = {
    "us_to_ns": (TIME_US, TIME_NS),
    "ms_to_ns": (TIME_MS, TIME_NS),
    "s_to_ns": (TIME_S, TIME_NS),
    "ns_to_us": (TIME_NS, TIME_US),
    "ns_to_ms": (TIME_NS, TIME_MS),
    "ns_to_s": (TIME_NS, TIME_S),
    "bytes_to_pages": (SIZE_BYTES, SIZE_PAGES),
    "pages_to_bytes": (SIZE_PAGES, SIZE_BYTES),
    "bytes_to_sectors": (SIZE_BYTES, SIZE_SECTORS),
    "sectors_to_bytes": (SIZE_SECTORS, SIZE_BYTES),
}


def dim_of_name(name: str) -> Dim:
    """The dimension a bare identifier advertises through its suffix.

    The convention is segment-based: the *last* ``_``-separated segment
    carries the unit (``flush_coalesce_ns``, ``capacity_bytes``,
    ``victim_ppa``).  A whole identifier that IS an address word
    (``lpn``, ``ppa``) tags too, as does its plural (``lpns``).  Rates
    (``events_per_s``, ``bus_mbps``) and ``*_size`` names stay special:
    ``per`` disables the suffix, ``size`` means a byte quantity.
    """
    text = name.lower().strip("_")
    if not text:
        return UNKNOWN
    segments = text.split("_")
    last = segments[-1]
    # Rates: `events_per_s`, `pages_per_block` — neither unit.
    if len(segments) >= 2 and segments[-2] == "per":
        return UNKNOWN
    if last in _TIME_SUFFIXES:
        # A lone `s` variable (or `ns` used as a name) is too thin to tag
        # time; require a describing prefix for the one-letter second.
        if last == "s" and len(segments) < 2:
            return UNKNOWN
        return _TIME_SUFFIXES[last]
    if last in _SIZE_SUFFIXES:
        return _SIZE_SUFFIXES[last]
    if last == "size":
        # `page_size` / `sector_size` / `qd_size`? — geometry sizes in the
        # tree are byte quantities; queue sizes say `depth`.
        return SIZE_BYTES
    addr = last[:-1] if last.endswith("s") and len(last) == 4 else last
    if addr in LOGICAL_ADDR_NAMES:
        return ADDR_LOGICAL
    if addr in PHYSICAL_ADDR_NAMES:
        return ADDR_PHYSICAL
    return UNKNOWN


def join(a: Dim, b: Dim) -> Dim:
    """Least upper bound for control-flow merges: agree or know nothing."""
    if a == b:
        return a
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if a == DIMLESS:
        return b
    if b == DIMLESS:
        return a
    return UNKNOWN


def scaled_time_unit(unit: str, factor: float, *, multiply: bool) -> Optional[str]:
    """The time unit reached by scaling ``unit`` by a literal ``factor``.

    ``x_us * 1_000`` lands on ns (smaller unit, larger count);
    ``x_ns / 1_000`` lands on us.  Returns None when the factor does not
    land exactly on another rung of the ladder.
    """
    if factor <= 0 or unit not in TIME_SCALE_NS:
        return None
    scale = TIME_SCALE_NS[unit]
    target = scale / factor if multiply else scale * factor
    if target != int(target):
        return None
    return _SCALE_TO_UNIT.get(int(target))


def conflict_kind(a: Dim, b: Dim) -> Optional[str]:
    """Classify a pairing of two *known* dims: None when compatible,
    otherwise which rule family owns the mismatch.

    * ``"time"``  — both time, different units (SIM010);
    * ``"addr"``  — both addresses, different spaces (SIM012);
    * ``"cross"`` — time vs size, time vs addr, or two size units
      (SIM011).

    An address paired with a size is *compatible*: bounds checks
    (``lpn < logical_pages``) and pointer arithmetic (``lpn + pages``)
    are the idiom, not a bug.
    """
    if not (a.known and b.known):
        return None
    if a == b:
        return None
    if a.kind == "time" and b.kind == "time":
        return "time"
    if a.kind == "addr" and b.kind == "addr":
        return "addr"
    if {a.kind, b.kind} == {"addr", "size"}:
        return None
    return "cross"
