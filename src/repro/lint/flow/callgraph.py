"""Whole-package function index, call resolution, and dim summaries.

The interprocedural half of simflow: every function and method in the
linted file set gets a :class:`FunctionInfo` summary — per-parameter
dimension tags and a return tag — and call sites resolve to summaries so
an ``ns`` value flowing into a ``_us`` parameter two modules away is
still one diagnostic.

Resolution is deliberately conservative (wrong resolution would mean
wrong findings):

* bare names resolve within the defining module, then through the
  import map to another linted module;
* ``self.method()`` resolves in the enclosing class, then through base
  classes found by name in the project;
* ``Class(...)`` resolves to ``Class.__init__``;
* ``obj.method()`` on an arbitrary object resolves only when exactly one
  class in the whole file set defines that method name — otherwise the
  call is left unresolved and no argument check happens.

Return tags reach a fixed point in a few passes: a function whose return
expression is ``callee()`` picks up the callee's tag once it is known.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.rules import ImportMap, _dotted
from repro.lint.flow.cfg import FunctionNode, _SCOPE_NODES
from repro.lint.flow.dims import (
    ANNOTATION_DIMS,
    CONVERTER_SIGNATURES,
    Dim,
    UNKNOWN,
    dim_of_name,
    join,
)


class ModuleLike:
    """What the flow pass needs of one parsed module (duck-typed: the
    lint engine hands in its own parsed-module records)."""

    display: str
    tree: ast.AST
    is_sim_layer: bool


def module_dotted_name(display: str) -> str:
    """``src/repro/ftl/core.py`` -> ``repro.ftl.core`` (best effort)."""
    parts = display.replace("\\", "/").split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


class FunctionInfo:
    """Summary of one function/method: where it lives and what its
    parameters and return value are measured in."""

    __slots__ = (
        "node", "module", "qualname", "class_name", "base_names",
        "param_names", "param_dims", "return_dim", "declared_return",
        "is_method",
    )

    def __init__(
        self,
        node: FunctionNode,
        module: ModuleLike,
        imports: ImportMap,
        class_name: Optional[str] = None,
        base_names: Tuple[str, ...] = (),
    ) -> None:
        self.node = node
        self.module = module
        self.class_name = class_name
        self.base_names = base_names
        self.is_method = class_name is not None
        prefix = f"{class_name}." if class_name else ""
        self.qualname = f"{module.display}::{prefix}{node.name}"

        args = node.args
        ordered = list(args.posonlyargs) + list(args.args)
        self.param_names: List[str] = [a.arg for a in ordered]
        self.param_dims: Dict[str, Dim] = {}
        for arg in ordered + list(args.kwonlyargs):
            self.param_dims[arg.arg] = _param_dim(arg, imports)

        declared = annotation_dim(node.returns, imports)
        if not declared.known:
            declared = dim_of_name(node.name)
        self.declared_return = declared
        self.return_dim = declared

    def positional_param(self, index: int, *, bound: bool) -> Optional[str]:
        """Name of the parameter receiving positional arg ``index``;
        ``bound`` skips ``self``/``cls`` for method/constructor calls."""
        offset = 1 if bound and self.param_names[:1] in (["self"], ["cls"]) else 0
        position = index + offset
        if position < len(self.param_names):
            return self.param_names[position]
        return None


def _param_dim(arg: ast.arg, imports: ImportMap) -> Dim:
    annotated = annotation_dim(arg.annotation, imports)
    if annotated != UNKNOWN:
        # Known dims AND explicit DIMLESS (a `Count` annotation) both
        # override the name suffix.
        return annotated
    return dim_of_name(arg.arg)


def annotation_dim(annotation: Optional[ast.expr], imports: ImportMap) -> Dim:
    """Dim carried by an annotation naming a :mod:`repro.units` alias.

    Accepts ``Ns``, ``units.Ns``, a string annotation ``"Ns"``, and
    ``Optional[Ns]`` / ``Ns | None`` shapes.
    """
    if annotation is None:
        return UNKNOWN
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.rsplit(".", 1)[-1]
        return ANNOTATION_DIMS.get(name, UNKNOWN)
    if isinstance(annotation, ast.Subscript):
        # Optional[Ns] — the subscripted container decides nothing, look
        # at the first slice element.
        inner = annotation.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return annotation_dim(inner, imports)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = annotation_dim(annotation.left, imports)
        return left if left.known else annotation_dim(annotation.right, imports)
    dotted = _dotted(annotation)
    if dotted is None:
        return UNKNOWN
    name = dotted.rsplit(".", 1)[-1]
    if name not in ANNOTATION_DIMS:
        return UNKNOWN
    resolved = imports.resolve(annotation)
    if resolved is not None and not resolved.startswith("repro.units"):
        # It resolved to some *other* imported thing that happens to
        # collide with an alias name — don't tag.
        if resolved.rsplit(".", 1)[-1] != name or "." in resolved[: -len(name) - 1]:
            return UNKNOWN
    return ANNOTATION_DIMS[name]


class ClassInfo:
    __slots__ = ("name", "module", "base_names", "methods")

    def __init__(self, name: str, module: ModuleLike, base_names: Tuple[str, ...]):
        self.name = name
        self.module = module
        self.base_names = base_names
        self.methods: Dict[str, FunctionInfo] = {}


class Project:
    """Index over every linted module: functions, classes, imports."""

    def __init__(self, modules: Sequence[ModuleLike]) -> None:
        self.modules = list(modules)
        self.imports: Dict[str, ImportMap] = {}
        #: module display -> {function name -> info} (module level only)
        self.functions: Dict[str, Dict[str, FunctionInfo]] = {}
        #: module display -> {class name -> ClassInfo}
        self.classes: Dict[str, Dict[str, ClassInfo]] = {}
        #: dotted module name -> display (for import resolution)
        self.by_dotted: Dict[str, str] = {}
        #: method name -> [FunctionInfo] across every class (fallback)
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: every FunctionInfo, for the analysis driver
        self.all_functions: List[FunctionInfo] = []

        for module in self.modules:
            imports = ImportMap(module.tree)
            self.imports[module.display] = imports
            self.functions[module.display] = {}
            self.classes[module.display] = {}
            self.by_dotted[module_dotted_name(module.display)] = module.display
            body = getattr(module.tree, "body", [])
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(node, module, imports)
                    self.functions[module.display][node.name] = info
                    self.all_functions.append(info)
                elif isinstance(node, ast.ClassDef):
                    bases = tuple(
                        b for b in (_dotted(base) for base in node.bases)
                        if b is not None
                    )
                    cls = ClassInfo(node.name, module, bases)
                    self.classes[module.display][node.name] = cls
                    for item in node.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            info = FunctionInfo(
                                item, module, imports,
                                class_name=node.name, base_names=bases,
                            )
                            cls.methods[item.name] = info
                            self.all_functions.append(info)
                            self.methods_by_name.setdefault(
                                item.name, []
                            ).append(info)

    # -- lookup helpers ------------------------------------------------

    def class_in_module(self, display: str, name: str) -> Optional[ClassInfo]:
        return self.classes.get(display, {}).get(name)

    def resolve_class(self, display: str, name: str) -> Optional[ClassInfo]:
        """A class by (possibly dotted or imported) name, from ``display``."""
        simple = name.rsplit(".", 1)[-1]
        local = self.class_in_module(display, simple)
        if local is not None and "." not in name:
            return local
        imports = self.imports.get(display)
        if imports is not None:
            alias = name.split(".")[0]
            resolved = imports.aliases.get(alias)
            if resolved is not None:
                dotted = name.replace(alias, resolved, 1)
                module_part, _, cls_part = dotted.rpartition(".")
                target = self.by_dotted.get(module_part)
                if target is not None:
                    found = self.class_in_module(target, cls_part)
                    if found is not None:
                        return found
        return local

    def method_on_class(
        self, cls: ClassInfo, method: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Method lookup walking same-project base classes (depth-capped)."""
        found = cls.methods.get(method)
        if found is not None or _depth > 4:
            return found
        for base in cls.base_names:
            parent = self.resolve_class(cls.module.display, base)
            if parent is not None and parent is not cls:
                found = self.method_on_class(parent, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def unique_method(self, name: str) -> Optional[FunctionInfo]:
        candidates = self.methods_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


class CallTarget:
    """A resolved call: the callee summary plus binding details."""

    __slots__ = ("info", "bound", "converter")

    def __init__(
        self,
        info: Optional[FunctionInfo] = None,
        *,
        bound: bool = False,
        converter: Optional[Tuple[Dim, Dim]] = None,
    ) -> None:
        self.info = info
        self.bound = bound  # skip a leading self/cls when mapping args
        self.converter = converter  # (expected arg dim, result dim)


def resolve_call(
    project: Project,
    caller: FunctionInfo,
    call: ast.Call,
) -> Optional[CallTarget]:
    """Resolve ``call`` made from inside ``caller`` to a target, or None."""
    display = caller.module.display
    imports = project.imports[display]
    func = call.func

    if isinstance(func, ast.Name):
        name = func.id
        resolved = imports.resolve(func)
        # Blessed converter, imported from repro.units or bare.
        if (resolved or "").startswith("repro.units.") or (
            resolved is None and name in CONVERTER_SIGNATURES
        ):
            signature = CONVERTER_SIGNATURES.get(
                (resolved or name).rsplit(".", 1)[-1]
            )
            if signature is not None:
                return CallTarget(converter=signature)
        # Module-local function.
        local = project.functions[display].get(name)
        if local is not None and resolved is None:
            return CallTarget(local)
        # Module-local class -> constructor.
        cls = project.class_in_module(display, name)
        if cls is not None and resolved is None:
            init = project.method_on_class(cls, "__init__")
            if init is not None:
                return CallTarget(init, bound=True)
            return None
        # Imported function or class.
        if resolved is not None:
            return _resolve_dotted(project, resolved)
        return None

    if isinstance(func, ast.Attribute):
        # self.method() / cls.method()
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and caller.class_name is not None
        ):
            cls_info = project.class_in_module(display, caller.class_name)
            if cls_info is not None:
                method = project.method_on_class(cls_info, func.attr)
                if method is not None:
                    return CallTarget(method, bound=True)
            return None
        # module.func() / package.Class() through imports.
        resolved = imports.resolve(func)
        if resolved is not None:
            if resolved.startswith("repro.units."):
                signature = CONVERTER_SIGNATURES.get(resolved.rsplit(".", 1)[-1])
                if signature is not None:
                    return CallTarget(converter=signature)
            return _resolve_dotted(project, resolved)
        # obj.method(): only when the method name is project-unique.
        if not func.attr.startswith("__"):
            unique = project.unique_method(func.attr)
            if unique is not None:
                return CallTarget(unique, bound=True)
        return None

    return None


def _resolve_dotted(project: Project, dotted: str) -> Optional[CallTarget]:
    """``repro.ftl.core.PageMappedFtl`` or ``repro.flash.timing.func``."""
    module_part, _, leaf = dotted.rpartition(".")
    display = project.by_dotted.get(module_part)
    if display is None:
        return None
    fn = project.functions[display].get(leaf)
    if fn is not None:
        return CallTarget(fn)
    cls = project.class_in_module(display, leaf)
    if cls is not None:
        init = project.method_on_class(cls, "__init__")
        if init is not None:
            return CallTarget(init, bound=True)
    return None


# ----------------------------------------------------------------------
# Return-dim fixed point.
# ----------------------------------------------------------------------


def refine_return_dims(
    project: Project,
    infer_return: "callable",
    max_passes: int = 3,
) -> None:
    """Propagate return dims until stable: functions whose return tag is
    undeclared pick it up from their return expressions (which may in
    turn read callee summaries).  ``infer_return(info) -> Dim``."""
    for _ in range(max_passes):
        changed = False
        for info in project.all_functions:
            if info.declared_return.known:
                continue
            inferred = infer_return(info)
            if inferred.known and inferred != info.return_dim:
                info.return_dim = inferred
                changed = True
        if not changed:
            return


def return_exprs(fn: FunctionNode) -> List[ast.expr]:
    """Every expression returned from ``fn``'s own scope."""
    out: List[ast.expr] = []
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        if isinstance(node, ast.Return) and node.value is not None:
            out.append(node.value)
        stack.extend(ast.iter_child_nodes(node))
    return out


def merge_return_dim(dims: List[Dim]) -> Dim:
    known = [d for d in dims if d.known]
    if not known:
        return UNKNOWN
    result = known[0]
    for d in known[1:]:
        result = join(result, d)
    return result
