"""``repro.lint.flow`` — simflow, the interprocedural dataflow layer of
simlint.

Where the syntactic rules (SIM000-SIM009) look at one construct at a
time, simflow builds per-function control-flow graphs and a
whole-package call graph, infers a *dimension tag* for every value it
can (time in ns/us/ms/s, size in bytes/sectors/pages/blocks, logical vs
physical address), and checks that tags stay consistent across
arithmetic, comparisons, assignments, and — the interesting part —
function boundaries: an ``ns`` value passed to a ``_us`` parameter two
modules away is one SIM010 diagnostic.

Entry point: :func:`run_flow` (the engine calls it with its parsed
modules).  Rule metadata lives in :data:`FLOW_RULES`.
"""

from repro.lint.flow.callgraph import (
    CallTarget,
    FunctionInfo,
    ModuleLike,
    Project,
    annotation_dim,
    resolve_call,
)
from repro.lint.flow.cfg import Cfg, build_cfg, is_generator
from repro.lint.flow.dims import (
    ADDR_LOGICAL,
    ADDR_PHYSICAL,
    DIMLESS,
    Dim,
    SIZE_BYTES,
    SIZE_PAGES,
    TIME_NS,
    TIME_US,
    UNKNOWN,
    conflict_kind,
    dim_of_name,
)
from repro.lint.flow.rules import FLOW_RULES, DimInference, run_flow

__all__ = [
    "ADDR_LOGICAL",
    "ADDR_PHYSICAL",
    "Cfg",
    "CallTarget",
    "DIMLESS",
    "Dim",
    "DimInference",
    "FLOW_RULES",
    "FunctionInfo",
    "ModuleLike",
    "Project",
    "SIZE_BYTES",
    "SIZE_PAGES",
    "TIME_NS",
    "TIME_US",
    "UNKNOWN",
    "annotation_dim",
    "build_cfg",
    "conflict_kind",
    "dim_of_name",
    "is_generator",
    "resolve_call",
    "run_flow",
]
