"""Per-function control-flow graphs for simflow.

One :class:`Cfg` per function: nodes are *simple statements* (compound
statements contribute their headers), edges follow the usual Python
control flow — if/else joins, loop back edges, ``break``/``continue``,
``return``/``raise`` to exit, and the conservative try/except model where
every statement of a ``try`` body may jump to every handler (an exception
can strike mid-statement).  ``with`` bodies are linear; ``finally``
blocks are on every path out of their ``try``.

Each node records whether the statement *contains a yield* (scanning its
expressions but not nested ``def``/``lambda`` bodies): the stale-state
analysis (SIM014) treats a yield as "the engine may run arbitrary other
processes here", i.e. a clock/state barrier.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Statement types that open their own scope — never descended into when
#: scanning a statement's own expressions.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


class Node:
    """One simple statement in the CFG."""

    __slots__ = ("index", "stmt", "succs", "has_yield")

    def __init__(self, index: int, stmt: Optional[ast.stmt]) -> None:
        self.index = index
        self.stmt = stmt
        self.succs: Set[int] = set()
        self.has_yield = stmt is not None and stmt_contains_yield(stmt)


def stmt_contains_yield(stmt: ast.stmt) -> bool:
    """True when ``stmt``'s own expressions contain a yield/yield-from."""
    for node in _walk_same_scope(stmt):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_same_scope(root: ast.AST):
    """``ast.walk`` that does not descend into nested scopes or into a
    compound statement's *body* (only its header expressions)."""
    stack: List[ast.AST] = [root]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(node, _SCOPE_NODES):
            continue
        first = False
        yield node
        for field, value in ast.iter_fields(node):
            # For the root compound statement, look only at header
            # expressions (test/iter/items/targets/value), not the body.
            if isinstance(node, (ast.If, ast.While, ast.For, ast.AsyncFor,
                                 ast.With, ast.AsyncWith, ast.Try)) and field in (
                "body", "orelse", "finalbody", "handlers"
            ):
                continue
            if isinstance(value, ast.AST):
                stack.append(value)
            elif isinstance(value, list):
                stack.extend(v for v in value if isinstance(v, ast.AST))


class Cfg:
    """Control-flow graph of one function body."""

    def __init__(self, fn: FunctionNode) -> None:
        self.fn = fn
        self.nodes: List[Node] = []
        # Virtual entry (index 0) and exit (index 1) carry no statement.
        self.entry = self._new_node(None)
        self.exit = self._new_node(None)
        self._loop_stack: List[Dict[str, Set[int]]] = []
        tails = self._build_body(fn.body, {self.entry.index})
        self._connect(tails, self.exit.index)

    # -- construction --------------------------------------------------

    def _new_node(self, stmt: Optional[ast.stmt]) -> Node:
        node = Node(len(self.nodes), stmt)
        self.nodes.append(node)
        return node

    def _connect(self, sources: Set[int], target: int) -> None:
        for source in sources:
            self.nodes[source].succs.add(target)

    def _build_body(self, body: List[ast.stmt], preds: Set[int]) -> Set[int]:
        """Wire ``body`` after ``preds``; returns the dangling tails."""
        current = preds
        for stmt in body:
            if not current:
                break  # unreachable after return/raise/break/continue
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: ast.stmt, preds: Set[int]) -> Set[int]:
        if isinstance(stmt, ast.If):
            header = self._new_node(stmt)
            self._connect(preds, header.index)
            then_tails = self._build_body(stmt.body, {header.index})
            else_tails = self._build_body(stmt.orelse, {header.index}) \
                if stmt.orelse else {header.index}
            return then_tails | else_tails

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._new_node(stmt)
            self._connect(preds, header.index)
            self._loop_stack.append({"break": set(), "continue": set()})
            body_tails = self._build_body(stmt.body, {header.index})
            frame = self._loop_stack.pop()
            # Back edge: body tail (and continue) re-enter the header.
            self._connect(body_tails | frame["continue"], header.index)
            # Normal exit (condition false / iterator exhausted) plus
            # breaks; a `while True` still gets the header exit edge —
            # conservative, and harmless for the analyses built on top.
            exit_tails = self._build_body(stmt.orelse, {header.index}) \
                if stmt.orelse else {header.index}
            return exit_tails | frame["break"]

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = self._new_node(stmt)
            self._connect(preds, header.index)
            return self._build_body(stmt.body, {header.index})

        if isinstance(stmt, ast.Try):
            handler_sources: Set[int] = set(preds)
            # Build the try body, remembering every node in it: any of
            # them may raise into any handler.
            first_new = len(self.nodes)
            body_tails = self._build_body(stmt.body, preds)
            body_nodes = set(range(first_new, len(self.nodes)))
            handler_sources |= body_nodes

            all_tails: Set[int] = set()
            for handler in stmt.handlers:
                head = self._new_node(handler)  # the `except X:` header
                self._connect(handler_sources, head.index)
                all_tails |= self._build_body(handler.body, {head.index})
            else_tails = self._build_body(stmt.orelse, body_tails) \
                if stmt.orelse else body_tails
            all_tails |= else_tails

            if stmt.finalbody:
                return self._build_body(stmt.finalbody, all_tails)
            return all_tails

        # Simple statements.
        node = self._new_node(stmt)
        self._connect(preds, node.index)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._connect({node.index}, self.exit.index)
            return set()
        if isinstance(stmt, ast.Break):
            if self._loop_stack:
                self._loop_stack[-1]["break"].add(node.index)
            return set()
        if isinstance(stmt, ast.Continue):
            if self._loop_stack:
                self._loop_stack[-1]["continue"].add(node.index)
            return set()
        return {node.index}

    # -- queries -------------------------------------------------------

    def statement_nodes(self) -> List[Node]:
        return [node for node in self.nodes if node.stmt is not None]


def build_cfg(fn: FunctionNode) -> Cfg:
    """Build the control-flow graph for one function definition."""
    return Cfg(fn)


def is_generator(fn: FunctionNode) -> bool:
    """True when ``fn`` is a generator (contains a yield in its own scope)."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False
