"""simflow rule pack: SIM010-SIM014, the dataflow half of simlint.

* ``SIM010`` — mixed-time-unit arithmetic/comparison/assignment/argument
  (``t_ns + t_us``): the classic silent corrupter of latency anatomy.
* ``SIM011`` — cross-dimension mixing: time vs size, or two different
  size units (``capacity_bytes + total_pages``).
* ``SIM012`` — address-space confusion: a logical page/block address
  (lpn/lba) used where a physical one (ppa/ppn/pba) is expected —
  assigned, passed, compared, or used to index the wrong mapping table
  (``l2p`` is indexed by LPN, ``p2l`` by PPA).
* ``SIM013`` — unit-ambiguous public sim API: an exported function whose
  time/size parameter (``timeout``, ``offset``, ...) carries neither a
  unit suffix nor a :mod:`repro.units` annotation.
* ``SIM014`` — stale state across a yield: a generator process caches a
  volatile shared attribute (queue depth, occupancy, in-flight count)
  before a ``yield`` and reuses it after, where the engine may have run
  other processes and advanced that state.

SIM010-012 share one interprocedural inference engine; an argument
flowing into a callee parameter with a conflicting tag is a finding even
when definition and use live in different modules.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.callgraph import (
    CallTarget,
    FunctionInfo,
    ModuleLike,
    Project,
    annotation_dim,
    merge_return_dim,
    refine_return_dims,
    resolve_call,
    return_exprs,
)
from repro.lint.flow.cfg import (
    _SCOPE_NODES,
    _walk_same_scope,
    build_cfg,
    is_generator,
)
from repro.lint.flow.dims import (
    DIMLESS,
    Dim,
    SIZE_BLOCKS,
    SIZE_BYTES,
    SIZE_PAGES,
    SIZE_SECTORS,
    UNKNOWN,
    conflict_kind,
    dim_of_name,
    join,
    scaled_time_unit,
)

#: (code -> (name, summary)) — merged into the simlint rule table.
FLOW_RULES: Dict[str, Tuple[str, str]] = {
    "SIM010": (
        "mixed-time-units",
        "arithmetic/comparison/assignment mixing time units (ns vs us)",
    ),
    "SIM011": (
        "cross-dimension",
        "time/size cross-dimension (or mismatched size-unit) arithmetic",
    ),
    "SIM012": (
        "address-space-confusion",
        "logical (lpn/lba) vs physical (ppa/ppn/pba) address crossing",
    ),
    "SIM013": (
        "unit-ambiguous-api",
        "public sim API parameter with no unit suffix or annotation",
    ),
    "SIM014": (
        "stale-state-across-yield",
        "volatile shared state cached before a yield and reused after",
    ),
}

_FAMILY_CODE = {"time": "SIM010", "cross": "SIM011", "addr": "SIM012"}

_FIX_BY_FAMILY = {
    "time": "convert explicitly (repro.units.us_to_ns & friends)",
    "cross": "convert explicitly (repro.units.bytes_to_pages & friends)",
    "addr": (
        "translate through the mapping (l2p: LPN->PPA) instead of "
        "reinterpreting the raw integer"
    ),
}

#: Mapping-table naming convention: what indexes it, what it stores.
_ADDR_MAPS: Dict[str, Tuple[Dim, Dim]] = {
    "l2p": (Dim("addr", "logical"), Dim("addr", "physical")),
    "p2l": (Dim("addr", "physical"), Dim("addr", "logical")),
}

#: `x // page_size` yields pages; `pages * page_size` yields bytes.
#: ``unit_size`` is this repo's name for bytes-per-mapping-unit (a page).
_GEOMETRY_UNITS = {
    "page": SIZE_PAGES,
    "unit": SIZE_PAGES,
    "sector": SIZE_SECTORS,
    "block": SIZE_BLOCKS,
}

#: Numeric builtins that pass their argument's dimension through.
_PASSTHROUGH_CALLS = frozenset({"int", "float", "round", "abs", "sum"})
_JOIN_CALLS = frozenset({"max", "min"})

_LADDER_FACTORS = frozenset({1_000, 1_000_000, 1_000_000_000})


def _terminal_name(expr: ast.expr) -> Optional[str]:
    """The identifier that names ``expr``: Name id, Attribute attr, or
    the called function's terminal name."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _map_signature(expr: ast.expr) -> Optional[Tuple[Dim, Dim]]:
    """(index dim, value dim) when ``expr`` names an address map."""
    name = _terminal_name(expr)
    if name is None:
        return None
    return _ADDR_MAPS.get(name.strip("_").lower())


def _geometry_unit(expr: ast.expr) -> Optional[Dim]:
    """The count unit implied by a ``*_size`` geometry divisor name."""
    name = _terminal_name(expr)
    if name is None:
        return None
    segments = name.strip("_").lower().split("_")
    if len(segments) >= 2 and segments[-1] == "size":
        return _GEOMETRY_UNITS.get(segments[-2])
    return None


def _literal_factor(expr: ast.expr) -> Optional[float]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
        value = float(expr.value)
        if value > 0:
            return value
    return None


class _Reporter:
    """Dedup + collect diagnostics for one run of the flow pass."""

    def __init__(self, select: Optional[Set[str]]) -> None:
        self.select = select
        self.diagnostics: List[Diagnostic] = []
        self._seen: Set[Tuple[str, int, int, str, str]] = set()

    def emit(self, display: str, node: ast.AST, code: str, message: str) -> None:
        if self.select is not None and code not in self.select:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        key = (display, line, col, code, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diagnostics.append(
            Diagnostic(path=display, line=line, col=col, code=code, message=message)
        )


# ----------------------------------------------------------------------
# Expression dimension inference (shared by SIM010/011/012).
# ----------------------------------------------------------------------


class DimInference:
    """Infer dims for expressions inside one function, reporting
    arithmetic/comparison conflicts as it goes."""

    def __init__(
        self,
        project: Project,
        info: FunctionInfo,
        reporter: Optional[_Reporter],
    ) -> None:
        self.project = project
        self.info = info
        self.reporter = reporter
        self.display = info.module.display
        self.env: Dict[str, Dim] = dict(info.param_dims)
        self._memo: Dict[int, Dim] = {}
        self._build_env()

    # -- environment ---------------------------------------------------

    def _build_env(self) -> None:
        """Two passes over assignments so chained locals settle."""
        statements = list(self._own_statements())
        for _ in range(2):
            for stmt in statements:
                self._memo.clear()
                if isinstance(stmt, ast.Assign):
                    value_dim = self.infer(stmt.value, report=False)
                    for target in stmt.targets:
                        self._bind(target, stmt.value, value_dim)
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    value_dim = self.infer(stmt.value, report=False)
                    self._bind(stmt.target, stmt.value, value_dim)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if isinstance(stmt.target, ast.Name):
                        element = self._element_dim(stmt.iter)
                        self._bind(stmt.target, None, element)
        self._memo.clear()

    def _bind(
        self, target: ast.expr, value: Optional[ast.expr], value_dim: Dim
    ) -> None:
        if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
            for t, v in zip(target.elts, value.elts):
                self._bind(t, v, self.infer(v, report=False))
            return
        if not isinstance(target, ast.Name):
            return
        declared = dim_of_name(target.id)
        if declared.known:
            self.env[target.id] = declared
            return
        previous = self.env.get(target.id)
        if previous is None:
            self.env[target.id] = value_dim
        elif previous != value_dim:
            self.env[target.id] = join(previous, value_dim)

    def _element_dim(self, iterable: ast.expr) -> Dim:
        """Dim of one element of ``iterable`` (plural suffixes carry the
        element unit: iterating ``lpns`` yields logical addresses)."""
        name = _terminal_name(iterable)
        if name is not None:
            return dim_of_name(name)
        if isinstance(iterable, ast.Call):
            # range(total_pages) yields page indices -> dimensionless
            # positions; don't tag.
            return UNKNOWN
        return UNKNOWN

    def _own_statements(self):
        stack: List[ast.AST] = list(self.info.node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_NODES):
                continue
            if isinstance(node, ast.stmt):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- inference -----------------------------------------------------

    def infer(self, expr: ast.expr, *, report: bool = True) -> Dim:
        key = id(expr)
        if key in self._memo and not report:
            return self._memo[key]
        result = self._infer(expr, report)
        self._memo[key] = result
        return result

    def _report(self, node: ast.AST, family: str, message: str) -> None:
        if self.reporter is not None:
            self.reporter.emit(self.display, node, _FAMILY_CODE[family], message)

    def _conflict(
        self, node: ast.AST, a: Dim, b: Dim, verb: str, report: bool
    ) -> Optional[str]:
        family = conflict_kind(a, b)
        if family is None:
            return None
        if report:
            self._report(
                node,
                family,
                f"{a.describe()} {verb} {b.describe()}: "
                f"{_FIX_BY_FAMILY[family]}",
            )
        return family

    def _infer(self, expr: ast.expr, report: bool) -> Dim:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)
            ):
                return UNKNOWN
            return DIMLESS
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            return dim_of_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return dim_of_name(expr.attr)
        if isinstance(expr, ast.Subscript):
            signature = _map_signature(expr.value)
            if signature is not None:
                return signature[1]
            name = _terminal_name(expr.value)
            if name is not None:
                return dim_of_name(name)
            return UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand, report=report)
        if isinstance(expr, ast.IfExp):
            return join(
                self.infer(expr.body, report=report),
                self.infer(expr.orelse, report=report),
            )
        if isinstance(expr, ast.BinOp):
            return self._infer_binop(expr, report)
        if isinstance(expr, ast.Compare):
            self._check_compare(expr, report)
            return UNKNOWN
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, report)
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            # `yield sim.timeout(delay)` is the idiomatic blocking call in
            # generator processes — the yielded call's arguments must
            # still be checked even though the yield itself has no dim.
            if expr.value is not None:
                self.infer(expr.value, report=report)
            return UNKNOWN
        return UNKNOWN

    def _infer_binop(self, expr: ast.BinOp, report: bool) -> Dim:
        left = self.infer(expr.left, report=report)
        right = self.infer(expr.right, report=report)
        op = expr.op

        if isinstance(op, (ast.Add, ast.Sub)):
            family = self._conflict(
                expr, left, right,
                "+" if isinstance(op, ast.Add) else "-", report,
            )
            if family is not None:
                return UNKNOWN
            if left.kind == "addr" and right.kind == "addr":
                # end_lpn - start_lpn is a page count.
                return SIZE_PAGES if isinstance(op, ast.Sub) else UNKNOWN
            if left.kind == "addr" or right.kind == "addr":
                return left if left.kind == "addr" else right
            if left.known and right in (DIMLESS, UNKNOWN):
                return left
            if right.known and left in (DIMLESS, UNKNOWN):
                return right
            return left if left.known else right

        if isinstance(op, ast.Mult):
            geometry = _geometry_unit(expr.left) or _geometry_unit(expr.right)
            if geometry is not None:
                other = right if _geometry_unit(expr.left) is None else left
                if other.kind != "time":
                    return SIZE_BYTES
            for value, source in ((expr.right, left), (expr.left, right)):
                factor = _literal_factor(value)
                if factor is not None and source.kind == "time":
                    unit = scaled_time_unit(source.unit, factor, multiply=True)
                    if unit is not None:
                        return Dim("time", unit)
                    return source  # non-ladder literal: replication
                if factor is not None and source.kind == "size":
                    return source
            return UNKNOWN

        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left.known and left == right:
                return DIMLESS  # a ratio of like quantities
            geometry = _geometry_unit(expr.right)
            if geometry is not None and left.kind != "time":
                return geometry
            factor = _literal_factor(expr.right)
            if factor is not None and left.kind == "time":
                unit = scaled_time_unit(left.unit, factor, multiply=False)
                if unit is not None:
                    return Dim("time", unit)
                return left
            if factor is not None and left.kind == "size":
                return left
            return UNKNOWN

        if isinstance(op, ast.Mod):
            if left.kind == "time" and right in (DIMLESS, UNKNOWN):
                return left
            return UNKNOWN

        return UNKNOWN

    def _check_compare(self, expr: ast.Compare, report: bool) -> None:
        operands = [expr.left] + list(expr.comparators)
        for index, op in enumerate(expr.ops):
            if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                continue
            a = self.infer(operands[index], report=report)
            b = self.infer(operands[index + 1], report=report)
            self._conflict(expr, a, b, "compared with", report)

    def _infer_call(self, expr: ast.Call, report: bool) -> Dim:
        for arg in expr.args:
            self.infer(arg, report=report)
        for keyword in expr.keywords:
            self.infer(keyword.value, report=report)

        func_name = _terminal_name(expr.func)
        if func_name == "len":
            return DIMLESS
        if func_name in _PASSTHROUGH_CALLS and expr.args:
            return self.infer(expr.args[0], report=False)
        if func_name in _JOIN_CALLS and expr.args:
            dims = [self.infer(a, report=False) for a in expr.args]
            result = dims[0]
            for d in dims[1:]:
                result = join(result, d)
            return result

        target = resolve_call(self.project, self.info, expr)
        if target is not None:
            if report:
                self._check_call_args(expr, target)
            if target.converter is not None:
                return target.converter[1]
            if target.info is not None:
                return target.info.return_dim
        if func_name is not None:
            # `timing.transfer_ns(...)` — the method's own suffix.
            return dim_of_name(func_name)
        return UNKNOWN

    # -- call-argument checking (the interprocedural edge) -------------

    def _check_call_args(self, expr: ast.Call, target: CallTarget) -> None:
        if target.converter is not None:
            expected, _result = target.converter
            if expr.args:
                got = self.infer(expr.args[0], report=False)
                family = conflict_kind(expected, got)
                if family is not None:
                    name = _terminal_name(expr.func) or "converter"
                    self._report(
                        expr,
                        family,
                        f"{name}() expects {expected.describe()}, got "
                        f"{got.describe()}: the value is already in the "
                        "target unit or needs a different converter",
                    )
            return
        info = target.info
        if info is None:
            return
        callee = info.qualname.rsplit("::", 1)[-1]
        for index, arg in enumerate(expr.args):
            if isinstance(arg, ast.Starred):
                break
            param = info.positional_param(index, bound=target.bound)
            if param is None:
                continue
            self._check_one_arg(arg, param, info, callee)
        for keyword in expr.keywords:
            if keyword.arg is not None and keyword.arg in info.param_dims:
                self._check_one_arg(keyword.value, keyword.arg, info, callee)

    def _check_one_arg(
        self, arg: ast.expr, param: str, info: FunctionInfo, callee: str
    ) -> None:
        expected = info.param_dims.get(param, UNKNOWN)
        got = self.infer(arg, report=False)
        family = conflict_kind(expected, got)
        if family is not None:
            self._report(
                arg,
                family,
                f"argument '{param}' of {callee}() expects "
                f"{expected.describe()}, got {got.describe()}: "
                f"{_FIX_BY_FAMILY[family]}",
            )


# ----------------------------------------------------------------------
# The checking pass over one function (SIM010/011/012).
# ----------------------------------------------------------------------


class UnitChecker:
    def __init__(
        self, project: Project, info: FunctionInfo, reporter: _Reporter
    ) -> None:
        self.project = project
        self.info = info
        self.reporter = reporter
        self.inference = DimInference(project, info, reporter)

    def run(self) -> None:
        for stmt in self.inference._own_statements():
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.stmt) -> None:
        infer = self.inference.infer
        if isinstance(stmt, ast.Assign):
            value_dim = infer(stmt.value)
            for target in stmt.targets:
                self._check_target(target, stmt.value, value_dim)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            declared = annotation_dim(
                stmt.annotation, self.project.imports[self.info.module.display]
            )
            if not declared.known and isinstance(stmt.target, ast.Name):
                declared = dim_of_name(stmt.target.id)
            elif not declared.known and isinstance(stmt.target, ast.Attribute):
                declared = dim_of_name(stmt.target.attr)
            value_dim = infer(stmt.value)
            self._assign_conflict(stmt, declared, value_dim)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                target_dim = self._declared_target_dim(stmt.target)
                value_dim = infer(stmt.value)
                self._assign_conflict(stmt, target_dim, value_dim)
            else:
                infer(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value_dim = infer(stmt.value)
                declared = self.info.declared_return
                family = conflict_kind(declared, value_dim)
                if family is not None:
                    self.reporter.emit(
                        self.info.module.display,
                        stmt,
                        _FAMILY_CODE[family],
                        f"returning {value_dim.describe()} from "
                        f"{self.info.node.name}() declared as "
                        f"{declared.describe()}: {_FIX_BY_FAMILY[family]}",
                    )
        else:
            # Visit every expression hanging off this statement's own
            # scope so comparisons/arithmetic/calls anywhere get checked.
            for field, value in ast.iter_fields(stmt):
                for child in (value if isinstance(value, list) else [value]):
                    if isinstance(child, ast.expr):
                        infer(child)
        # Subscript index checks apply wherever they appear.
        self._check_subscripts(stmt)

    def _declared_target_dim(self, target: ast.expr) -> Dim:
        if isinstance(target, ast.Name):
            return dim_of_name(target.id)
        if isinstance(target, ast.Attribute):
            return dim_of_name(target.attr)
        return UNKNOWN

    def _check_target(
        self, target: ast.expr, value: ast.expr, value_dim: Dim
    ) -> None:
        if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
            for t, v in zip(target.elts, value.elts):
                self._check_target(t, v, self.inference.infer(v, report=False))
            return
        declared = self._declared_target_dim(target)
        self._assign_conflict(target, declared, value_dim)

    def _assign_conflict(self, node: ast.AST, declared: Dim, got: Dim) -> None:
        family = conflict_kind(declared, got)
        if family is not None:
            self.reporter.emit(
                self.info.module.display,
                node,
                _FAMILY_CODE[family],
                f"assigning {got.describe()} to a {declared.describe()} "
                f"target: {_FIX_BY_FAMILY[family]}",
            )

    def _check_subscripts(self, stmt: ast.stmt) -> None:
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_NODES):
                continue
            if isinstance(node, ast.Subscript):
                signature = _map_signature(node.value)
                if signature is not None and not isinstance(
                    node.slice, (ast.Slice, ast.Tuple)
                ):
                    expected, _value = signature
                    got = self.inference.infer(node.slice, report=False)
                    family = conflict_kind(expected, got)
                    if family is not None:
                        map_name = _terminal_name(node.value) or "map"
                        self.reporter.emit(
                            self.info.module.display,
                            node,
                            "SIM012",
                            f"{map_name} is indexed by "
                            f"{expected.describe()}, got {got.describe()}: "
                            "wrong side of the address mapping",
                        )
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# SIM013 — unit-ambiguous public API parameters.
# ----------------------------------------------------------------------

_AMBIGUOUS_TIME_WORDS = frozenset(
    {"timeout", "latency", "delay", "duration", "interval", "period",
     "deadline", "elapsed"}
)
_AMBIGUOUS_SIZE_WORDS = frozenset({"size", "offset", "capacity", "length"})


def _check_ambiguous_api(
    project: Project, info: FunctionInfo, reporter: _Reporter
) -> None:
    node = info.node
    name = node.name
    if name.startswith("_") and name != "__init__":
        return
    if info.class_name is not None and info.class_name.startswith("_"):
        return
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.arg in ("self", "cls"):
            continue
        # A known dim satisfies the rule; so does an explicit DIMLESS
        # (a `Count`-annotated slot/retry count is deliberate).
        if info.param_dims.get(arg.arg, UNKNOWN) != UNKNOWN:
            continue
        segments = arg.arg.lower().strip("_").split("_")
        hits = [s for s in segments if s in _AMBIGUOUS_TIME_WORDS]
        kind = "time"
        if not hits:
            hits = [s for s in segments if s in _AMBIGUOUS_SIZE_WORDS]
            kind = "size"
        if not hits:
            continue
        suffix = "_ns" if kind == "time" else "_bytes"
        alias = "Ns" if kind == "time" else "Bytes"
        reporter.emit(
            info.module.display,
            arg,
            "SIM013",
            f"parameter '{arg.arg}' of public sim API {name}() is a "
            f"{kind} quantity with no unit: add a unit suffix "
            f"(e.g. '{arg.arg}{suffix}') or annotate with "
            f"repro.units.{alias}",
        )


# ----------------------------------------------------------------------
# SIM014 — stale shared state across a yield.
# ----------------------------------------------------------------------

#: Attribute names that read as *counts* of engine-advanced state.  Bare
#: "pending"/"outstanding" are deliberately absent from the attribute
#: set: `request.pending` is usually an object reference (stable across
#: yields), while `queue_depth`/`occupancy` are always live quantities.
_VOLATILE_SUBSTRINGS = (
    "depth", "occupancy", "inflight", "in_flight", "backlog", "queued",
)
_QUEUEISH_NAMES = frozenset(
    {"queue", "pending", "waiting", "waiters", "batches", "backlog", "ring",
     "inflight", "outstanding"}
)

_FRESH, _STALE = 0, 1


def _volatile_reason(expr: ast.expr) -> Optional[str]:
    """A human-readable description when ``expr`` reads volatile shared
    state (engine-advanced between yields), else None."""
    if isinstance(expr, ast.Call):
        func = expr.func
        if (
            isinstance(func, ast.Name)
            and func.id == "len"
            and len(expr.args) == 1
            and isinstance(expr.args[0], ast.Attribute)
        ):
            attr = expr.args[0].attr.strip("_").lower()
            if attr in _QUEUEISH_NAMES or any(
                s in attr for s in _VOLATILE_SUBSTRINGS
            ) or "queue" in attr:
                return f"len(...{expr.args[0].attr})"
        if isinstance(func, ast.Attribute):
            attr = func.attr.strip("_").lower()
            if any(s in attr for s in _VOLATILE_SUBSTRINGS) or attr == "qsize":
                return f"{func.attr}()"
        return None
    if isinstance(expr, ast.Attribute):
        attr = expr.attr.strip("_").lower()
        if any(s in attr for s in _VOLATILE_SUBSTRINGS):
            return expr.attr
    return None


def _stmt_names(stmt: ast.stmt):
    """(loads, stores) of simple Names in this statement's own scope
    (compound statements contribute their headers only)."""
    loads: List[ast.Name] = []
    stores: List[str] = []
    for node in _walk_same_scope(stmt):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                loads.append(node)
            else:
                stores.append(node.id)
        elif isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            stores.append(node.target.id)
    return loads, stores


def _check_stale_across_yield(info: FunctionInfo, reporter: _Reporter) -> None:
    if not is_generator(info.node):
        return
    cfg = build_cfg(info.node)

    # Per-node transfer inputs, precomputed.
    volatile_defs: Dict[int, Dict[str, str]] = {}  # node -> {var: reason}
    plain_defs: Dict[int, List[str]] = {}
    for node in cfg.statement_nodes():
        stmt = node.stmt
        volatile: Dict[str, str] = {}
        plain: List[str] = []
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets, value = [stmt.target], None
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets, value = [stmt.target], None
        for target in targets:
            if isinstance(target, ast.Name):
                reason = _volatile_reason(value) if value is not None else None
                if reason is not None:
                    volatile[target.id] = reason
                else:
                    plain.append(target.id)
            elif isinstance(target, ast.Tuple):
                plain.extend(
                    t.id for t in target.elts if isinstance(t, ast.Name)
                )
        _loads, stores = _stmt_names(stmt)
        plain.extend(s for s in stores if s not in volatile)
        volatile_defs[node.index] = volatile
        plain_defs[node.index] = plain

    # Forward dataflow: var -> (_FRESH|_STALE, reason).  Merge keeps the
    # stalest state seen on any path.
    states_in: Dict[int, Dict[str, Tuple[int, str]]] = {cfg.entry.index: {}}

    def transfer(index: int, state: Dict[str, Tuple[int, str]]):
        node = cfg.nodes[index]
        out = dict(state)
        if node.stmt is None:
            return out
        if node.has_yield:
            out = {
                var: (_STALE, reason) for var, (_level, reason) in out.items()
            }
        for var in plain_defs.get(index, ()):
            out.pop(var, None)
        for var, reason in volatile_defs.get(index, {}).items():
            out[var] = (_FRESH, reason)
        return out

    worklist = [cfg.entry.index]
    while worklist:
        index = worklist.pop()
        out = transfer(index, states_in.get(index, {}))
        for succ in cfg.nodes[index].succs:
            merged = dict(states_in.get(succ, {}))
            changed = succ not in states_in
            for var, (level, reason) in out.items():
                old = merged.get(var)
                if old is None or level > old[0]:
                    merged[var] = (level, reason)
                    changed = True
            if changed:
                states_in[succ] = merged
                worklist.append(succ)

    # Report: any load of a stale-tracked var.
    for node in cfg.statement_nodes():
        state = states_in.get(node.index)
        if not state:
            continue
        loads, _stores = _stmt_names(node.stmt)
        for load in loads:
            tracked = state.get(load.id)
            if tracked is None or tracked[0] != _STALE:
                continue
            reporter.emit(
                info.module.display,
                load,
                "SIM014",
                f"'{load.id}' caches {tracked[1]} from before a yield: "
                "the engine may have advanced that state while this "
                "process slept — re-read it after resuming",
            )


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------


def run_flow(
    modules: Sequence[ModuleLike],
    select: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Run SIM010-SIM014 over a set of parsed modules."""
    if select is not None and not (set(FLOW_RULES) & select):
        return []
    project = Project(modules)
    reporter = _Reporter(select)

    def infer_return(info: FunctionInfo):
        inference = DimInference(project, info, None)
        return merge_return_dim(
            [inference.infer(e, report=False) for e in return_exprs(info.node)]
        )

    refine_return_dims(project, infer_return)

    for info in project.all_functions:
        UnitChecker(project, info, reporter).run()
        if info.module.is_sim_layer:
            _check_ambiguous_api(project, info, reporter)
            _check_stale_across_yield(info, reporter)
    return reporter.diagnostics
