"""Content-hash cache for lint runs.

Two tiers, both keyed by content so invalidation is automatic:

* **per-file** — ``sha256(display + source)`` -> the file's raw
  *syntactic* diagnostics (SIM001-SIM009).  A file hits as long as its
  bytes (and display path) are unchanged, whatever happened elsewhere.
* **per-project** — ``sha256(all file keys)`` -> the *flow* diagnostics
  (SIM010-SIM014).  The flow pass reads every module's call summaries,
  so any changed file invalidates it; on an unchanged tree the whole
  pass — including parsing — is skipped and ``repro check`` is
  near-instant.

The store self-invalidates when the lint engine itself changes: the
cache file records a fingerprint hashed over every ``repro/lint``
source file, so editing a rule drops the whole cache rather than
serving findings from the old engine.  Suppression comments are *not*
cached — they re-apply on every run from the (already in memory)
source text, so SIM007/SIM008 stay live.

Location: ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
``~/.cache/repro``.  ``--no-cache`` on the CLI bypasses it, as does any
``--select`` run (partial rule sets must not poison full-run entries).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.lint.diagnostics import Diagnostic

#: Bump to shed caches whose layout this module no longer understands.
CACHE_FORMAT_VERSION = 1

#: Growth caps — oldest entries beyond these are pruned at save time.
_MAX_FILE_ENTRIES = 8192
_MAX_FLOW_ENTRIES = 64

_DIAG_FIELDS = ("path", "line", "col", "code", "message")


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def engine_fingerprint() -> str:
    """Hash of every source file in the lint package (rules + engine +
    flow pass): any edit to the linter invalidates every cached finding."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class LintCache:
    """Load-on-construct, save-on-demand JSON store with hit counters."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.path = self.directory / "lintcache.json"
        self.fingerprint = engine_fingerprint()
        self.file_hits = 0
        self.file_misses = 0
        self.flow_hot = False
        self._dirty = False
        self._files: Dict[str, List[dict]] = {}
        self._flows: Dict[str, List[dict]] = {}
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            isinstance(data, dict)
            and data.get("version") == CACHE_FORMAT_VERSION
            and data.get("fingerprint") == self.fingerprint
        ):
            self._files = dict(data.get("files", {}))
            self._flows = dict(data.get("flows", {}))

    # -- keys ----------------------------------------------------------

    def file_key(self, display: str, source: str) -> str:
        digest = hashlib.sha256()
        digest.update(display.encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def project_key(self, file_keys: Sequence[str]) -> str:
        digest = hashlib.sha256()
        for key in file_keys:
            digest.update(key.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    # -- lookups -------------------------------------------------------

    def _revive(self, rows: List[dict]) -> Optional[List[Diagnostic]]:
        try:
            return [
                Diagnostic(**{f: row[f] for f in _DIAG_FIELDS}) for row in rows
            ]
        except (KeyError, TypeError):
            return None  # malformed entry: treat as a miss

    def get_file(self, key: str) -> Optional[List[Diagnostic]]:
        rows = self._files.get(key)
        revived = self._revive(rows) if rows is not None else None
        if revived is None:
            self.file_misses += 1
            return None
        self.file_hits += 1
        self._files[key] = self._files.pop(key)  # LRU refresh
        return revived

    def put_file(self, key: str, diags: Sequence[Diagnostic]) -> None:
        self._files[key] = [d.to_dict() for d in diags]
        self._dirty = True

    def get_flow(self, key: str) -> Optional[List[Diagnostic]]:
        rows = self._flows.get(key)
        revived = self._revive(rows) if rows is not None else None
        if revived is None:
            return None
        self.flow_hot = True
        self._flows[key] = self._flows.pop(key)
        return revived

    def put_flow(self, key: str, diags: Sequence[Diagnostic]) -> None:
        self._flows[key] = [d.to_dict() for d in diags]
        self._dirty = True

    # -- persistence ---------------------------------------------------

    def save(self) -> None:
        if not self._dirty:
            return
        for store, cap in ((self._files, _MAX_FILE_ENTRIES),
                           (self._flows, _MAX_FLOW_ENTRIES)):
            excess = len(store) - cap
            if excess > 0:
                for key in list(store)[:excess]:
                    del store[key]
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "files": self._files,
            "flows": self._flows,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            return  # a read-only cache dir must never fail the lint
        self._dirty = False

    # -- reporting -----------------------------------------------------

    def status(self) -> str:
        """One-line summary for the CLI (CI greps for ``cache:``)."""
        total = self.file_hits + self.file_misses
        flow = "hot" if self.flow_hot else "cold"
        return f"cache: {self.file_hits}/{total} files hot, flow {flow}"
