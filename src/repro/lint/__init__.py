"""``repro.lint`` — simlint, the determinism & invariant static analyzer.

The simulated testbed's headline guarantee is that every rerun is
bit-identical: serial equals parallel, cached equals executed, faults are
seeded streams.  PRs 1-4 verified those properties by hand; this package
turns them into machine-checked rules (``SIM001``-``SIM006``) enforced by
``python -m repro lint`` in CI, plus engine-level hygiene codes for the
suppression comments themselves (``SIM007``/``SIM008``).

See ``docs/lint.md`` for the rule catalogue, suppression policy, and how
to add a rule.
"""

from repro.lint.diagnostics import Diagnostic, Suppression
from repro.lint.engine import (
    LintResult,
    SIM_LAYER_DIRS,
    find_suppressions,
    is_sim_layer_path,
    lint_paths,
    lint_source,
)
from repro.lint.rules import ENGINE_CODES, RULES, Rule, all_codes, rules_table

__all__ = [
    "Diagnostic",
    "Suppression",
    "LintResult",
    "SIM_LAYER_DIRS",
    "ENGINE_CODES",
    "RULES",
    "Rule",
    "all_codes",
    "find_suppressions",
    "is_sim_layer_path",
    "lint_paths",
    "lint_source",
    "rules_table",
]
