"""The simlint engine: collect files, parse, run rules, apply suppressions.

Suppression grammar (one comment per line)::

    x = list(a_set)  # simlint: disable=SIM003 -- membership only, order unused
    # simlint: disable-next-line=SIM001,SIM002 -- fixture exercises the rule
    t = time.time()
    # simlint: disable-next-line=all -- generated code

``disable`` applies to its own line, ``disable-next-line`` to the line
below.  A reason after ``--`` is mandatory (``SIM007`` otherwise) and a
suppression must actually absorb a finding (``SIM008`` otherwise), so stale
suppressions cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.lint.diagnostics import Diagnostic, Suppression
from repro.lint.rules import RULES, all_codes
from repro.lint.rules import ModuleContext
from repro.lint.flow.rules import FLOW_RULES, run_flow

#: Directory components that mark a module as *simulation code* for the
#: sim-only rules (SIM001): the layers the paper's testbed is built from.
SIM_LAYER_DIRS = frozenset(
    {"sim", "ssd", "ftl", "nvme", "kstack", "spdk", "net", "flash", "host"}
)

#: Directories never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist"})

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>disable(?:-next-line)?)\s*=\s*"
    r"(?P<codes>all|SIM\d{3}(?:\s*,\s*SIM\d{3})*)"
    r"(?:\s+--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass
class LintResult:
    """Outcome of linting a set of files."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.files_scanned += other.files_scanned
        self.suppressed += other.suppressed

    def sorted(self) -> "LintResult":
        self.diagnostics.sort(key=lambda d: d.sort_key)
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "tool": "simlint",
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def is_sim_layer_path(display: str) -> bool:
    """True when any *directory* component names a simulation layer."""
    parts = Path(display).parts
    return any(part in SIM_LAYER_DIRS for part in parts[:-1])


def find_suppressions(source: str) -> List[Suppression]:
    """Extract ``# simlint:`` comments, tolerant of unparsable files."""
    suppressions: List[Suppression] = []

    def consume(comment: str, line: int) -> None:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            return
        codes = match.group("codes")
        suppressions.append(
            Suppression(
                line=line,
                target_line=line + 1
                if match.group("kind") == "disable-next-line"
                else line,
                codes=None
                if codes == "all"
                else frozenset(c.strip() for c in codes.split(",")),
                reason=(match.group("reason") or "").strip(),
            )
        )

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                consume(token.string, token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to a line scan so suppressions still parse in files
        # the tokenizer rejects (the file itself gets a SIM000).
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text and "simlint:" in text:
                consume(text[text.index("#"):], lineno)
    return suppressions


@dataclass
class ParsedModule:
    """One parsed file, in the shape the flow pass consumes."""

    display: str
    tree: ast.AST
    is_sim_layer: bool


def _parse_module(
    source: str, display: str, is_sim_layer: Optional[bool]
) -> Union[ParsedModule, Diagnostic]:
    """Parse one file; a syntax error comes back as its SIM000."""
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return Diagnostic(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 0) or 1,
            code="SIM000",
            message=f"file does not parse: {exc.msg}",
        )
    if is_sim_layer is None:
        is_sim_layer = is_sim_layer_path(display)
    return ParsedModule(display=display, tree=tree, is_sim_layer=is_sim_layer)


def _syntactic_diagnostics(
    module: ParsedModule, selected: Optional[set]
) -> List[Diagnostic]:
    """Run the per-file (syntactic) rule pack over one parsed module."""
    ctx = ModuleContext(
        display=module.display,
        tree=module.tree,
        is_sim_layer=module.is_sim_layer,
    )
    raw: List[Diagnostic] = []
    for code, rule in sorted(RULES.items()):
        if selected is not None and code not in selected:
            continue
        raw.extend(rule.check(ctx))
    return raw


def _apply_suppressions(
    source: str,
    display: str,
    raw: Sequence[Diagnostic],
    selected: Optional[set],
    result: LintResult,
) -> None:
    """Filter ``raw`` through the file's suppression comments into
    ``result``, then emit SIM007/SIM008 for bad suppressions.  Runs after
    syntactic and flow findings are combined so a suppression can absorb
    either kind."""
    suppressions = find_suppressions(source)
    for diag in raw:
        absorbed = False
        for suppression in suppressions:
            if suppression.matches(diag):
                suppression.used = True
                absorbed = True
        if absorbed:
            result.suppressed += 1
        else:
            result.diagnostics.append(diag)

    for suppression in suppressions:
        if not suppression.reason and (selected is None or "SIM007" in selected):
            result.diagnostics.append(
                Diagnostic(
                    path=display,
                    line=suppression.line,
                    col=1,
                    code="SIM007",
                    message=(
                        "suppression has no reason: append "
                        "'-- <why this is a justified false positive>'"
                    ),
                )
            )
        if not suppression.used and (selected is None or "SIM008" in selected):
            result.diagnostics.append(
                Diagnostic(
                    path=display,
                    line=suppression.line,
                    col=1,
                    code="SIM008",
                    message=(
                        "suppression matches no finding on its target "
                        "line: remove it (stale suppressions hide real "
                        "regressions)"
                    ),
                )
            )


def lint_source(
    source: str,
    display: str = "<string>",
    *,
    is_sim_layer: Optional[bool] = None,
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint one module's source text (the unit tests' entry point).

    Runs the syntactic rules and the flow pass (SIM010-SIM014) over the
    single module; cross-module findings need :func:`lint_paths`.
    """
    result = LintResult(files_scanned=1)
    selected = set(select) if select is not None else None

    parsed = _parse_module(source, display, is_sim_layer)
    if isinstance(parsed, Diagnostic):
        result.diagnostics.append(parsed)
        return result.sorted()

    raw = _syntactic_diagnostics(parsed, selected)
    raw.extend(run_flow([parsed], selected))
    raw.sort(key=lambda d: d.sort_key)
    _apply_suppressions(source, display, raw, selected, result)
    return result.sorted()


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            yield candidate


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    root: Optional[Union[str, Path]] = None,
    select: Optional[Iterable[str]] = None,
    cache: Optional["LintCache"] = None,
) -> LintResult:
    """Lint every python file under ``paths``; display paths are
    root-relative (default: relative to the current directory).

    Syntactic rules run per file; the flow pass (SIM010-SIM014) runs once
    over the whole file set so call-graph summaries cross module
    boundaries.  With a :class:`repro.lint.cache.LintCache`, per-file
    syntactic findings are keyed by content hash and the flow findings by
    the hash of all hashes — an unchanged tree skips parsing entirely.
    The cache is only consulted for full runs (``select=None``).
    """
    base = Path(root) if root is not None else Path.cwd()
    selected = set(select) if select is not None else None
    result = LintResult()

    records: List[tuple] = []  # (display, source)
    for path in iter_python_files(paths):
        try:
            display = path.resolve().relative_to(base.resolve()).as_posix()
        except ValueError:
            display = path.as_posix()
        records.append((display, path.read_text(encoding="utf-8")))
    result.files_scanned = len(records)

    use_cache = cache is not None and selected is None
    keys: Dict[str, str] = {}
    flow_key = ""
    if use_cache:
        keys = {d: cache.file_key(d, s) for d, s in records}
        flow_key = cache.project_key([keys[d] for d, _ in records])

    raw_by_file: Dict[str, List[Diagnostic]] = {d: [] for d, _ in records}
    flow_diags = cache.get_flow(flow_key) if use_cache else None

    cold_files: List[tuple] = []
    for display, source in records:
        cached = cache.get_file(keys[display]) if use_cache else None
        if cached is not None:
            raw_by_file[display].extend(cached)
        else:
            cold_files.append((display, source))

    # Parse what we must: cache-cold files always; *every* file when the
    # flow result is cold (the flow pass needs all trees to resolve
    # cross-module calls).
    to_parse = cold_files if flow_diags is not None else records
    cold_displays = {d for d, _ in cold_files}
    modules: List[ParsedModule] = []
    for display, source in to_parse:
        parsed = _parse_module(source, display, None)
        if isinstance(parsed, Diagnostic):
            if display in cold_displays:
                raw_by_file[display].append(parsed)
                if use_cache:
                    cache.put_file(keys[display], [parsed])
            continue
        modules.append(parsed)
        if display in cold_displays:
            diags = _syntactic_diagnostics(parsed, selected)
            raw_by_file[display].extend(diags)
            if use_cache:
                cache.put_file(keys[display], diags)

    if flow_diags is None:
        flow_diags = run_flow(modules, selected)
        if use_cache:
            cache.put_flow(flow_key, flow_diags)
    for diag in flow_diags:
        raw_by_file.setdefault(diag.path, []).append(diag)

    for display, source in records:
        raw = sorted(raw_by_file[display], key=lambda d: d.sort_key)
        _apply_suppressions(source, display, raw, selected, result)

    if use_cache:
        cache.save()
    return result.sorted()


def validate_select(select: Iterable[str]) -> List[str]:
    """Normalize a ``--select`` list, raising on unknown codes."""
    known = set(all_codes())
    chosen = []
    for code in select:
        code = code.strip().upper()
        if code not in known:
            raise ValueError(
                f"unknown rule code {code!r} (known: {', '.join(sorted(known))})"
            )
        chosen.append(code)
    return chosen
