"""CLI entry points: ``python -m repro lint`` and ``python -m repro check``.

``lint`` runs the simlint rule pack and exits non-zero on findings, so it
can gate CI.  ``check`` is the aggregate quality gate: simlint always, plus
``ruff`` and ``mypy`` when they are installed (skipped with a notice
otherwise, or a failure under ``--strict-tools`` — the CI jobs install
both, so the gate is only soft on bare development machines).
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
from typing import List, Optional, Sequence, Tuple

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache
from repro.lint.engine import lint_paths, validate_select
from repro.lint.rules import rules_table
from repro.lint.sarif import to_sarif

DEFAULT_PATHS = ("src", "tests")

#: Exit codes: 0 clean, 1 findings, 2 usage / missing paths.
EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE = 0, 1, 2


def _lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "simlint: determinism, invariant & unit/dimension static "
            "analysis for the simulated testbed (rules SIM000-SIM014; "
            "see docs/lint.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="drop findings recorded in this baseline file (new ones still fail)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record current findings as the baseline and exit clean",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-hash result cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule code with its summary and exit",
    )
    return parser


def run_lint(argv: Optional[Sequence[str]] = None) -> int:
    args = _lint_parser().parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        for code, summary in rules_table():
            print(f"{code}  {summary}")
        return EXIT_CLEAN

    select = None
    if args.select:
        try:
            select = validate_select(args.select.split(","))
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return EXIT_USAGE

    # The cache only serves full runs: a --select subset would otherwise
    # poison (or be poisoned by) full-run entries.
    cache = None
    if not args.no_cache and select is None:
        cache = LintCache()

    try:
        result = lint_paths(args.paths, select=select, cache=cache)
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        recorded = write_baseline(args.write_baseline, result.diagnostics)
        print(
            f"simlint: baseline written to {args.write_baseline} "
            f"({recorded} finding{'' if recorded == 1 else 's'})"
        )
        return EXIT_CLEAN

    baselined = 0
    if args.baseline:
        try:
            slots = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        result.diagnostics, baselined = apply_baseline(
            result.diagnostics, slots
        )

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(result), indent=2, sort_keys=True))
    else:
        for diag in result.diagnostics:
            print(diag.format())
        summary = (
            f"{len(result.diagnostics)} finding"
            f"{'' if len(result.diagnostics) == 1 else 's'} "
            f"({result.files_scanned} files, {result.suppressed} suppressed"
            + (f", {baselined} baselined" if baselined else "")
            + ")"
        )
        print(("" if result.ok else "\n") + f"simlint: {summary}")
        if cache is not None:
            print(f"simlint: {cache.status()}")
    return EXIT_CLEAN if result.ok else EXIT_FINDINGS


# ----------------------------------------------------------------------
# `python -m repro check` — the aggregate gate.
# ----------------------------------------------------------------------


def _check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description=(
            "aggregate quality gate: simlint + ruff + strict mypy "
            "(external tools skip with a notice when not installed)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="paths for simlint/ruff (default: src tests)",
    )
    parser.add_argument(
        "--strict-tools",
        action="store_true",
        help="fail (instead of skip) when ruff or mypy is not installed",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the simlint content-hash result cache",
    )
    return parser


def _run_external(name: str, cmd: List[str]) -> Tuple[str, int]:
    """Run an external tool; returns (status, returncode)."""
    if shutil.which(cmd[0]) is None:
        return ("missing", -1)
    proc = subprocess.run(cmd)
    return ("ok" if proc.returncode == 0 else "fail", proc.returncode)


def run_check(argv: Optional[Sequence[str]] = None) -> int:
    args = _check_parser().parse_args(list(argv) if argv is not None else None)
    failures = 0
    skipped: List[str] = []

    print("== simlint ==", flush=True)
    lint_argv = list(args.paths)
    if args.no_cache:
        lint_argv.append("--no-cache")
    lint_rc = run_lint(lint_argv)
    if lint_rc != EXIT_CLEAN:
        failures += 1

    steps = [
        ("ruff", ["ruff", "check", *args.paths]),
        ("mypy", ["mypy", "--config-file", "pyproject.toml"]),
    ]
    for name, cmd in steps:
        print(f"== {name} ==", flush=True)
        status, _rc = _run_external(name, cmd)
        if status == "missing":
            print(f"{name}: not installed — skipped (CI runs it)")
            skipped.append(name)
            if args.strict_tools:
                failures += 1
        elif status == "fail":
            failures += 1

    verdict = "FAIL" if failures else "ok"
    note = f" (skipped: {', '.join(skipped)})" if skipped else ""
    print(f"\ncheck: {verdict}{note}")
    return EXIT_FINDINGS if failures else EXIT_CLEAN
