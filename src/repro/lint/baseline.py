"""Finding baselines: adopt simlint on a tree with pre-existing debt.

``--write-baseline FILE`` records every current finding as a
*fingerprint* — ``sha256(path:code:message)`` truncated to 16 hex chars,
with a count per fingerprint so N identical findings in one file are N
slots, not a wildcard.  ``--baseline FILE`` then subtracts: a finding
whose fingerprint still has a free slot is silently dropped, anything
new fails the run.  Line numbers are deliberately *not* part of the
fingerprint — shifting a file must not resurrect baselined findings —
and a fixed finding simply leaves its slot unused (regenerate the
baseline to ratchet down).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.lint.diagnostics import Diagnostic

BASELINE_VERSION = 1


def fingerprint(diag: Diagnostic) -> str:
    """Stable, line-number-free identity of one finding."""
    text = f"{diag.path}:{diag.code}:{diag.message}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def write_baseline(path: Union[str, Path], diagnostics: List[Diagnostic]) -> int:
    """Write a baseline file; returns the number of findings recorded."""
    counts: Dict[str, int] = {}
    for diag in diagnostics:
        key = fingerprint(diag)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "tool": "simlint",
        "findings": len(diagnostics),
        "fingerprints": dict(sorted(counts.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(diagnostics)


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Load fingerprint slots from a baseline file.

    Raises ``ValueError`` on a malformed or wrong-version file — a
    corrupt baseline silently matching nothing would fail CI with noise,
    silently matching everything would hide regressions.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported format "
            f"(want version {BASELINE_VERSION})"
        )
    fingerprints = data.get("fingerprints")
    if not isinstance(fingerprints, dict):
        raise ValueError(f"baseline {path} has no fingerprint table")
    return {str(k): int(v) for k, v in fingerprints.items()}


def apply_baseline(
    diagnostics: List[Diagnostic], slots: Dict[str, int]
) -> Tuple[List[Diagnostic], int]:
    """Split findings into (new, baselined-count) against ``slots``."""
    remaining = dict(slots)
    kept: List[Diagnostic] = []
    absorbed = 0
    for diag in diagnostics:
        key = fingerprint(diag)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            kept.append(diag)
    return kept, absorbed
