"""``python -m repro.fio <jobfile> [options]`` — run fio job files.

The simulated counterpart of invoking fio on the paper's testbed:

    python -m repro.fio examples/jobs/randread.fio --device ull \\
        --completion poll

Each job in the file runs on a fresh, preconditioned device and prints a
fio-style summary line.
"""

from __future__ import annotations

import argparse
from typing import Any, List, Optional, Sequence

from repro.core.experiment import DeviceKind, StackKind, build_device, build_stack
from repro.host.accounting import ExecMode
from repro.kstack.completion import CompletionMethod
from repro.sim.engine import Simulator
from repro.ssd.device import SsdDevice
from repro.workloads.fiofile import load_fio_file
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import JobResult, run_job, run_jobs


def run_jobfile(
    path: str,
    *,
    device: DeviceKind = DeviceKind.ULL,
    completion: CompletionMethod = CompletionMethod.INTERRUPT,
    precondition: float = 1.0,
    concurrent: bool = False,
) -> List[JobResult]:
    """Run every job in ``path``; returns the list of JobResults.

    ``concurrent=True`` gives fio's default semantics — all jobs hammer
    one shared device simultaneously, each from its own stack/core.
    The default runs each job on a fresh device (fio's ``stonewall``
    between independent measurements).
    """
    jobs = load_fio_file(path)
    engines = {job.engine is IoEngineKind.SPDK for job in jobs}
    if concurrent and len(engines) > 1:
        raise ValueError(
            "cannot mix spdk and kernel jobs on one device: SPDK unbinds "
            "the kernel driver"
        )

    def make_stack(
        sim: Simulator, dev: SsdDevice, job: FioJob, seed: int
    ) -> Any:
        stack_kind = (
            StackKind.SPDK if job.engine is IoEngineKind.SPDK else StackKind.KERNEL
        )
        return build_stack(
            sim, dev, stack=stack_kind, completion=completion, seed=seed
        )

    if concurrent:
        sim = Simulator()
        dev = build_device(sim, device, precondition=precondition)
        pairs = [
            (make_stack(sim, dev, job, seed=index + 1), job)
            for index, job in enumerate(jobs)
        ]
        return run_jobs(sim, pairs)
    results: List[JobResult] = []
    for job in jobs:
        sim = Simulator()
        dev = build_device(sim, device, precondition=precondition)
        results.append(run_job(sim, make_stack(sim, dev, job, seed=1), job))
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fio",
        description="Run a fio job file against a simulated SSD",
    )
    parser.add_argument("jobfile", help="fio-format job file")
    parser.add_argument(
        "--device", choices=[k.value for k in DeviceKind], default="ull"
    )
    parser.add_argument(
        "--completion",
        choices=[m.value for m in CompletionMethod],
        default="interrupt",
        help="kernel completion method (ignored for spdk jobs)",
    )
    parser.add_argument(
        "--precondition", type=float, default=1.0,
        help="fraction of the drive written before the run (default 1.0)",
    )
    parser.add_argument(
        "--concurrent", action="store_true",
        help="run all jobs simultaneously on one shared device "
             "(fio's default semantics)",
    )
    args = parser.parse_args(argv)
    results = run_jobfile(
        args.jobfile,
        device=DeviceKind(args.device),
        completion=CompletionMethod(args.completion),
        precondition=args.precondition,
        concurrent=args.concurrent,
    )
    for result in results:
        summary = result.latency
        print(
            f"{result.job.name}: ({result.job.rw}, bs={result.job.block_size}, "
            f"qd={result.job.iodepth}, {result.job.engine.value})"
        )
        print(
            f"  lat (usec): avg={summary.mean_us:.1f}, p50={summary.p50_ns / 1000:.1f}, "
            f"p99={summary.p99_us:.1f}, p99.999={summary.p99999_us:.1f}"
        )
        print(
            f"  bw={result.bandwidth_mbps:.0f}MB/s, iops={result.iops:.0f}, "
            f"cpu usr={100 * result.cpu_utilization(ExecMode.USER):.1f}% "
            f"sys={100 * result.cpu_utilization(ExecMode.KERNEL):.1f}%"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
