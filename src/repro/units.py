"""``repro.units`` — the testbed's unit vocabulary and blessed converters.

Every number the figures rest on is a physical quantity: nanoseconds of
die latency, bytes per transfer, logical vs physical page addresses.  A
silent ``ns``-vs-``us`` (or LBA-vs-PPN) mix-up corrupts a latency-anatomy
result without failing any test, so the conventions live in one place:

* **Unit aliases** (``Ns``, ``Bytes``, ``Lpn``, ...) annotate quantities
  whose *name* cannot carry the unit (a parameter called ``offset``, a
  return value).  They are deliberate ``int``/``float`` aliases — not
  ``typing.NewType`` — so annotating an existing API never forces call
  sites to wrap values (the strict-mypy ratchet stays green and sweep
  outputs stay byte-identical).  Enforcement comes from the simflow
  dataflow pass (``repro.lint.flow``, rules SIM010-SIM014), which reads
  these aliases off annotations and treats them exactly like a
  ``_ns``/``_bytes`` name suffix.

* **Blessed converters** (``us_to_ns`` & friends) make every unit change
  explicit and greppable.  The flow pass knows their signatures: feeding
  ``us_to_ns`` a value it can prove is already nanoseconds is a SIM010
  finding, and the call's result is tagged with the target unit.

Conversion is exact: time converters use integer arithmetic (the sim
clock is integer nanoseconds), so swapping a hand-written ``* 1_000``
for ``us_to_ns`` can never perturb a measurement.

See docs/lint.md (rule catalogue) and DESIGN.md ("Units and address
spaces") for the conventions these types encode.
"""

from __future__ import annotations

from typing import Union

# ----------------------------------------------------------------------
# Unit aliases.
#
# Time quantities are integer nanoseconds end to end; ``Us``/``Ms``/``Sec``
# exist for the few boundary values (CLI flags, paper tables) that are
# naturally expressed coarser.  Address spaces: ``Lpn`` (logical page
# number — the FTL's view of an LBA) vs ``Ppa`` (physical page address).
# ``Lba``/``Ppn``/``Pba`` name the same two spaces in NVMe/flash jargon;
# the flow pass treats {lba, lpn} and {ppn, pba, ppa} as the logical and
# physical space respectively.
# ----------------------------------------------------------------------

Number = Union[int, float]

Ns = int  #: simulated time in nanoseconds (the sim clock's native unit)
Us = int  #: time in microseconds (boundary values only; convert at the edge)
Ms = int  #: time in milliseconds
Sec = float  #: wall-clock or coarse time in seconds

Count = int  #: an explicitly dimensionless count (queue slots, retries)

Bytes = int  #: a size or byte offset
Sectors = int  #: a size in 512-byte host sectors
Pages = int  #: a size in flash pages (see FtlLayout.page_size for bytes)
Blocks = int  #: a size in flash erase blocks

Lpn = int  #: logical page number (host/FTL logical address space)
Lba = int  #: logical block address (host sector-granular logical space)
Ppa = int  #: physical page address (flash physical space)
Ppn = int  #: physical page number (synonym of Ppa in NVMe/flash jargon)
Pba = int  #: physical block address (flash physical space, block granular)

#: ns per microsecond / millisecond / second — the only scale constants
#: the converters use, exported so tables can write ``3 * NS_PER_US``.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

#: bytes per 512-byte host sector (the NVMe LBA granularity we model).
BYTES_PER_SECTOR = 512


# ----------------------------------------------------------------------
# Time converters.  Integer in, integer out, exact — these are drop-in
# replacements for hand-written ``* 1_000`` scalings.
# ----------------------------------------------------------------------


def us_to_ns(us: Number) -> Ns:
    """Microseconds -> nanoseconds (exact for integral inputs)."""
    return int(us * NS_PER_US)


def ms_to_ns(ms: Number) -> Ns:
    """Milliseconds -> nanoseconds (exact for integral inputs)."""
    return int(ms * NS_PER_MS)


def s_to_ns(s: Number) -> Ns:
    """Seconds -> nanoseconds (exact for integral inputs)."""
    return int(s * NS_PER_S)


def ns_to_us(ns: Ns) -> float:
    """Nanoseconds -> microseconds, as a float (display/report edge)."""
    return ns / NS_PER_US


def ns_to_ms(ns: Ns) -> float:
    """Nanoseconds -> milliseconds, as a float (display/report edge)."""
    return ns / NS_PER_MS


def ns_to_s(ns: Ns) -> float:
    """Nanoseconds -> seconds, as a float (display/report edge)."""
    return ns / NS_PER_S


# ----------------------------------------------------------------------
# Size converters.  Page/block geometry varies per device, so the layout
# quantity (bytes per page, pages per block) is an explicit argument —
# there is no ambient "the page size".
# ----------------------------------------------------------------------


def bytes_to_pages(nbytes: Bytes, page_size: Bytes) -> Pages:
    """Bytes -> whole flash pages, rounding up (a partial page occupies
    a full page of the transfer/mapping machinery)."""
    if page_size <= 0:
        raise ValueError(f"page size must be positive, got {page_size}")
    return -(-nbytes // page_size)


def pages_to_bytes(pages: Pages, page_size: Bytes) -> Bytes:
    """Flash pages -> bytes for a given page size."""
    if page_size <= 0:
        raise ValueError(f"page size must be positive, got {page_size}")
    return pages * page_size


def bytes_to_sectors(nbytes: Bytes, sector_size: Bytes = BYTES_PER_SECTOR) -> Sectors:
    """Bytes -> whole 512-byte host sectors, rounding up."""
    if sector_size <= 0:
        raise ValueError(f"sector size must be positive, got {sector_size}")
    return -(-nbytes // sector_size)


def sectors_to_bytes(sectors: Sectors, sector_size: Bytes = BYTES_PER_SECTOR) -> Bytes:
    """512-byte host sectors -> bytes."""
    if sector_size <= 0:
        raise ValueError(f"sector size must be positive, got {sector_size}")
    return sectors * sector_size


__all__ = [
    "Ns", "Us", "Ms", "Sec", "Count",
    "Bytes", "Sectors", "Pages", "Blocks",
    "Lpn", "Lba", "Ppa", "Ppn", "Pba",
    "NS_PER_US", "NS_PER_MS", "NS_PER_S", "BYTES_PER_SECTOR",
    "us_to_ns", "ms_to_ns", "s_to_ns",
    "ns_to_us", "ns_to_ms", "ns_to_s",
    "bytes_to_pages", "pages_to_bytes",
    "bytes_to_sectors", "sectors_to_bytes",
]
