"""uio/vfio driver binding.

SPDK setup unbinds the device from the kernel ``nvme`` driver and
rebinds it to ``uio_pci_generic`` (or vfio), after which the kernel no
longer services it — no block device node, no interrupts, user space
owns the BARs.  The binding model enforces that ordering: a stack can
only be built on a device bound to uio, and the kernel stack refuses a
device that has been unbound (mirroring what happens on the real system
when you forget to rebind).
"""

from __future__ import annotations

import enum


class DriverBinding(enum.Enum):
    """Which driver currently owns the PCIe function."""

    KERNEL_NVME = "nvme"
    UIO = "uio_pci_generic"
    UNBOUND = "none"


class UioBinding:
    """Tracks and transitions a device's driver binding."""

    def __init__(self) -> None:
        self.binding = DriverBinding.KERNEL_NVME
        self.transitions = 0

    def unbind(self) -> None:
        """Detach whatever driver owns the device."""
        if self.binding is DriverBinding.UNBOUND:
            raise RuntimeError("device is already unbound")
        self.binding = DriverBinding.UNBOUND
        self.transitions += 1

    def bind_uio(self) -> None:
        """Attach the user-space I/O driver (requires prior unbind)."""
        if self.binding is not DriverBinding.UNBOUND:
            raise RuntimeError(
                f"cannot bind uio while bound to {self.binding.value}; unbind first"
            )
        self.binding = DriverBinding.UIO
        self.transitions += 1

    def bind_kernel(self) -> None:
        """Give the device back to the kernel nvme driver."""
        if self.binding is not DriverBinding.UNBOUND:
            raise RuntimeError(
                f"cannot bind nvme while bound to {self.binding.value}; unbind first"
            )
        self.binding = DriverBinding.KERNEL_NVME
        self.transitions += 1

    @property
    def user_space_ready(self) -> bool:
        return self.binding is DriverBinding.UIO

    @property
    def interrupts_available(self) -> bool:
        """ISRs can only be handled while the kernel driver is bound."""
        return self.binding is DriverBinding.KERNEL_NVME
