"""The SPDK user-space I/O stack.

``sync_io`` is the fio ``spdk`` plugin path: prepare the request in
hugepage-backed buffers, ``nvme_qpair_check_enabled`` (the inline
validity check SPDK performs on every submission — 20 % of its loads,
Fig. 22b), submit straight to the queue pair, then spin in
``spdk_nvme_qpair_process_completions`` /
``nvme_pcie_qpair_process_completions`` until the CQE's phase tag flips.

Everything runs in user mode; the loop never blocks, so the core is
pinned at 100 % (Fig. 20) and the tight ~25 ns iteration generates an
order of magnitude more loads/stores than the kernel's poll (Fig. 21).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional, Tuple

from repro.host.accounting import CpuAccounting, ExecMode
from repro.host.costs import DEFAULT_COSTS, SoftwareCosts, StepCost
from repro.nvme.controller import NvmeController, NvmeTimings, PendingCommand
from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout
from repro.spdk.hugepage import HugePageAllocator
from repro.spdk.uio import UioBinding
from repro.ssd.device import IoOp, SsdDevice
from repro.units import Bytes

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.obs.tracer import IoTrace


class SpdkStack:
    """User-space NVMe driver bound through uio + hugepages."""

    def __init__(
        self,
        sim: Simulator,
        device: SsdDevice,
        *,
        costs: Optional[SoftwareCosts] = None,
        accounting: Optional[CpuAccounting] = None,
        queue_depth: int = 1024,
        nvme_timings: Optional[NvmeTimings] = None,
        hugepages: int = 512,
        faults: "Optional[FaultPlan]" = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.costs = costs or DEFAULT_COSTS
        self.accounting = accounting or CpuAccounting()
        # Environment setup: steal the device from the kernel, map BARs.
        self.binding = UioBinding()
        self.binding.unbind()
        self.binding.bind_uio()
        self.hugepages = HugePageAllocator(hugepages)
        self.bar_region = self.hugepages.map_bar(16 * 1024)
        self.io_buffers = self.hugepages.allocate(4 * 1024 * 1024, "io-buffers")
        # No ISR from user space: interrupts stay off (Section II-B4).
        controller = NvmeController(sim, device, timings=nvme_timings, faults=faults)
        self.qpair = controller.create_queue_pair(
            depth=queue_depth, interrupts_enabled=False
        )
        registry = sim.obs.registry
        self._m_spin_iters = registry.counter(
            "spdk.poll.spin_iters", help="process_completions loop iterations"
        )
        self._m_spin_ns = registry.counter(
            "spdk.poll.spin_ns", unit="ns", help="time spent in the user-space spin"
        )
        self._t_poll_burn = sim.obs.telemetry.series(
            "spdk.poll.burn", "busy", unit="frac"
        )
        #: When set to a list, sync_io appends per-I/O stage timestamps
        #: ``(start, submitted, cqe, done)`` — the latency-anatomy probe.
        self.stage_log: Optional[List[Tuple[int, int, Optional[int], int]]] = None

    # ------------------------------------------------------------------
    def _charge_and_wait(self, step: StepCost, function: str) -> Timeout:
        self.accounting.charge(
            step.ns,
            ExecMode.USER,
            "spdk",
            function,
            loads=step.loads,
            stores=step.stores,
        )
        return self.sim.timeout(step.ns)

    # ------------------------------------------------------------------
    def sync_io(
        self, op: IoOp, offset: Bytes, nbytes: int
    ) -> Generator[Event, Any, int]:
        """Process: one QD-1 I/O through the SPDK fast path.

        Returns the application-observed latency in nanoseconds.
        """
        costs = self.costs
        started = self.sim.now
        tracer = self.sim.obs.tracer
        ctx = (
            tracer.begin_io(op, offset, nbytes, started)
            if tracer.enabled
            else None
        )
        if ctx is not None:
            ctx.phase("submit", started)
        yield self._charge_and_wait(costs.spdk_user_prep, "fio_spdk_plugin")
        yield self._charge_and_wait(
            costs.spdk_check_enabled_iter, "nvme_qpair_check_enabled"
        )
        yield self._charge_and_wait(costs.spdk_submit, "spdk_nvme_ns_cmd_rw")
        pending = self.qpair.submit(op, offset, nbytes, trace=ctx)
        submitted = self.sim.now
        yield from self._process_completions(pending)
        yield self._charge_and_wait(costs.spdk_complete, "io_complete_cb")
        if self.stage_log is not None:
            self.stage_log.append(
                (started, submitted, pending.cqe_ns, self.sim.now)
            )
        if ctx is not None:
            ctx.finish(self.sim.now)
        return self.sim.now - started

    def submit_async(
        self, op: IoOp, offset: Bytes, nbytes: int, *, trace: "Optional[IoTrace]" = None
    ) -> PendingCommand:
        """Queue an I/O without waiting (SPDK is natively asynchronous)."""
        costs = self.costs
        self.accounting.charge(
            costs.spdk_submit.ns,
            ExecMode.USER,
            "spdk",
            "spdk_nvme_ns_cmd_rw",
            loads=costs.spdk_submit.loads + costs.spdk_check_enabled_iter.loads,
            stores=costs.spdk_submit.stores,
        )
        return self.qpair.submit(op, offset, nbytes, trace=trace)

    # ------------------------------------------------------------------
    def _process_completions(
        self, pending: PendingCommand
    ) -> Generator[Event, Any, None]:
        """Spin in the user-space completion loop until the CQE lands."""
        costs = self.costs
        started = self.sim.now
        cqe_event = pending.cqe_event
        if not cqe_event.triggered:
            yield cqe_event
        # The iteration that observes the phase flip.
        detect = costs.spdk_iter_ns
        if pending.trace is not None:
            # CQE visible: the remaining time is user-space detection.
            pending.trace.phase("completion_poll", pending.cqe_ns)
            pending.trace.wait(
                "spdk.poller", "poll_gap", pending.cqe_ns, pending.cqe_ns + detect
            )
        yield self.sim.timeout(detect)
        self._charge_spin(self.sim.now - started)
        self._t_poll_burn.add_interval(started, self.sim.now)

    def _charge_spin(self, spun_ns: int) -> None:
        """Attribute spin time/instructions to the three SPDK functions."""
        costs = self.costs
        period = costs.spdk_iter_ns
        iters = max(1, round(spun_ns / period))
        self._m_spin_iters.inc(iters)
        self._m_spin_ns.inc(spun_ns)
        steps = (
            (costs.spdk_outer_iter, "spdk_nvme_qpair_process_completions"),
            (costs.spdk_inner_iter, "nvme_pcie_qpair_process_completions"),
            (costs.spdk_check_enabled_iter, "nvme_qpair_check_enabled"),
        )
        charged = 0
        for index, (step, function) in enumerate(steps):
            if index == len(steps) - 1:
                ns = spun_ns - charged  # remainder keeps totals exact
            else:
                ns = int(round(spun_ns * step.ns / period))
                charged += ns
            self.accounting.charge(
                max(0, ns),
                ExecMode.USER,
                "spdk",
                function,
                loads=iters * step.loads,
                stores=iters * step.stores,
            )
