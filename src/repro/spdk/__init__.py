"""Kernel-bypass storage stack (Intel SPDK, Section II-B4).

SPDK unbinds the NVMe device from the kernel driver, rebinds it to a
user-space I/O driver (uio), maps the PCIe BARs into pinned hugepages
(via DPDK's memory manager), and drives the queue pairs entirely from
user space.  Interrupts cannot be serviced there, so completion is a
continuous user-space poll loop — cheap per iteration, but it owns the
core and hammers memory (Figs. 20-22).
"""

from repro.spdk.hugepage import HugePageAllocator, HugePageRegion
from repro.spdk.uio import DriverBinding, UioBinding
from repro.spdk.stack import SpdkStack

__all__ = [
    "HugePageAllocator",
    "HugePageRegion",
    "UioBinding",
    "DriverBinding",
    "SpdkStack",
]
