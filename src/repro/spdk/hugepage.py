"""DPDK-style hugepage memory management.

SPDK maps NVMe BARs and allocates all I/O buffers out of pinned 2 MiB
hugepages so that user-space DMA addresses stay stable (hugepages are
"mostly not swapped out", Section II-B4).  This module models the
allocator: regions are carved from hugepages, pinned, and addressable —
enough substrate for the stack to bind against and for tests to verify
the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

HUGEPAGE_BYTES = 2 * 1024 * 1024


@dataclass(frozen=True)
class HugePageRegion:
    """A pinned allocation inside hugepage-backed memory."""

    base_addr: int
    nbytes: int
    purpose: str

    @property
    def end_addr(self) -> int:
        return self.base_addr + self.nbytes


class HugePageAllocator:
    """Bump allocator over a fixed pool of pinned 2 MiB hugepages."""

    def __init__(self, n_pages: int = 512) -> None:
        if n_pages < 1:
            raise ValueError("need at least one hugepage")
        self.n_pages = n_pages
        self.pool_bytes = n_pages * HUGEPAGE_BYTES
        self._cursor = 0
        self.regions: List[HugePageRegion] = []

    @property
    def used_bytes(self) -> int:
        return self._cursor

    @property
    def free_bytes(self) -> int:
        return self.pool_bytes - self._cursor

    def allocate(self, nbytes: int, purpose: str) -> HugePageRegion:
        """Carve a pinned region; raises MemoryError when the pool is dry."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        # Align to 4 KiB like rte_malloc does for I/O buffers.
        aligned = (nbytes + 4095) & ~4095
        if aligned > self.free_bytes:
            raise MemoryError(
                f"hugepage pool exhausted: want {aligned}, have {self.free_bytes}"
            )
        region = HugePageRegion(
            base_addr=self._cursor, nbytes=aligned, purpose=purpose
        )
        self._cursor += aligned
        self.regions.append(region)
        return region

    def map_bar(self, bar_bytes: int) -> HugePageRegion:
        """Map a PCIe BAR window (doorbells + queues) into the pool."""
        return self.allocate(bar_bytes, purpose="pcie-bar")
