"""Command-line entry point: ``python -m repro <figure-id> [...]``.

Runs one or more figure reproductions and prints their tables.  Use
``--scale`` to shrink I/O counts for a quick look (0.1 = 10 % of the
default samples), ``--list`` to enumerate figure ids.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.core.figures import FIGURES, run_figure
from repro.core.report import render_figure


def _scaled_kwargs(figure_id: str, scale: float) -> dict:
    fn = FIGURES[figure_id]
    params = inspect.signature(fn).parameters
    if scale == 1.0 or "io_count" not in params:
        return {}
    default = params["io_count"].default
    if not default:  # figures that choose their own count (GC runs)
        return {}
    return {"io_count": max(100, int(default * scale))}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from 'Faster than Flash' (IISWC'19)",
    )
    parser.add_argument("figures", nargs="*", help="figure ids (e.g. fig10 fig18)")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="I/O-count scale factor (default 1.0)"
    )
    args = parser.parse_args(argv)

    if args.list:
        for figure_id, fn in sorted(FIGURES.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{figure_id:8s} {doc}")
        return 0

    targets = sorted(FIGURES) if args.all else args.figures
    if not targets:
        parser.print_usage()
        return 2
    for figure_id in targets:
        if figure_id not in FIGURES:
            print(f"unknown figure {figure_id!r}; try --list", file=sys.stderr)
            return 2
        started = time.time()
        result = run_figure(figure_id, **_scaled_kwargs(figure_id, args.scale))
        print(render_figure(result))
        print(f"   [{time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
