"""Command-line entry point: ``python -m repro <figure-id> [...]``.

Runs one or more figure reproductions and prints their tables.  Use
``--scale`` to grow or shrink I/O counts (0.1 = 10 % of the default
samples, 2.0 = double), ``--list`` to enumerate figure ids.

Execution flags configure the sweep engine every figure runs on:

* ``--jobs N`` — fan independent measurements out across N worker
  processes (results are merged by point key, so output is
  bit-identical to serial);
* ``--cache-dir DIR`` — persist measurements on disk (default
  ``~/.cache/repro``; a warm rerun executes zero simulations);
* ``--no-cache`` — keep everything in-process only.

Observability flags wrap each figure run in a fresh
:class:`repro.obs.core.Observability` bundle:

* ``--trace-out FILE`` — write a Chrome ``trace_event`` JSON of every
  I/O's spans (load it in Perfetto or ``chrome://tracing``);
* ``--metrics`` / ``--metrics-out FILE`` — dump the metrics registry as
  text / CSV;
* ``--anatomy`` — print the span-level latency-anatomy breakdown.

With several figures selected, file outputs get a per-figure suffix
(``trace.json`` becomes ``trace.fig10.json``).
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time

from repro.core import sweep as sweep_engine
from repro.core.figures import FIGURES, run_figure
from repro.core.report import render_figure


def _scaled_kwargs(figure_id: str, scale: float, seed=None) -> dict:
    """Per-figure keyword overrides for ``--scale`` and ``--seed``.

    Scaling grows as well as shrinks; shrinking keeps a 100-I/O floor so
    percentiles stay meaningful.  Figures that pick their own I/O count
    (``io_count=0`` defaults — the self-scaling GC runs) or take none at
    all ignore ``--scale`` with a note on stderr.
    """
    fn = FIGURES[figure_id]
    params = inspect.signature(fn).parameters
    kwargs = {}
    if seed is not None and "seed" in params:
        kwargs["seed"] = seed
    if scale != 1.0:
        default = (
            params["io_count"].default if "io_count" in params else None
        )
        if not default:
            print(
                f"note: {figure_id} chooses its own I/O count; "
                "--scale has no effect",
                file=sys.stderr,
            )
        else:
            count = int(default * scale)
            if scale < 1.0:
                count = max(100, count)
            kwargs["io_count"] = count
    return kwargs


def _suffixed(path: str, figure_id: str, multi: bool) -> str:
    if not multi:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}.{figure_id}{ext}"


def _emit_observability(obs, figure_id: str, args, multi: bool) -> None:
    from repro.obs.anatomy import AnatomyReport
    from repro.obs.export import (
        metrics_to_text,
        write_chrome_trace,
        write_metrics_csv,
    )

    if args.anatomy:
        print(AnatomyReport.from_tracer(obs.tracer).render())
        print()
    if args.metrics:
        print(metrics_to_text(obs.registry))
        print()
    if args.trace_out:
        path = _suffixed(args.trace_out, figure_id, multi)
        count = write_chrome_trace(obs.tracer, path)
        print(f"wrote {count} trace events to {path}", file=sys.stderr)
    if args.metrics_out:
        path = _suffixed(args.metrics_out, figure_id, multi)
        write_metrics_csv(obs.registry, path)
        print(f"wrote metrics to {path}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from 'Faster than Flash' (IISWC'19)",
    )
    parser.add_argument("figures", nargs="*", help="figure ids (e.g. fig10 fig18)")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="I/O-count scale factor (default 1.0)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the device seed on figures that accept one",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent measurements across N worker processes",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "persist measurements under DIR "
            f"(default {sweep_engine.DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent measurement cache",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write per-I/O spans as Chrome trace_event JSON (Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry after each figure",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the metrics registry as CSV",
    )
    parser.add_argument(
        "--anatomy",
        action="store_true",
        help="print the span-level latency-anatomy breakdown",
    )
    args = parser.parse_args(argv)

    if args.list:
        for figure_id, fn in sorted(FIGURES.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{figure_id:8s} {doc}")
        return 0

    targets = sorted(FIGURES) if args.all else args.figures
    if not targets:
        parser.print_usage()
        return 2
    cache_dir = None if args.no_cache else (
        args.cache_dir or sweep_engine.DEFAULT_CACHE_DIR
    )
    engine = sweep_engine.configure(jobs=args.jobs, cache_dir=cache_dir)
    observing = bool(
        args.trace_out or args.metrics or args.metrics_out or args.anatomy
    )
    multi = len(targets) > 1
    for figure_id in targets:
        if figure_id not in FIGURES:
            print(f"unknown figure {figure_id!r}; try --list", file=sys.stderr)
            return 2
        kwargs = _scaled_kwargs(figure_id, args.scale, seed=args.seed)
        started = time.time()
        before = engine.stats.snapshot()
        if observing:
            from repro.obs.core import Observability

            obs = Observability()
            with obs:
                result = run_figure(figure_id, **kwargs)
        else:
            obs = None
            result = run_figure(figure_id, **kwargs)
        print(render_figure(result))
        print(f"   [{time.time() - started:.1f}s]\n")
        after = engine.stats.snapshot()
        delta = {key: after[key] - before[key] for key in after}
        print(
            f"{figure_id}: points={delta['points']} "
            f"executed={delta['executed']} memo={delta['memo_hits']} "
            f"disk={delta['disk_hits']} traced={delta['traced']}",
            file=sys.stderr,
        )
        if obs is not None:
            _emit_observability(obs, figure_id, args, multi)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
