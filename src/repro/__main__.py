"""Command-line entry point: ``python -m repro <subcommand> [...]``.

Two quality-gate subcommands stand alone (see ``docs/lint.md``):

* ``lint`` — run simlint, the determinism, invariant & unit/dimension
  static analyzer (``SIM000``-``SIM014``; the SIM01x codes come from the
  interprocedural flow pass, :mod:`repro.lint.flow`), over the given
  paths (default ``src tests``); ``--format json``/``sarif`` for
  machine-readable output, ``--baseline``/``--write-baseline`` for
  adopting a dirty tree, non-zero exit on findings.  Full runs are
  served from a content-hash cache (``--no-cache`` bypasses).
* ``check`` — aggregate gate: simlint plus ``ruff`` and strict ``mypy``
  when installed (skipped with a notice otherwise; ``--strict-tools``
  turns a skip into a failure).

Six subcommands share one flag vocabulary:

* ``figures`` — run figure reproductions and print their tables.  The
  historical flat form (``python -m repro fig10 --scale 0.2``) still
  works: a first argument that is not a subcommand is treated as
  ``figures ...``.
* ``sweep`` — execute figures for their measurements only (a cache
  warmer): no tables, just per-figure engine statistics.  ``--clear-cache``
  empties the persistent cache first.
* ``trace`` — run ONE figure under a fresh observability bundle and
  report what the spans say; defaults to the latency-anatomy breakdown
  when no other observability output is selected.
* ``blame`` — run ONE figure under wait-for blame attribution
  (:mod:`repro.obs.blame`): verify the wait/service conservation
  invariant on every traced I/O (printing a machine-checkable
  ``conservation: OK`` line), then the tail-latency blame table —
  which resource held the slowest requests, per (device, op) group —
  plus SLO attainment for each ``--slo`` objective.
* ``perf`` — time figures (wall seconds, sim-events/sec, cache state),
  write a top-level ``BENCH_<date>.json``, and optionally gate against
  a previous document with ``--compare OLD.json`` (``--threshold``
  sets the slowdown gate, ``--warn-only`` reports without failing).
  ``--profile`` runs each figure under the self-profiler and folds the
  per-figure hotspot table into the bench document.
* ``profile`` — run ONE figure under the self-profiler
  (:mod:`repro.obs.prof`): print the hotspot-attribution table and
  event-queue introspection, and optionally export flamegraphs
  (``--profile-out`` speedscope JSON, ``--collapsed`` collapsed-stack
  text) and the queue-depth timeline (``--timeline``, ``.html`` or CSV).

Use ``--scale`` to grow or shrink I/O counts (0.1 = 10 % of the default
samples, 2.0 = double), ``--list`` to enumerate figure ids.

Execution flags configure the sweep engine every figure runs on:

* ``--jobs N`` — fan independent measurements out across N worker
  processes (results are merged by point key, so output is
  bit-identical to serial);
* ``--cache-dir DIR`` — persist measurements on disk (default
  ``~/.cache/repro``; a warm rerun executes zero simulations);
* ``--no-cache`` — keep everything in-process only.

Fault flags install a deterministic :class:`repro.faults.FaultPlan`
around every figure run (workers inherit it, so parallel runs stay
bit-identical to serial):

* ``--faults SPEC`` — e.g. ``--faults nand.read_fail_prob=0.01``,
  repeatable and comma-splittable (``nvme.timeout_prob=1e-3,nvme.max_retries=2``);
* ``--fault-seed N`` — seeds every injector stream; also forwarded to
  figures that take a ``fault_seed`` argument (the ``fault-*`` studies).

Observability flags wrap each figure run in a fresh
:class:`repro.obs.core.Observability` bundle:

* ``--trace-out FILE`` — write a Chrome ``trace_event`` JSON of every
  I/O's spans (load it in Perfetto or ``chrome://tracing``); a
  ``.jsonl`` extension selects the schema-versioned structured-event
  export instead (one JSON object per span/wait-edge/sample);
* ``--metrics`` / ``--metrics-out FILE`` — dump the metrics registry as
  text / CSV;
* ``--anatomy`` — print the span-level latency-anatomy breakdown;
* ``--telemetry`` / ``--telemetry-out FILE`` — record time-series
  telemetry (queue depths, busy fractions, GC/fault activity) and print
  the digest summary / write samples to FILE (``.html`` gets the
  self-contained timeline report, anything else long-format CSV);
  ``--telemetry-period NS`` sets the sample period.  With telemetry on,
  ``--trace-out`` traces also carry counter tracks;
* ``--blame`` / ``--slo SPEC`` / ``--blame-out FILE`` — record wait-for
  blame attribution (``--slo`` and ``--blame-out`` imply ``--blame``):
  print the tail-latency blame table, monitor ``OP:LATENCY[@OBJECTIVE]``
  objectives, and write the report to FILE (``.html`` gets the
  self-contained version).

With several figures selected, file outputs get a per-figure suffix
(``trace.json`` becomes ``trace.fig10.json``).
"""

from __future__ import annotations

import argparse
import contextlib
import inspect
import os
import sys
import time

from repro.core import sweep as sweep_engine
from repro.core.figures import FIGURES, run_figure
from repro.core.report import render_figure

SUBCOMMANDS = (
    "figures", "sweep", "trace", "blame", "perf", "profile", "devices",
    "lint", "check",
)


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (one clean error line)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0 (seeds: 0 is the documented default)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        )
    return value


def _slo_spec(text: str):
    """argparse type: parse OP:LATENCY[@OBJECTIVE] into an SloSpec."""
    from repro.obs.blame import SloSpec

    try:
        return SloSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _scaled_kwargs(figure_id: str, scale: float, seed=None, fault_seed=None) -> dict:
    """Per-figure keyword overrides for ``--scale``/``--seed``/``--fault-seed``.

    Scaling grows as well as shrinks; shrinking keeps a 100-I/O floor so
    percentiles stay meaningful.  Figures that pick their own I/O count
    (``io_count=0`` defaults — the self-scaling GC runs) or take none at
    all ignore ``--scale`` with a note on stderr.
    """
    fn = FIGURES[figure_id]
    params = inspect.signature(fn).parameters
    kwargs = {}
    if seed is not None and "seed" in params:
        kwargs["seed"] = seed
    if fault_seed is not None and "fault_seed" in params:
        kwargs["fault_seed"] = fault_seed
    if scale != 1.0:
        default = (
            params["io_count"].default if "io_count" in params else None
        )
        if not default:
            print(
                f"note: {figure_id} chooses its own I/O count; "
                "--scale has no effect",
                file=sys.stderr,
            )
        else:
            count = int(default * scale)
            if scale < 1.0:
                count = max(100, count)
            kwargs["io_count"] = count
    return kwargs


def _suffixed(path: str, figure_id: str, multi: bool) -> str:
    if not multi:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}.{figure_id}{ext}"


def _wants_telemetry(args) -> bool:
    return bool(
        getattr(args, "telemetry", False)
        or getattr(args, "telemetry_out", None)
        or getattr(args, "telemetry_period", None)
    )


def _telemetry_config(args):
    from repro.obs.telemetry import DEFAULT_PERIOD_NS, TelemetryConfig

    return TelemetryConfig(
        period_ns=args.telemetry_period or DEFAULT_PERIOD_NS
    )


def _wants_blame(args) -> bool:
    return bool(
        getattr(args, "blame", False)
        or getattr(args, "slo", None)
        or getattr(args, "blame_out", None)
    )


def _blame_config(args):
    from repro.obs.blame import DEFAULT_TOP, BlameConfig

    return BlameConfig(
        top=getattr(args, "top", None) or DEFAULT_TOP,
        slos=tuple(getattr(args, "slo", None) or ()),
    )


def _emit_observability(obs, figure_id: str, args, multi: bool) -> None:
    from repro.obs.anatomy import AnatomyReport
    from repro.obs.export import (
        metrics_to_text,
        telemetry_to_text,
        write_chrome_trace,
        write_metrics_csv,
        write_telemetry_csv,
    )

    if args.anatomy:
        print(AnatomyReport.from_tracer(obs.tracer).render())
        print()
    if args.metrics:
        print(metrics_to_text(obs.registry))
        print()
    if args.telemetry:
        print(telemetry_to_text(obs.telemetry))
        print()
    blame = getattr(obs, "blame", None)
    if blame is not None and (
        getattr(args, "blame", False) or getattr(args, "slo", None)
    ):
        from repro.obs.blame import blame_table

        print(blame_table(blame))
        print()
    if args.trace_out:
        path = _suffixed(args.trace_out, figure_id, multi)
        telemetry = obs.telemetry if obs.telemetry.enabled else None
        if path.endswith(".jsonl"):
            from repro.obs.export import write_trace_jsonl

            count = write_trace_jsonl(obs.tracer, path, telemetry=telemetry)
            print(f"wrote {count} JSONL events to {path}", file=sys.stderr)
        else:
            count = write_chrome_trace(obs.tracer, path, telemetry=telemetry)
            print(f"wrote {count} trace events to {path}", file=sys.stderr)
    if args.metrics_out:
        path = _suffixed(args.metrics_out, figure_id, multi)
        write_metrics_csv(obs.registry, path)
        print(f"wrote metrics to {path}", file=sys.stderr)
    if args.telemetry_out:
        path = _suffixed(args.telemetry_out, figure_id, multi)
        if path.endswith((".html", ".htm")):
            from repro.obs.html import write_telemetry_html

            write_telemetry_html(
                obs.telemetry, path,
                title=f"Telemetry timeline — {figure_id}",
            )
        else:
            write_telemetry_csv(obs.telemetry, path)
        print(f"wrote telemetry to {path}", file=sys.stderr)
    if blame is not None and getattr(args, "blame_out", None):
        from repro.obs.blame import blame_table

        path = _suffixed(args.blame_out, figure_id, multi)
        if path.endswith((".html", ".htm")):
            from repro.obs.html import write_blame_html

            write_blame_html(
                blame, path, title=f"Tail-latency blame — {figure_id}"
            )
        else:
            from repro.obs.export import atomic_write_text

            atomic_write_text(path, blame_table(blame) + "\n")
        print(f"wrote blame report to {path}", file=sys.stderr)


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--device",
        metavar="NAME|PATH",
        default=None,
        help=(
            "run every figure against this device instead of the "
            "paper's presets: a registry name (see `python -m repro "
            "devices list`) or a .toml/.json spec file"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent measurements across N worker processes",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "persist measurements under DIR "
            f"(default {sweep_engine.DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent measurement cache",
    )


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "inject faults: layer.field=value "
            "(e.g. nand.read_fail_prob=0.01); repeatable, comma-splittable"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "seed for every fault-injector stream (default 0); also passed "
            "to figures that accept a fault_seed argument"
        ),
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write per-I/O spans as Chrome trace_event JSON (Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry after each figure",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the metrics registry as CSV",
    )
    parser.add_argument(
        "--anatomy",
        action="store_true",
        help="print the span-level latency-anatomy breakdown",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record time-series telemetry and print the digest summary",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="FILE",
        default=None,
        help=(
            "write telemetry samples to FILE (.html -> self-contained "
            "timeline report, anything else -> long-format CSV)"
        ),
    )
    parser.add_argument(
        "--telemetry-period",
        type=_positive_int,
        default=None,
        metavar="NS",
        help="telemetry sample period in sim nanoseconds (default 10000)",
    )
    parser.add_argument(
        "--blame",
        action="store_true",
        help=(
            "record per-I/O wait-for blame attribution and print the "
            "tail-latency blame table after each figure"
        ),
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=[],
        type=_slo_spec,
        metavar="SPEC",
        help=(
            "monitor a latency SLO: OP:LATENCY[@OBJECTIVE], e.g. "
            "read:150us@0.999 or '*:1ms@99%%'; repeatable; implies --blame"
        ),
    )
    parser.add_argument(
        "--blame-out",
        metavar="FILE",
        default=None,
        help=(
            "write the blame report to FILE (.html -> self-contained "
            "report, anything else -> the text table); implies --blame"
        ),
    )


def _add_select_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("figures", nargs="*", help="figure ids (e.g. fig10 fig18)")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="I/O-count scale factor (default 1.0)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the device seed on figures that accept one",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from 'Faster than Flash' (IISWC'19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser(
        "figures",
        help="run figure reproductions and print their tables (default)",
    )
    _add_select_flags(figures)
    _add_exec_flags(figures)
    _add_fault_flags(figures)
    _add_obs_flags(figures)

    warm = sub.add_parser(
        "sweep",
        help="execute figures for their measurements only (cache warmer)",
    )
    _add_select_flags(warm)
    _add_exec_flags(warm)
    _add_fault_flags(warm)
    _add_obs_flags(warm)
    warm.add_argument(
        "--clear-cache",
        action="store_true",
        help="empty the persistent measurement cache before running",
    )

    perf = sub.add_parser(
        "perf",
        help="time benchmark figures; write/compare BENCH_<date>.json",
    )
    perf.add_argument("figures", nargs="*", help="figure ids to time")
    perf.add_argument("--all", action="store_true", help="time every figure")
    perf.add_argument(
        "--scale", type=float, default=1.0, help="I/O-count scale factor"
    )
    perf.add_argument(
        "--seed", type=int, default=None, help="device-seed override"
    )
    perf.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="bench document path (default ./BENCH_<date>.json)",
    )
    perf.add_argument(
        "--compare",
        metavar="OLD.json",
        default=None,
        help="compare this run (or --against FILE) to a previous document",
    )
    perf.add_argument(
        "--against",
        metavar="NEW.json",
        default=None,
        help="with --compare: diff two existing documents, run nothing",
    )
    perf.add_argument(
        "--threshold",
        type=_positive_float,
        default=None,
        help="slowdown gate as a fraction (default 0.30 = fail past +30%%)",
    )
    perf.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit zero (CI smoke mode)",
    )
    perf.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run each figure under the self-profiler and record its "
            "hotspot table in the bench document (adds overhead: "
            "profiled wall times are not comparable to unprofiled ones)"
        ),
    )
    _add_exec_flags(perf)

    profile = sub.add_parser(
        "profile",
        help="run ONE figure under the self-profiler (repro.obs.prof)",
    )
    profile.add_argument(
        "figures", nargs=1, metavar="figure", help="figure id"
    )
    profile.add_argument(
        "--scale", type=float, default=1.0, help="I/O-count scale factor"
    )
    profile.add_argument(
        "--seed", type=int, default=None, help="device-seed override"
    )
    profile.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="write a speedscope JSON flamegraph (open at speedscope.app)",
    )
    profile.add_argument(
        "--collapsed",
        metavar="FILE",
        default=None,
        help="write collapsed-stack text (FlameGraph tool input)",
    )
    profile.add_argument(
        "--timeline",
        metavar="FILE",
        default=None,
        help=(
            "write the queue-introspection time series "
            "(.html -> timeline report, anything else -> CSV)"
        ),
    )
    profile.add_argument(
        "--no-wall",
        action="store_true",
        help="skip perf_counter wall sampling (exact event counts only)",
    )
    profile.add_argument(
        "--top",
        type=_positive_int,
        default=15,
        metavar="N",
        help="hotspot table size (default 15)",
    )
    profile.add_argument(
        "--period",
        type=_positive_int,
        default=None,
        metavar="NS",
        help="queue-series sample period in sim nanoseconds (default 10000)",
    )
    _add_exec_flags(profile)
    _add_fault_flags(profile)

    # `devices`, `lint`, and `check` are dispatched before this parser
    # runs (their argument vocabulary is their own); the stubs exist so
    # the top-level --help lists them.
    sub.add_parser(
        "devices",
        help="inspect the device registry: list names, show resolved specs",
        add_help=False,
    )
    sub.add_parser(
        "lint",
        help="run simlint, the determinism static analyzer (docs/lint.md)",
        add_help=False,
    )
    sub.add_parser(
        "check",
        help="aggregate gate: simlint + ruff + strict mypy",
        add_help=False,
    )

    trace = sub.add_parser(
        "trace",
        help="run ONE figure under observability (defaults to --anatomy)",
    )
    trace.add_argument("figures", nargs=1, metavar="figure", help="figure id")
    trace.add_argument(
        "--scale", type=float, default=1.0, help="I/O-count scale factor"
    )
    trace.add_argument(
        "--seed", type=int, default=None, help="device-seed override"
    )
    _add_exec_flags(trace)
    _add_fault_flags(trace)
    _add_obs_flags(trace)

    blame = sub.add_parser(
        "blame",
        help=(
            "run ONE figure under blame attribution: verify wait/service "
            "conservation, print the tail-latency blame table"
        ),
    )
    blame.add_argument("figures", nargs=1, metavar="figure", help="figure id")
    blame.add_argument(
        "--scale", type=float, default=1.0, help="I/O-count scale factor"
    )
    blame.add_argument(
        "--seed", type=int, default=None, help="device-seed override"
    )
    blame.add_argument(
        "--top",
        type=_positive_int,
        default=None,
        metavar="K",
        help="slowest requests kept per (device, op) group (default 10)",
    )
    _add_exec_flags(blame)
    _add_fault_flags(blame)
    _add_obs_flags(blame)
    return parser


def _fault_context(args):
    """The ambient fault plan requested on the command line (or a no-op)."""
    if not args.faults:
        return contextlib.nullcontext()
    from repro.faults.plan import parse_fault_spec

    plan = parse_fault_spec(args.faults, seed=args.fault_seed or 0)
    return plan.installed()


def _device_context(args):
    """The ambient --device override (or a no-op).

    Validation happens on entry, so a bad name fails before any figure
    runs; the substitution itself lands in each point's declared
    parameters (see :func:`repro.ssd.registry.device_override`).
    """
    device = getattr(args, "device", None)
    if device is None:
        return contextlib.nullcontext()
    from repro.ssd.registry import device_override

    return device_override(device)


def _configure_engine(args) -> "sweep_engine.SweepEngine":
    cache_dir = None if args.no_cache else (
        args.cache_dir or sweep_engine.DEFAULT_CACHE_DIR
    )
    if getattr(args, "clear_cache", False) and cache_dir is not None:
        import shutil
        from pathlib import Path

        root = Path(cache_dir).expanduser()
        if root.is_dir():
            shutil.rmtree(root)
            print(f"cleared measurement cache at {root}", file=sys.stderr)
    return sweep_engine.configure(jobs=args.jobs, cache_dir=cache_dir)


def _select_targets(parser, args):
    if getattr(args, "list", False):
        for figure_id, fn in sorted(FIGURES.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{figure_id:8s} {doc}")
        return None
    targets = sorted(FIGURES) if getattr(args, "all", False) else args.figures
    if not targets:
        parser.print_usage()
        return []
    return targets


def _run_targets(targets, args, *, render: bool, observing: bool) -> int:
    engine = _configure_engine(args)
    multi = len(targets) > 1
    with _fault_context(args), _device_context(args):
        for figure_id in targets:
            if figure_id not in FIGURES:
                print(
                    f"unknown figure {figure_id!r}; try --list", file=sys.stderr
                )
                return 2
            kwargs = _scaled_kwargs(
                figure_id, args.scale, seed=args.seed,
                fault_seed=args.fault_seed,
            )
            started = time.time()
            before = engine.stats.snapshot()
            if observing:
                from repro.obs.core import Observability

                obs = Observability(
                    telemetry=_telemetry_config(args)
                    if _wants_telemetry(args)
                    else None,
                    blame=_blame_config(args) if _wants_blame(args) else None,
                )
                with obs:
                    result = run_figure(figure_id, **kwargs)
            else:
                obs = None
                result = run_figure(figure_id, **kwargs)
            if render:
                print(render_figure(result))
                print(f"   [{time.time() - started:.1f}s]\n")
            after = engine.stats.snapshot()
            delta = {key: after[key] - before[key] for key in after}
            print(
                f"{figure_id}: points={delta['points']} "
                f"executed={delta['executed']} memo={delta['memo_hits']} "
                f"disk={delta['disk_hits']} traced={delta['traced']} "
                f"[{time.time() - started:.1f}s]",
                file=sys.stderr,
            )
            if obs is not None:
                _emit_observability(obs, figure_id, args, multi)
    return 0


def _cmd_blame(parser, args) -> int:
    """``python -m repro blame FIGURE``: blame attribution with a
    machine-checkable conservation line (CI greps for ``conservation: OK``).
    """
    from repro.obs.anatomy import verify_conservation
    from repro.obs.blame import blame_table, verify_blame_conservation
    from repro.obs.core import Observability

    figure_id = args.figures[0]
    if figure_id not in FIGURES:
        print(f"unknown figure {figure_id!r}; try --list", file=sys.stderr)
        return 2
    _configure_engine(args)
    kwargs = _scaled_kwargs(
        figure_id, args.scale, seed=args.seed, fault_seed=args.fault_seed
    )
    obs = Observability(
        telemetry=_telemetry_config(args) if _wants_telemetry(args) else None,
        blame=_blame_config(args),
    )
    started = time.time()
    with _fault_context(args), _device_context(args), obs:
        run_figure(figure_id, **kwargs)
    elapsed = time.time() - started
    traced = verify_conservation(obs.tracer)
    outliers = verify_blame_conservation(obs.blame)
    print(f"conservation: OK ({outliers} outliers over {traced} I/Os)")
    print()
    print(blame_table(obs.blame))
    # The table is printed; leave _emit_observability the file outputs
    # and any other observability flags the caller set.
    args.blame = False
    args.slo = []
    _emit_observability(obs, figure_id, args, multi=False)
    print(f"[{elapsed:.1f}s]", file=sys.stderr)
    return 0


def _cmd_perf(parser, args) -> int:
    from repro import perf as perf_harness

    threshold = (
        args.threshold
        if args.threshold is not None
        else perf_harness.DEFAULT_THRESHOLD
    )
    if args.against:
        if not args.compare:
            print("--against requires --compare OLD.json", file=sys.stderr)
            return 2
        comparison = perf_harness.compare_docs(
            perf_harness.load_bench(args.compare),
            perf_harness.load_bench(args.against),
            threshold=threshold,
        )
        print(comparison.render())
        return 0 if (comparison.ok or args.warn_only) else 1

    targets = sorted(FIGURES) if args.all else args.figures
    if not targets:
        parser.print_usage()
        print(
            "perf: name figures to time (or --all), or give "
            "--compare OLD --against NEW",
            file=sys.stderr,
        )
        return 2
    for figure_id in targets:
        if figure_id not in FIGURES:
            print(f"unknown figure {figure_id!r}; try --list", file=sys.stderr)
            return 2
    # Honest timing by default: skip the persistent cache unless the
    # caller explicitly pointed at one (cache state is recorded either
    # way, and comparisons refuse to gate across mismatched states).
    if not args.cache_dir:
        args.no_cache = True
    engine = _configure_engine(args)
    session = perf_harness.PerfSession(engine)
    with _device_context(args):
        for figure_id in targets:
            kwargs = _scaled_kwargs(figure_id, args.scale, seed=args.seed)
            if args.profile:
                from repro.obs.core import Observability
                from repro.obs.prof import ProfilerConfig, bench_hotspots

                # Wall sampling off: the bench already times the whole
                # run, and exact event counts keep the hotspot rows
                # deterministic.
                obs = Observability(
                    tracing=False,
                    metrics=False,
                    profile=ProfilerConfig(wall=False),
                )
                with session.measure(figure_id), obs:
                    run_figure(figure_id, **kwargs)
                session.records[figure_id].hotspots = tuple(
                    bench_hotspots(obs.profiler)
                )
            else:
                with session.measure(figure_id):
                    run_figure(figure_id, **kwargs)
            record = session.records[figure_id]
            print(
                f"{figure_id}: {record.wall_s:.2f}s wall, "
                f"{record.sim_events:,} sim events "
                f"({record.events_per_s:,.0f}/s), cache={record.cache}",
                file=sys.stderr,
            )
    doc = session.to_doc(scale=args.scale)
    path = perf_harness.write_bench(doc, args.out)
    print(f"wrote bench document to {path}", file=sys.stderr)
    if args.compare:
        comparison = perf_harness.compare_docs(
            perf_harness.load_bench(args.compare), doc, threshold=threshold
        )
        print(comparison.render())
        return 0 if (comparison.ok or args.warn_only) else 1
    return 0


def _cmd_profile(parser, args) -> int:
    from repro.obs.core import Observability
    from repro.obs.prof import (
        ProfilerConfig,
        hotspot_table,
        queue_report,
        write_collapsed,
        write_speedscope,
    )
    from repro.obs.telemetry import DEFAULT_PERIOD_NS

    figure_id = args.figures[0]
    if figure_id not in FIGURES:
        print(f"unknown figure {figure_id!r}; try --list", file=sys.stderr)
        return 2
    _configure_engine(args)
    config = ProfilerConfig(
        wall=not args.no_wall,
        period_ns=args.period or DEFAULT_PERIOD_NS,
        top=args.top,
    )
    kwargs = _scaled_kwargs(
        figure_id, args.scale, seed=args.seed, fault_seed=args.fault_seed
    )
    obs = Observability(tracing=False, metrics=False, profile=config)
    started = time.time()
    with _fault_context(args), _device_context(args), obs:
        run_figure(figure_id, **kwargs)
    elapsed = time.time() - started
    prof = obs.profiler
    print(f"== hotspots: {figure_id} ({elapsed:.1f}s wall) ==")
    print(hotspot_table(prof))
    print()
    print("== event queue ==")
    print(queue_report(prof))
    if args.profile_out:
        write_speedscope(prof, args.profile_out, name=f"repro {figure_id}")
        print(
            f"wrote speedscope profile to {args.profile_out}", file=sys.stderr
        )
    if args.collapsed:
        write_collapsed(prof, args.collapsed)
        print(
            f"wrote collapsed stacks to {args.collapsed}", file=sys.stderr
        )
    if args.timeline:
        if args.timeline.endswith((".html", ".htm")):
            from repro.obs.html import write_telemetry_html

            write_telemetry_html(
                prof.telemetry,
                args.timeline,
                title=f"Sim profiler timeline — {figure_id}",
            )
        else:
            from repro.obs.export import write_telemetry_csv

            write_telemetry_csv(prof.telemetry, args.timeline)
        print(f"wrote queue timeline to {args.timeline}", file=sys.stderr)
    return 0


def _cmd_devices(argv) -> int:
    """``python -m repro devices list|show NAME [--format toml|json]``."""
    from repro.ssd.registry import (
        PRESET_NAMES,
        get_spec,
        list_devices,
        load_device_spec,
        resolve_spec,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro devices",
        description="Inspect the device registry (see docs/devices.md)",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    sub.add_parser("list", help="one line per registered device")
    show = sub.add_parser(
        "show", help="dump one device's fully resolved spec"
    )
    show.add_argument("name", help="registry name or spec-file path")
    show.add_argument(
        "--format",
        choices=("toml", "json"),
        default="toml",
        help="output format (default toml)",
    )
    args = parser.parse_args(argv)

    if args.action == "list":
        names = list_devices()
        width = max(len(n) for n in names + PRESET_NAMES)
        for name in names:
            spec = get_spec(name)
            print(f"{name:{width}s}  {spec.label}")
        for name in PRESET_NAMES:
            twin = "zssd" if name == "ull" else "intel750"
            print(
                f"{name:{width}s}  (preset alias; spec twin: {twin})"
            )
        return 0

    name = args.name
    if name in PRESET_NAMES:
        # Present the preset through its generated spec twin.
        from repro.ssd.registry import resolve_config
        from repro.ssd.spec import spec_from_config

        spec = spec_from_config(resolve_config(name), name=name)
    elif "/" in name or name.endswith((".toml", ".json")):
        spec = load_device_spec(name)
    else:
        spec = resolve_spec(name)
    if args.format == "json":
        print(spec.to_json())
    else:
        print(spec.to_toml(), end="")
    print(f"# spec_hash: {spec.spec_hash()}", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `devices`/`lint`/`check` own their argument vocabulary and share
    # nothing with the figure runners: dispatch before the
    # figure-oriented parser gets a say.
    if argv and argv[0] == "devices":
        from repro.ssd.spec import DeviceSpecError

        try:
            return _cmd_devices(argv[1:])
        except DeviceSpecError as exc:
            print(f"devices: {exc}", file=sys.stderr)
            return 2
    if argv and argv[0] == "lint":
        from repro.lint.cli import run_lint

        return run_lint(argv[1:])
    if argv and argv[0] == "check":
        from repro.lint.cli import run_check

        return run_check(argv[1:])
    # Back-compat flat form: `python -m repro fig10 --scale 0.2` (and
    # bare option forms like `--list`) are `figures ...`.  Top-level
    # help still reaches the subcommand overview.
    if argv and argv[0] not in SUBCOMMANDS and argv[0] not in ("-h", "--help"):
        argv.insert(0, "figures")
    parser = _build_parser()
    if not argv:
        parser.print_usage()
        return 2
    args = parser.parse_args(argv)

    from repro.ssd.spec import DeviceSpecError

    try:
        return _dispatch(parser, args)
    except DeviceSpecError as exc:
        # The single-error contract: a bad device spec (or --device
        # name) is one message naming file, key path, and value — never
        # a mid-construction traceback.
        print(f"device spec error: {exc}", file=sys.stderr)
        return 2


def _dispatch(parser, args) -> int:
    if args.command == "perf":
        return _cmd_perf(parser, args)

    if args.command == "profile":
        return _cmd_profile(parser, args)

    if args.command == "blame":
        return _cmd_blame(parser, args)

    if args.command == "trace":
        # Observability is the point: fall back to the anatomy report
        # when no output was chosen explicitly.
        if not (
            args.trace_out
            or args.metrics
            or args.metrics_out
            or args.anatomy
            or _wants_telemetry(args)
            or _wants_blame(args)
        ):
            args.anatomy = True
        return _run_targets(args.figures, args, render=True, observing=True)

    targets = _select_targets(parser, args)
    if targets is None:
        return 0
    if not targets:
        return 2
    observing = bool(
        args.trace_out
        or args.metrics
        or args.metrics_out
        or args.anatomy
        or _wants_telemetry(args)
        or _wants_blame(args)
    )
    if args.command == "sweep":
        return _run_targets(targets, args, render=False, observing=observing)
    return _run_targets(targets, args, render=True, observing=observing)


if __name__ == "__main__":
    raise SystemExit(main())
