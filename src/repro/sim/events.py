"""Events: the unit of synchronization in the simulation kernel.

An :class:`Event` starts *pending* and is later *triggered* exactly once
with a value (success) or an exception (failure).  Callbacks registered on
the event run when it triggers; a :class:`~repro.sim.process.Process` that
yields an event is resumed through such a callback.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.sim import sanitize
from repro.units import Ns


class Event:
    """A one-shot synchronization point.

    Events are created through :meth:`repro.sim.engine.Simulator.event`
    (or subclasses such as :class:`Timeout`).  They may be triggered
    immediately or at any later simulated time.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_exception")

    def __init__(self, sim: "Simulator") -> None:  # noqa: F821
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        """True once the event has fired (successfully or not)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event fired without an exception."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if the event failed or is pending."""
        if not self._triggered:
            raise RuntimeError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered, the callback runs immediately.
        """
        if self._triggered:
            callback(self)
        else:
            assert self._callbacks is not None
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a previously-registered callback.

        A no-op if the callback was never registered or the event has
        already triggered (the callback list is consumed at trigger
        time).  :meth:`repro.sim.process.Process.interrupt` uses this to
        detach the interrupted process from the event it was waiting on,
        so the event's eventual trigger cannot deliver a stale wakeup.
        """
        callbacks = self._callbacks
        if callbacks is not None and callback in callbacks:
            callbacks.remove(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(value, None)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have the exception thrown into
        them at their yield point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: Ns, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class AnyOf(Event):
    """Triggers when the first of several events triggers.

    The value is the event that won the race.  Failures propagate: if the
    first event to fire failed, this event fails with the same exception.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(sim)
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        if getattr(sim, "sanitize", False):
            for event in events:
                sanitize.check_owner(sim, event, "race (AnyOf)")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event.ok:
            self.succeed(event)
        else:
            self.fail(event._exception)  # noqa: SLF001
