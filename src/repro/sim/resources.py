"""Resources: contention points shared by processes.

Three flavors cover everything the device and host models need:

* :class:`Resource` — classic counted resource with a FIFO wait queue
  (channels viewed as mutexes, CPU cores, NBD server worker slots).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``
  (producer/consumer pipelines such as the write-buffer flusher).
* :class:`TimelineResource` — a *timestamp* resource: acquiring it
  reserves the earliest available interval of a given duration.  This is
  the cheap analytic model used for flash channels and dies, where we only
  need each unit's busy timeline, not a process per operation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Tuple

from repro.sim.events import Event
from repro.units import Count, Ns


class Resource:
    """A counted resource with FIFO granting."""

    def __init__(self, sim: "Simulator", capacity: Count = 1) -> None:  # noqa: F821
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a unit is granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO with blocking ``get``."""

    def __init__(self, sim: "Simulator") -> None:  # noqa: F821
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class TimelineResource:
    """A unit whose availability is a single "free at" timestamp.

    ``reserve(duration)`` books the earliest interval starting no sooner
    than *now* and returns ``(start, end)``.  This models FIFO service at
    a hardware unit (flash die, channel bus, DMA engine) without creating
    a simulation process per operation.
    """

    __slots__ = ("sim", "free_at", "busy_ns")

    def __init__(self, sim: "Simulator") -> None:  # noqa: F821
        self.sim = sim
        self.free_at: int = 0
        self.busy_ns: int = 0

    def reserve(self, duration: Ns, not_before: Ns = 0) -> Tuple[int, int]:
        """Book ``duration`` ns; returns the booked ``(start, end)``."""
        if duration < 0:
            raise ValueError("negative duration")
        start = max(self.sim.now, self.free_at, not_before)
        end = start + int(duration)
        self.free_at = end
        self.busy_ns += int(duration)
        return start, end

    def peek_start(self, not_before: int = 0) -> int:
        """Earliest time a new reservation could start (no booking)."""
        return max(self.sim.now, self.free_at, not_before)

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` spent busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)
