"""The sim sanitizer: runtime invariant asserts, off unless asked for.

Static analysis (``repro.lint``) catches determinism hazards it can see in
the source; this module catches the ones only visible at runtime.  Set
``REPRO_SIM_SANITIZE=1`` (CI runs a matrix leg with it) and every
:class:`~repro.sim.engine.Simulator` created afterwards checks:

* **clock monotonicity** — the event queue never hands the engine a
  callback stamped before ``now`` (a corrupted heap entry would otherwise
  silently run the clock backwards);
* **single-engine ownership** — an :class:`~repro.sim.events.Event`
  created on one simulator is never waited on, raced (``AnyOf``), or
  scheduled through another.  Cross-engine waits "work" by accident in
  unsanitized runs (the callback fires on the other engine's clock) and
  are a classic source of phantom latencies.

The checks raise :class:`SimSanitizeError` (an ``AssertionError``
subclass) so a violation fails tests loudly instead of corrupting
results quietly.  Overhead when disabled is one attribute read per
check site.
"""

from __future__ import annotations

import os
from typing import Any

ENV_VAR = "REPRO_SIM_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def enabled() -> bool:
    """True when the current environment asks for sanitized simulation.

    Read at every call (it is only consulted when a ``Simulator`` is
    constructed), so tests can flip the environment variable per-case.
    """
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class SimSanitizeError(AssertionError):
    """A simulation invariant was violated under REPRO_SIM_SANITIZE=1."""


def check_clock(now: int, when: int) -> None:
    """Assert the next callback's timestamp has not gone backwards."""
    if when < now:
        raise SimSanitizeError(
            f"sim clock would run backwards: queued callback at t={when} "
            f"but clock already at t={now} (corrupted event queue?)"
        )


def check_owner(sim: Any, obj: Any, action: str) -> None:
    """Assert ``obj`` (an Event/Process/resource) belongs to ``sim``."""
    owner = getattr(obj, "sim", None)
    if owner is not None and owner is not sim:
        raise SimSanitizeError(
            f"cross-engine {action}: {obj!r} belongs to simulator "
            f"{id(owner):#x} but is used through simulator {id(sim):#x}; "
            "every event/resource must live and die on one engine"
        )
