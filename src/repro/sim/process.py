"""Generator-driven processes.

A process wraps a generator that yields events.  Each time a yielded event
triggers, the process resumes with the event's value; if the event failed,
the exception is thrown into the generator.  A process is itself an event
that triggers with the generator's return value, so processes can wait on
each other by yielding them.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.sim import sanitize
from repro.sim.events import Event


class Interrupted(Exception):
    """Thrown into a process that was interrupted from the outside."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """An event representing the lifetime of a running generator."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Iterator) -> None:  # noqa: F821
        if not hasattr(generator, "send"):
            raise TypeError(
                "process() requires a generator; did you forget to call "
                "the generator function?"
            )
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Start on the next simulation step so creation order does not
        # matter within a single instant.
        sim.post(self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its yield point."""
        if self.triggered:
            raise RuntimeError("cannot interrupt a finished process")
        waiting_on, self._waiting_on = self._waiting_on, None
        if waiting_on is not None and not waiting_on.triggered:
            # Detach for real: the event we were parked on may still
            # trigger later (a pending timeout, a racing AnyOf), and its
            # callback list must no longer reach us — otherwise every
            # interrupt leaves a live callback that fires as a stale
            # wakeup (pure dispatch overhead the profiler counts).
            waiting_on.remove_callback(self._on_event)
        self.sim.post(self._resume, None, Interrupted(cause))

    # ------------------------------------------------------------------
    def _on_event(self, event: Event) -> None:
        if event is not self._waiting_on:
            # Stale wakeup after an interrupt: pure dispatch overhead,
            # which is exactly what the self-profiler wants to count.
            prof = getattr(self.sim, "_prof", None)
            if prof is not None:
                prof.note_stale()
            return
        self._waiting_on = None
        if event.ok:
            self._resume(event._value, None)  # noqa: SLF001
        else:
            self._resume(None, event._exception)  # noqa: SLF001

    def _resume(self, value: Any, exception: BaseException | None) -> None:
        if self.triggered:
            return
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted:
            # Interrupt not handled by the generator: the process dies
            # quietly (it was cancelled on purpose).
            self.succeed(None)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                TypeError(f"process yielded a non-event: {target!r}")
            )
            return
        if getattr(self.sim, "sanitize", False):
            sanitize.check_owner(self.sim, target, "wait (process yield)")
        self._waiting_on = target
        if target.triggered:
            # Flatten recursion: a ready event resumes us as a same-tick
            # microtask instead of recursing synchronously — and, since
            # PR 7, without a heap round-trip.
            self.sim.post(self._on_event, target)
        else:
            target.add_callback(self._on_event)
