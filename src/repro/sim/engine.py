"""The simulation engine: a clock and a time-ordered callback queue.

Time is measured in integer nanoseconds.  Callbacks scheduled for the same
instant run in FIFO order, which makes simulations deterministic.

The queue is a *calendar of same-tick buckets*: every distinct timestamp
owns one FIFO list of callbacks, and a small binary heap indexes only the
distinct timestamps (the heap doubles as the overflow path for far-future
events — a tick is pushed once no matter how many callbacks pile onto
it).  Dispatch drains a whole bucket as one batch without re-sifting the
heap between same-tick callbacks, and callbacks scheduled *for the
current instant while it is being drained* are appended straight onto the
live batch — the microtask ring that lets zero-delay process trampolines
resume without a heap round-trip.  The dispatch order is provably
identical to the classic single-heap engine (see
``tests/test_sim_queue_fuzz.py`` for the differential harness and
``docs/sim-engine.md`` for the invariants).
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.obs.core import current_obs
from repro.sim import sanitize
from repro.sim.events import AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.units import Ns

if TYPE_CHECKING:
    from repro.obs.core import Observability
    from repro.obs.prof import Profiler

#: Process-wide count of executed callbacks, across every simulator ever
#: run in this process.  The perf harness reads deltas of this to report
#: sim-events/second per benchmark figure (meaningful under serial
#: execution; worker processes keep their own counts).  Every drained
#: callback counts — including same-tick batch entries and microtask-ring
#: appends — so the count is identical to what the pre-calendar single
#: heap engine reported.
events_executed_total = 0

#: One queued callback: ``(callback, args)``.  Timestamps live on the
#: bucket, not the entry, and FIFO order within a bucket is list order —
#: no per-entry sequence number is needed.
_Entry = Tuple[Callable, Tuple[Any, ...]]


class Simulator:
    """Discrete-event simulator with a nanosecond integer clock.

    Every simulator carries an observability bundle (``self.obs``): the
    span tracer and metrics registry the stack layers report into.  By
    default it is the currently *installed* bundle (see
    :mod:`repro.obs.core`) — a zero-cost no-op unless something like the
    CLI's ``--trace-out`` installed a recording one.
    """

    def __init__(self, obs: "Optional[Observability]" = None) -> None:
        self.now: int = 0
        #: Calendar buckets: distinct tick -> FIFO batch of entries.
        self._buckets: Dict[int, List[_Entry]] = {}
        #: Min-heap over the distinct ticks present in ``_buckets``.
        self._ticks: List[int] = []
        #: The batch being drained (its tick is ``now``); same-instant
        #: schedules land here — the microtask ring.
        self._batch: Optional[List[_Entry]] = None
        self._batch_pos: int = 0
        #: Exact number of queued-but-not-yet-dispatched callbacks,
        #: including the un-drained remainder of the current batch.
        self._pending: int = 0
        #: Sampled at construction so one test can run sanitized next to
        #: an unsanitized neighbour (see :mod:`repro.sim.sanitize`).
        self.sanitize: bool = sanitize.enabled()
        self.obs = obs if obs is not None else current_obs()
        self.obs.attach(self)
        #: The self-profiler (``repro.obs.prof``), sampled at
        #: construction like ``sanitize``: ``None`` unless the attached
        #: bundle carries an enabled profiler, so the unprofiled hot
        #: path pays exactly one ``is not None`` check per hook.
        profiler = getattr(self.obs, "profiler", None)
        self._prof: "Optional[Profiler]" = (
            profiler if profiler is not None and profiler.enabled else None
        )

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: Ns, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` ``delay`` ns from now."""
        self.schedule_at(self.now + int(delay), callback, *args)

    def schedule_at(self, when: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute time ``when``."""
        now = self.now
        if when < now:
            raise ValueError(f"cannot schedule in the past: {when} < {now}")
        if when == now and self._batch is not None:
            # Microtask ring: the current instant is being drained, so
            # the entry joins the live batch — FIFO position identical
            # to what a heap push with the next sequence number gives.
            self._batch.append((callback, args))
        else:
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = [(callback, args)]
                heapq.heappush(self._ticks, when)
            else:
                bucket.append((callback, args))
        self._pending += 1
        if self._prof is not None:
            self._prof.note_insert(now, when, self._pending)

    def post(self, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at the current instant, after
        everything already queued for it (a zero-delay microtask).

        Equivalent to ``schedule(0, ...)`` but skips the timestamp
        arithmetic; process trampolines resume through this path.
        """
        batch = self._batch
        if batch is not None:
            batch.append((callback, args))
        else:
            now = self.now
            bucket = self._buckets.get(now)
            if bucket is None:
                self._buckets[now] = [(callback, args)]
                heapq.heappush(self._ticks, now)
            else:
                bucket.append((callback, args))
        self._pending += 1
        if self._prof is not None:
            self._prof.note_insert(self.now, self.now, self._pending)

    # ------------------------------------------------------------------
    # Event/process factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: Ns, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create an event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def process(self, generator: Iterator) -> Process:
        """Start a new process driving ``generator``.

        The generator yields :class:`~repro.sim.events.Event` instances
        (including timeouts and other processes) and is resumed with each
        event's value.
        """
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Load the earliest bucket as the current batch.  False if none."""
        if not self._ticks:
            self._batch = None
            return False
        when = heapq.heappop(self._ticks)
        if self.sanitize:
            sanitize.check_clock(self.now, when)
        self.now = when
        self._batch = self._buckets.pop(when)
        self._batch_pos = 0
        return True

    def step(self) -> bool:
        """Run the next scheduled callback.  Returns False if none remain."""
        global events_executed_total
        batch = self._batch
        if batch is None or self._batch_pos >= len(batch):
            if not self._advance():
                return False
            batch = self._batch
        pos = self._batch_pos
        self._batch_pos = pos + 1
        callback, args = batch[pos]  # type: ignore[index]
        self._pending -= 1
        events_executed_total += 1
        prof = self._prof
        if prof is None:
            callback(*args)
        else:
            prof.dispatch(self.now, callback, args, self._pending)
        return True

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        With ``until`` given, the clock is advanced to exactly ``until``
        when the simulation outlives it (pending later callbacks remain
        queued and can be resumed by a further ``run`` call).  A bucket
        whose tick is ``<= until`` is always drained whole — same-tick
        callbacks never straddle the boundary.
        """
        global events_executed_total
        if until is not None:
            until = int(until)
            if until < self.now:
                raise ValueError(f"cannot run backwards: {until} < {self.now}")
        prof = self._prof
        ticks = self._ticks
        buckets = self._buckets
        while True:
            batch = self._batch
            if batch is not None:
                # Drain the whole same-tick batch without touching the
                # heap; the len() is re-read every lap because microtask
                # appends grow the batch under our feet.
                now = self.now
                pos = self._batch_pos
                while pos < len(batch):
                    callback, args = batch[pos]
                    pos += 1
                    self._batch_pos = pos
                    self._pending -= 1
                    events_executed_total += 1
                    if prof is None:
                        callback(*args)
                    else:
                        prof.dispatch(now, callback, args, self._pending)
                self._batch = None
            if not ticks:
                break
            when = ticks[0]
            if until is not None and when > until:
                break
            heapq.heappop(ticks)
            if self.sanitize:
                sanitize.check_clock(self.now, when)
            self.now = when
            self._batch = buckets.pop(when)
            self._batch_pos = 0
        if until is not None and until > self.now:
            self.now = until

    def run_until_event(self, event: Event, limit: Optional[int] = None) -> None:
        """Run until ``event`` triggers (or the queue drains / limit hits)."""
        while not event.triggered:
            if limit is not None:
                when = self.peek()
                if when is not None and when > limit:
                    break
            if not self.step():
                break

    def peek(self) -> Optional[int]:
        """Timestamp of the next callback to run, or ``None`` if drained."""
        batch = self._batch
        if batch is not None and self._batch_pos < len(batch):
            return self.now
        if self._ticks:
            return self._ticks[0]
        return None

    @property
    def pending_count(self) -> int:
        """Number of callbacks still queued (microtask-ring entries and
        the un-drained remainder of the current batch included)."""
        return self._pending
