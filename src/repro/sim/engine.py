"""The simulation engine: a clock and a time-ordered callback queue.

Time is measured in integer nanoseconds.  Callbacks scheduled for the same
instant run in FIFO order (a monotonically increasing sequence number
breaks ties), which makes simulations deterministic.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional

from repro.obs.core import current_obs
from repro.sim import sanitize
from repro.sim.events import AnyOf, Event, Timeout
from repro.sim.process import Process

if TYPE_CHECKING:
    from repro.obs.core import Observability
    from repro.obs.prof import Profiler

#: Process-wide count of executed callbacks, across every simulator ever
#: run in this process.  The perf harness reads deltas of this to report
#: sim-events/second per benchmark figure (meaningful under serial
#: execution; worker processes keep their own counts).
events_executed_total = 0


class Simulator:
    """Discrete-event simulator with a nanosecond integer clock.

    Every simulator carries an observability bundle (``self.obs``): the
    span tracer and metrics registry the stack layers report into.  By
    default it is the currently *installed* bundle (see
    :mod:`repro.obs.core`) — a zero-cost no-op unless something like the
    CLI's ``--trace-out`` installed a recording one.
    """

    def __init__(self, obs: "Optional[Observability]" = None) -> None:
        self.now: int = 0
        self._queue: list = []
        self._seq: int = 0
        #: Sampled at construction so one test can run sanitized next to
        #: an unsanitized neighbour (see :mod:`repro.sim.sanitize`).
        self.sanitize: bool = sanitize.enabled()
        self.obs = obs if obs is not None else current_obs()
        self.obs.attach(self)
        #: The self-profiler (``repro.obs.prof``), sampled at
        #: construction like ``sanitize``: ``None`` unless the attached
        #: bundle carries an enabled profiler, so the unprofiled hot
        #: path pays exactly one ``is not None`` check per hook.
        profiler = getattr(self.obs, "profiler", None)
        self._prof: "Optional[Profiler]" = (
            profiler if profiler is not None and profiler.enabled else None
        )

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` ``delay`` ns from now."""
        self.schedule_at(self.now + int(delay), callback, *args)

    def schedule_at(self, when: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, callback, args))
        if self._prof is not None:
            self._prof.note_insert(self.now, when, len(self._queue))

    # ------------------------------------------------------------------
    # Event/process factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create an event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def process(self, generator: Iterator) -> Process:
        """Start a new process driving ``generator``.

        The generator yields :class:`~repro.sim.events.Event` instances
        (including timeouts and other processes) and is resumed with each
        event's value.
        """
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next scheduled callback.  Returns False if none remain."""
        global events_executed_total
        if not self._queue:
            return False
        when, _seq, callback, args = heapq.heappop(self._queue)
        if self.sanitize:
            sanitize.check_clock(self.now, when)
        self.now = when
        events_executed_total += 1
        prof = self._prof
        if prof is None:
            callback(*args)
        else:
            prof.dispatch(when, callback, args, len(self._queue))
        return True

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        With ``until`` given, the clock is advanced to exactly ``until``
        when the simulation outlives it (pending later callbacks remain
        queued and can be resumed by a further ``run`` call).
        """
        if until is None:
            while self.step():
                pass
            return
        until = int(until)
        if until < self.now:
            raise ValueError(f"cannot run backwards: {until} < {self.now}")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self.now = max(self.now, until)

    def run_until_event(self, event: Event, limit: Optional[int] = None) -> None:
        """Run until ``event`` triggers (or the queue drains / limit hits)."""
        while not event.triggered:
            if limit is not None and self._queue and self._queue[0][0] > limit:
                break
            if not self.step():
                break

    @property
    def pending_count(self) -> int:
        """Number of callbacks still queued."""
        return len(self._queue)
