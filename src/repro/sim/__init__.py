"""Discrete-event simulation substrate.

A small, simpy-like kernel: an event queue ordered by simulated time
(nanoseconds, integers), generator-based processes, and resources.  Every
other subsystem in :mod:`repro` (flash chips, SSD controllers, the kernel
storage stack, SPDK, the NBD server) is built on top of this package.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource, Store, TimelineResource

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AnyOf",
    "Process",
    "Resource",
    "Store",
    "TimelineResource",
]
