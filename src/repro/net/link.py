"""A full-duplex point-to-point network link.

Each direction is an independent serializing resource (10 GbE-class by
default): a message occupies the wire for ``bytes/rate`` after a fixed
propagation + NIC latency.  Protocol/stack processing costs live in the
NBD layer, because that is exactly what differs between the kernel and
DPDK paths.
"""

from __future__ import annotations

from typing import Tuple

from repro.sim.engine import Simulator
from repro.sim.resources import TimelineResource


class NetworkLink:
    """Two independent directional wires between client and server."""

    def __init__(
        self,
        sim: Simulator,
        *,
        mbps: int = 1_100,  # 10 GbE payload rate after framing
        propagation_ns: int = 2_500,  # wire + switch + NIC DMA
    ) -> None:
        if mbps <= 0 or propagation_ns < 0:
            raise ValueError("link parameters must be positive")
        self.sim = sim
        self.mbps = mbps
        self.propagation_ns = propagation_ns
        self._to_server = TimelineResource(sim)
        self._to_client = TimelineResource(sim)
        self.messages = 0

    def wire_ns(self, nbytes: int) -> int:
        """Serialization time for ``nbytes`` on one direction."""
        return int(round(nbytes * 1_000 / self.mbps))

    def _send(self, wire: TimelineResource, nbytes: int, not_before: int) -> Tuple[int, int]:
        start, end = wire.reserve(self.wire_ns(nbytes), not_before)
        self.messages += 1
        return start, end + self.propagation_ns

    def send_to_server(self, nbytes: int, not_before: int = 0) -> Tuple[int, int]:
        """Book a client->server message; returns (start, deliver_time)."""
        return self._send(self._to_server, nbytes, not_before)

    def send_to_client(self, nbytes: int, not_before: int = 0) -> Tuple[int, int]:
        """Book a server->client message; returns (start, deliver_time)."""
        return self._send(self._to_client, nbytes, not_before)
