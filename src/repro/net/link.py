"""A full-duplex point-to-point network link.

Each direction is an independent serializing resource (10 GbE-class by
default): a message occupies the wire for ``bytes/rate`` after a fixed
propagation + NIC latency.  Protocol/stack processing costs live in the
NBD layer, because that is exactly what differs between the kernel and
DPDK paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set, Tuple

from repro.sim.engine import Simulator
from repro.sim.resources import TimelineResource

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan


class NetworkLink:
    """Two independent directional wires between client and server."""

    def __init__(
        self,
        sim: Simulator,
        *,
        mbps: int = 1_100,  # 10 GbE payload rate after framing
        propagation_ns: int = 2_500,  # wire + switch + NIC DMA
        faults: "Optional[FaultPlan]" = None,
    ) -> None:
        if mbps <= 0 or propagation_ns < 0:
            raise ValueError("link parameters must be positive")
        self.sim = sim
        self.mbps = mbps
        self.propagation_ns = propagation_ns
        self._to_server = TimelineResource(sim)
        self._to_client = TimelineResource(sim)
        self.messages = 0
        # Fault injection (repro.faults): periodic link flaps and
        # per-message drops; see NetFaults.
        self._faults = faults.injector("net") if faults is not None else None
        self.reconnects = 0
        self.drops = 0
        self._outages_hit: Set[int] = set()
        # Wait attribution for the last _send (read by the NBD client's
        # trace hooks): was the start deferred by a flap window, and how
        # much delivery slip did drop/retransmit recovery add?
        self.last_outage_defer = False
        self.last_resend_wait_ns = 0
        if self._faults is not None:
            registry = sim.obs.registry
            self._m_reconnects = registry.counter(
                "faults.net.reconnects",
                help="NBD session re-establishments after link flaps",
            )
            self._m_drops = registry.counter(
                "faults.net.drops", help="messages dropped and resent"
            )
            self._m_resent_bytes = registry.counter(
                "faults.net.resent_bytes", unit="bytes",
                help="payload re-serialized after drops",
            )

    def wire_ns(self, nbytes: int) -> int:
        """Serialization time for ``nbytes`` on one direction."""
        return int(round(nbytes * 1_000 / self.mbps))

    def _defer_for_outage(self, t: int) -> int:
        """Push ``t`` past the current flap window, if it lands in one.

        Flap windows open at every multiple of ``flap_interval_ns``
        (except time zero) and last ``outage_ns``; a transfer arriving
        inside one waits for the link to return plus ``reconnect_ns``
        of NBD session re-establishment.
        """
        spec = self._faults.spec
        interval = spec.flap_interval_ns
        if interval <= 0:
            return t
        window = t // interval
        window_start = window * interval
        if window == 0 or t >= window_start + spec.outage_ns:
            return t
        resume = window_start + spec.outage_ns + spec.reconnect_ns
        if window not in self._outages_hit:
            self._outages_hit.add(window)
            self.reconnects += 1
            self._m_reconnects.inc()
            tracer = self.sim.obs.tracer
            if tracer.enabled:
                tracer.span(
                    "faults", "link_outage", window_start, resume,
                    window=int(window),
                )
        return resume

    def _send(self, wire: TimelineResource, nbytes: int, not_before: int) -> Tuple[int, int]:
        fi = self._faults
        self.last_outage_defer = False
        self.last_resend_wait_ns = 0
        if fi is not None:
            ready = max(not_before, self.sim.now)
            not_before = self._defer_for_outage(ready)
            self.last_outage_defer = not_before > ready
        start, end = wire.reserve(self.wire_ns(nbytes), not_before)
        first_end = end
        if fi is not None and fi.spec.drop_prob > 0.0:
            resends = 0
            while resends < fi.spec.max_resends and fi.roll(fi.spec.drop_prob):
                # Dropped in flight: detected after the retransmit
                # timeout, then re-serialized (possibly across a flap).
                resends += 1
                retry_at = self._defer_for_outage(
                    end + fi.spec.retransmit_timeout_ns
                )
                _, end = wire.reserve(self.wire_ns(nbytes), retry_at)
            if resends:
                self.drops += resends
                self._m_drops.inc(resends)
                self._m_resent_bytes.inc(resends * nbytes)
                self.last_resend_wait_ns = end - first_end
                tracer = self.sim.obs.tracer
                if tracer.enabled:
                    tracer.span(
                        "faults", "resend", start, end,
                        resends=resends, nbytes=nbytes,
                    )
        self.messages += 1
        return start, end + self.propagation_ns

    def send_to_server(self, nbytes: int, not_before: int = 0) -> Tuple[int, int]:
        """Book a client->server message; returns (start, deliver_time)."""
        return self._send(self._to_server, nbytes, not_before)

    def send_to_client(self, nbytes: int, not_before: int = 0) -> Tuple[int, int]:
        """Book a server->client message; returns (start, deliver_time)."""
        return self._send(self._to_client, nbytes, not_before)
