"""Server-client substrate: network link and NBD block servers.

Models the paper's Section VI-C testbed: a client whose ext4 file system
sits on a network block device, served either by the Linux kernel NBD
server (full server-side storage stack, interrupt completion, process
wake-ups) or by SPDK NBD (server-side kernel bypass, polled completion).
"""

from repro.net.link import NetworkLink
from repro.net.nbd import NbdServerKind, NbdSystem, NbdServerCosts

__all__ = ["NetworkLink", "NbdServerKind", "NbdServerCosts", "NbdSystem"]
