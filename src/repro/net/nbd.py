"""Network block device: kernel NBD vs. SPDK NBD (paper Section VI-C).

The client runs fio over an ext4 file system mounted on ``/dev/nbdX``;
every block I/O crosses the network to a storage server that owns the
ULL SSD.  Two server implementations:

* **Kernel NBD** — the classic ``nbd-server`` path: the server process
  sleeps on the socket, so every request pays a socket wake-up, a
  syscall into the full storage stack, and (for reads, which block on
  flash) an interrupt + wake-up on the device side before the reply is
  pushed back through the kernel network stack.
* **SPDK NBD** — the server polls both the connection and the NVMe
  queue pairs from user space (SPDK + DPDK): no wake-ups, no syscalls,
  no ISR.

The asymmetry the paper highlights falls out of the device model:
*reads* block the server on flash (every wake-up/ISR saved counts —
~39 % lower latency), while *writes* complete in the device's DRAM
write buffer almost immediately, so the kernel server barely sleeps and
the bypass saves only its syscall/copy overhead (<5 %).  On the client
side, ext4 journaling and metadata updates (which cannot be bypassed)
pile further fixed cost onto every write.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.host.accounting import CpuAccounting, ExecMode
from repro.host.costs import DEFAULT_COSTS, SoftwareCosts, StepCost
from repro.net.link import NetworkLink
from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout
from repro.ssd.device import IoOp, SsdDevice
from repro.units import Bytes

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.obs.tracer import IoTrace

#: NBD protocol request/response header size.
NBD_HEADER_BYTES = 28


class NbdServerKind(enum.Enum):
    """Which server implementation handles requests."""

    KERNEL = "kernel-nbd"
    SPDK = "spdk-nbd"


@dataclass(frozen=True)
class NbdServerCosts:
    """Server-side residence costs around the device access."""

    # Kernel nbd-server, read path: the server sleeps between requests,
    # so a read pays a socket wake-up on arrival, a read() syscall
    # through VFS+blk-mq, an interrupt + process wake-up while blocked
    # on flash, and a send() back through the TCP stack.
    kernel_socket_wakeup: StepCost = StepCost(ns=7_000, loads=1100, stores=800)
    kernel_syscall_path: StepCost = StepCost(ns=3_500, loads=600, stores=420)
    kernel_block_wakeup: StepCost = StepCost(ns=3_000, loads=450, stores=330)
    kernel_reply_send: StepCost = StepCost(ns=4_500, loads=700, stores=520)

    # Kernel nbd-server, write path: writes stream in bursts (the client
    # file system pipelines data + journal + metadata blocks), so the
    # server is already awake when the next write arrives, and a write()
    # into the device's DRAM buffer returns without blocking — no
    # wake-ups to save.  This is why SPDK NBD barely helps writes.
    kernel_write_recv: StepCost = StepCost(ns=1_500, loads=260, stores=180)
    kernel_write_reply: StepCost = StepCost(ns=2_500, loads=400, stores=290)

    # SPDK nbd target: everything polled in one user-space reactor, but
    # write payloads must be copied from the socket into pinned hugepage
    # DMA buffers before submission.
    spdk_poll_dispatch: StepCost = StepCost(ns=800, loads=160, stores=90)
    spdk_submit: StepCost = StepCost(ns=400, loads=80, stores=55)
    spdk_write_copy: StepCost = StepCost(ns=2_000, loads=550, stores=550)
    spdk_reply_send: StepCost = StepCost(ns=1_200, loads=220, stores=140)


class NbdSystem:
    """A client-side block path over the network to an NBD server.

    Exposes the same ``sync_io`` contract as the local stacks, so the
    ext4 model and the workload engines compose with it unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        device: SsdDevice,
        *,
        server: NbdServerKind,
        link: Optional[NetworkLink] = None,
        client_costs: Optional[SoftwareCosts] = None,
        server_costs: Optional[NbdServerCosts] = None,
        accounting: Optional[CpuAccounting] = None,
        faults: "Optional[FaultPlan]" = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.server = server
        self.link = link or NetworkLink(sim, faults=faults)
        self.costs = client_costs or DEFAULT_COSTS
        self.server_costs = server_costs or NbdServerCosts()
        self.accounting = accounting or CpuAccounting()
        self.requests = 0

    # ------------------------------------------------------------------
    def _charge_and_wait(
        self, step: StepCost, mode: ExecMode, module: str, function: str
    ) -> Timeout:
        self.accounting.charge(
            step.ns, mode, module, function, loads=step.loads, stores=step.stores
        )
        return self.sim.timeout(step.ns)

    # ------------------------------------------------------------------
    def sync_io(
        self, op: IoOp, offset: Bytes, nbytes: int
    ) -> Generator[Event, Any, int]:
        """Process: one block I/O across the network.  Returns latency."""
        costs = self.costs
        started = self.sim.now
        self.requests += 1
        tracer = self.sim.obs.tracer
        ctx = tracer.begin_io(op, offset, nbytes, started) if tracer.enabled else None
        if ctx is not None:
            ctx.phase("submit", started)
        # Client: submission through the local kernel stack into nbd.ko.
        yield self._charge_and_wait(
            costs.syscall_entry, ExecMode.KERNEL, "vfs", "syscall"
        )
        yield self._charge_and_wait(costs.vfs_submit, ExecMode.KERNEL, "vfs", "vfs_rw")
        yield self._charge_and_wait(
            costs.blkmq_submit, ExecMode.KERNEL, "blk-mq", "blk_mq_make_request"
        )
        # Request (+ payload for writes) to the server.
        request_bytes = NBD_HEADER_BYTES + (nbytes if op is IoOp.WRITE else 0)
        send_at = self.sim.now
        sent, delivered = self.link.send_to_server(request_bytes, send_at)
        if ctx is not None:
            ctx.phase("net_send", send_at)
            self._trace_link_waits(ctx, send_at, sent, delivered)
        if delivered > self.sim.now:
            yield self.sim.timeout(delivered - self.sim.now)
        # Server-side residence.
        yield from self._server_side(op, offset, nbytes, ctx)
        # Reply (+ payload for reads) back to the client.
        reply_bytes = NBD_HEADER_BYTES + (nbytes if op is IoOp.READ else 0)
        reply_at = self.sim.now
        sent, returned = self.link.send_to_client(reply_bytes, reply_at)
        if ctx is not None:
            ctx.phase("net_return", reply_at)
            self._trace_link_waits(ctx, reply_at, sent, returned)
        if returned > self.sim.now:
            yield self.sim.timeout(returned - self.sim.now)
        # Client: completion (interrupt-driven; the NBD client is kernel
        # code either way — SPDK only bypasses the *server* side).
        if ctx is not None:
            ctx.phase("completion_isr", self.sim.now)
        yield self.sim.timeout(self.costs.irq_delivery_ns)
        yield self._charge_and_wait(
            costs.blkmq_complete, ExecMode.KERNEL, "blk-mq", "blk_mq_complete_request"
        )
        yield self._charge_and_wait(
            costs.context_switch_in, ExecMode.KERNEL, "sched", "context_switch"
        )
        yield self._charge_and_wait(
            costs.syscall_exit, ExecMode.KERNEL, "vfs", "syscall"
        )
        if ctx is not None:
            ctx.finish(self.sim.now)
        return self.sim.now - started

    def _trace_link_waits(
        self, ctx: "IoTrace", queued_ns: int, sent_ns: int, delivered_ns: int
    ) -> None:
        """Name the waits behind one link transfer on the I/O's trace.

        Start slip is the flap window (when the outage logic deferred
        us) or plain wire serialization backlog; delivery slip beyond
        the first serialization is drop/retransmit recovery.
        """
        link = self.link
        if sent_ns > queued_ns:
            holder = "outage" if link.last_outage_defer else "wire_busy"
            ctx.wait("net.link", holder, queued_ns, sent_ns)
        if link.last_resend_wait_ns:
            wire_done = delivered_ns - link.propagation_ns
            ctx.wait(
                "net.link",
                "retransmit",
                wire_done - link.last_resend_wait_ns,
                wire_done,
            )

    # ------------------------------------------------------------------
    def _server_side(
        self, op: IoOp, offset: int, nbytes: int, ctx: "Optional[IoTrace]" = None
    ) -> Generator[Event, Any, None]:
        if ctx is not None:
            ctx.phase("server", self.sim.now)
        if self.server is NbdServerKind.KERNEL:
            yield from self._kernel_server(op, offset, nbytes, ctx)
        else:
            yield from self._spdk_server(op, offset, nbytes, ctx)

    def _kernel_server(
        self, op: IoOp, offset: int, nbytes: int, ctx: "Optional[IoTrace]" = None
    ) -> Generator[Event, Any, None]:
        sc = self.server_costs
        if op is IoOp.READ:
            yield self._charge_and_wait(
                sc.kernel_socket_wakeup, ExecMode.KERNEL, "nbd-server", "socket_wakeup"
            )
        else:
            yield self._charge_and_wait(
                sc.kernel_write_recv, ExecMode.KERNEL, "nbd-server", "stream_recv"
            )
        yield self._charge_and_wait(
            sc.kernel_syscall_path, ExecMode.KERNEL, "nbd-server", "storage_stack"
        )
        request = self.device.submit(op, offset, nbytes, trace=ctx)
        if not request.done.triggered:
            yield request.done
        if ctx is not None:
            ctx.phase("server", self.sim.now)
        if op is IoOp.READ:
            # The server slept on flash: interrupt + process wake-up.
            yield self._charge_and_wait(
                sc.kernel_block_wakeup, ExecMode.KERNEL, "nbd-server", "block_wakeup"
            )
            yield self._charge_and_wait(
                sc.kernel_reply_send, ExecMode.KERNEL, "nbd-server", "tcp_send"
            )
        else:
            yield self._charge_and_wait(
                sc.kernel_write_reply, ExecMode.KERNEL, "nbd-server", "tcp_send"
            )

    def _spdk_server(
        self, op: IoOp, offset: int, nbytes: int, ctx: "Optional[IoTrace]" = None
    ) -> Generator[Event, Any, None]:
        sc = self.server_costs
        yield self._charge_and_wait(
            sc.spdk_poll_dispatch, ExecMode.USER, "spdk-nbd", "reactor_poll"
        )
        if op is IoOp.WRITE:
            yield self._charge_and_wait(
                sc.spdk_write_copy, ExecMode.USER, "spdk-nbd", "hugepage_memcpy"
            )
        yield self._charge_and_wait(
            sc.spdk_submit, ExecMode.USER, "spdk-nbd", "spdk_nvme_ns_cmd_rw"
        )
        request = self.device.submit(op, offset, nbytes, trace=ctx)
        if not request.done.triggered:
            yield request.done
        if ctx is not None:
            ctx.phase("server", self.sim.now)
        yield self._charge_and_wait(
            sc.spdk_reply_send, ExecMode.USER, "spdk-nbd", "dpdk_send"
        )
