"""Fault-injection experiments: resilience cost on the ULL latency story.

Three figure-style studies built on :mod:`repro.faults` and the sweep
engine (every point is cacheable and byte-identical serial vs.
parallel):

* ``fault-readtail`` — read tail latency vs. NAND read-failure rate,
  interrupt vs. poll completion.  ECC retries inflate the device-side
  tail; because the ULL device latency is so small, even a 1 % retry
  rate is visible at the 99th percentile, and polling cannot hide it
  (the paper's Section IV story, now under faults).
* ``fault-retry`` — mean and p99 latency vs. the rate of *host-side*
  recoveries: NVMe command timeouts (lost completions, ~2 ms timer)
  vs. blk-mq requeues (exponential backoff from 100 us).  Both
  mechanisms trade a tiny mean penalty for orders-of-magnitude tail
  excursions — timeout-based recovery is far more expensive per event.
* ``fault-nbdflap`` — NBD sequential-read throughput across link-flap
  intervals, kernel vs. SPDK server.  Each flap costs an outage plus an
  NBD session re-establishment; as flaps become frequent the link —
  not the server software stack — dominates, and the SPDK advantage
  collapses.

Every injected fault surfaces in ``repro.obs`` (``faults.*`` counters
and a ``faults`` span track) when an observability bundle is installed.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.metrics import FigureResult, Series
from repro.core.runners import make_point
from repro.core.sweep import sweep
from repro.faults.plan import (
    FaultPlan,
    KstackFaults,
    NandFaults,
    NetFaults,
    NvmeFaults,
)

#: NAND read-failure probabilities swept by ``fault-readtail``.
READTAIL_RATES: Tuple[float, ...] = (0.0, 0.002, 0.01, 0.05)

#: Host-side fault probabilities swept by ``fault-retry``.
RETRY_RATES: Tuple[float, ...] = (0.0, 0.001, 0.005, 0.02)

#: Link-flap intervals (ms; 0 = no flaps) swept by ``fault-nbdflap``.
FLAP_INTERVALS_MS: Tuple[float, ...] = (0.0, 5.0, 2.0, 1.0, 0.5)


def _nand_params(rate: float, fault_seed: int) -> Tuple:
    if rate <= 0.0:
        return ()  # identical to the fault-free measurement (shared cache)
    return FaultPlan(
        seed=fault_seed, nand=NandFaults(read_fail_prob=rate)
    ).to_params()


def fault_readtail(io_count: int = 1200, fault_seed: int = 7) -> FigureResult:
    """Read tail latency vs. NAND read-failure rate (interrupt vs. poll)."""
    completions = ("interrupt", "poll")
    points = [
        make_point(
            (completion, rate),
            "job",
            device="ull",
            rw="randread",
            engine="psync",
            io_count=io_count,
            completion=completion,
            fault_plan=_nand_params(rate, fault_seed),
        )
        for completion in completions
        for rate in READTAIL_RATES
    ]
    data = sweep(points, name="fault-readtail")
    series = []
    for completion in completions:
        for metric, pick in (
            ("mean", lambda lat: lat.mean_us),
            ("p99", lambda lat: lat.p99_us),
        ):
            ys = [
                pick(data[(completion, rate)].result.latency)
                for rate in READTAIL_RATES
            ]
            series.append(
                Series.from_points(
                    f"{completion} {metric}",
                    [rate * 100 for rate in READTAIL_RATES],
                    ys,
                    "us",
                )
            )
    return FigureResult(
        figure_id="fault-readtail",
        title="Read latency vs. injected NAND read-failure rate (ULL SSD)",
        x_label="read failure probability (%)",
        y_label="latency (us)",
        series=tuple(series),
        notes=(
            "each failure costs ECC retry reads on the die; polling cannot "
            "hide device-side recovery"
        ),
    )


def fault_retry(io_count: int = 1000, fault_seed: int = 7) -> FigureResult:
    """Latency vs. host-side recovery rate: NVMe timeouts vs. requeues."""

    def plan_params(mechanism: str, rate: float) -> Tuple:
        if rate <= 0.0:
            return ()
        if mechanism == "nvme-timeout":
            return FaultPlan(
                seed=fault_seed, nvme=NvmeFaults(timeout_prob=rate)
            ).to_params()
        return FaultPlan(
            seed=fault_seed, kstack=KstackFaults(requeue_prob=rate)
        ).to_params()

    mechanisms = ("nvme-timeout", "blkmq-requeue")
    points = [
        make_point(
            (mechanism, rate),
            "job",
            device="ull",
            rw="randread",
            engine="psync",
            io_count=io_count,
            fault_plan=plan_params(mechanism, rate),
        )
        for mechanism in mechanisms
        for rate in RETRY_RATES
    ]
    data = sweep(points, name="fault-retry")
    series = []
    for mechanism in mechanisms:
        for metric, pick in (
            ("mean", lambda lat: lat.mean_us),
            ("p99", lambda lat: lat.p99_us),
        ):
            ys = [
                pick(data[(mechanism, rate)].result.latency)
                for rate in RETRY_RATES
            ]
            series.append(
                Series.from_points(
                    f"{mechanism} {metric}",
                    [rate * 100 for rate in RETRY_RATES],
                    ys,
                    "us",
                )
            )
    return FigureResult(
        figure_id="fault-retry",
        title="Recovery cost: NVMe command timeouts vs. blk-mq requeues (ULL)",
        x_label="fault probability per command (%)",
        y_label="latency (us)",
        series=tuple(series),
        notes=(
            "a lost completion pays the ~2 ms command timer; a requeue pays "
            "exponential backoff from 100 us — both hit p99 long before the mean"
        ),
    )


def fault_nbdflap(io_count: int = 600, fault_seed: int = 7) -> FigureResult:
    """NBD sequential-read throughput across link-flap intervals."""

    def plan_params(interval_ms: float) -> Tuple:
        if interval_ms <= 0.0:
            return ()
        return FaultPlan(
            seed=fault_seed,
            net=NetFaults(flap_interval_ns=int(interval_ms * 1_000_000)),
        ).to_params()

    servers = ("kernel-nbd", "spdk-nbd")
    points = [
        make_point(
            (server, interval_ms),
            "nbd",
            device="ull",
            server=server,
            rw="read",
            block_size=65536,
            io_count=io_count,
            fault_plan=plan_params(interval_ms),
        )
        for server in servers
        for interval_ms in FLAP_INTERVALS_MS
    ]
    data = sweep(points, name="fault-nbdflap")
    # X axis: flaps per second (0 = healthy link), ascending severity.
    xs = [0.0 if ms <= 0 else 1_000.0 / ms for ms in FLAP_INTERVALS_MS]
    series = [
        Series.from_points(
            "Kernel NBD" if server == "kernel-nbd" else "SPDK NBD",
            xs,
            [
                data[(server, interval_ms)].result.bandwidth_mbps
                for interval_ms in FLAP_INTERVALS_MS
            ],
            "MB/s",
        )
        for server in servers
    ]
    return FigureResult(
        figure_id="fault-nbdflap",
        title="NBD seq-read throughput vs. link-flap frequency (64 KB)",
        x_label="link flaps per second",
        y_label="throughput (MB/s)",
        series=tuple(series),
        notes=(
            "each flap = outage + NBD reconnect; a flapping link erases the "
            "server-side SPDK advantage"
        ),
    )
