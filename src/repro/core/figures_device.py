"""Figures 4-8: system-level device characterization (paper Section IV).

All experiments here drive the devices with libaio through the kernel
interrupt path, exactly like the paper's fio setup for this section.
Each figure declares its measurement grid as sweep points and submits
the whole grid at once, so the engine can satisfy it from cache or fan
it out across worker processes.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.display import PATTERN_LABELS, PATTERNS, US
from repro.core.experiment import DeviceKind
from repro.core.metrics import FigureResult, Series
from repro.core.runners import async_point, gc_point, idle_point, sync_point
from repro.core.sweep import sweep


# ----------------------------------------------------------------------
# Figure 4: latency vs. queue depth
# ----------------------------------------------------------------------
def _qd_sweep(io_count: int, depths: Tuple[int, ...]):
    """Shared runs for Figs. 4a/4b: JobResult per (device, rw, depth)."""
    points = [
        async_point(kind.value, rw, iodepth=depth, io_count=io_count)
        for kind in DeviceKind
        for rw in PATTERNS
        for depth in depths
    ]
    data = sweep(points, name="qd_sweep")
    return {key: m.result for key, m in data.items()}


def fig04a(io_count: int = 2000, depths: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)):
    """Average latency vs. queue depth, ULL vs. NVMe (Fig. 4a)."""
    data = _qd_sweep(io_count, tuple(depths))
    series = []
    for kind in DeviceKind:
        for rw in PATTERNS:
            ys = [data[(kind.value, rw, d)].latency.mean_us for d in depths]
            series.append(
                Series.from_points(
                    f"{kind.value.upper()} {PATTERN_LABELS[rw]}", depths, ys, "us"
                )
            )
    return FigureResult(
        figure_id="fig04a",
        title="Average latency vs queue depth (libaio, 4KB)",
        x_label="queue depth",
        y_label="avg latency (us)",
        series=tuple(series),
        notes=f"{io_count} I/Os per point; interrupt completion",
    )


def fig04b(io_count: int = 2000, depths: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)):
    """99.999th-percentile latency vs. queue depth (Fig. 4b)."""
    data = _qd_sweep(io_count, tuple(depths))
    series = []
    for kind in DeviceKind:
        for rw in PATTERNS:
            ys = [data[(kind.value, rw, d)].latency.p99999_us for d in depths]
            series.append(
                Series.from_points(
                    f"{kind.value.upper()} {PATTERN_LABELS[rw]}", depths, ys, "us"
                )
            )
    return FigureResult(
        figure_id="fig04b",
        title="Five-nines latency vs queue depth (libaio, 4KB)",
        x_label="queue depth",
        y_label="99.999th latency (us)",
        series=tuple(series),
        notes=f"{io_count} I/Os per point (empirical tail)",
    )


# ----------------------------------------------------------------------
# Figure 5: normalized bandwidth vs. queue depth
# ----------------------------------------------------------------------
def _io_count_for(kind: DeviceKind, rw: str, depth: int, io_count: int) -> int:
    # Write runs must outlast the DRAM write buffer, or the measurement
    # reports buffered-absorption bandwidth instead of steady state.
    # Sized against the *effective* device so a --device override still
    # reaches steady state.
    from repro.ssd.registry import effective_device, resolve_config

    count = max(io_count, depth * 30)
    if "write" in rw or rw in ("rw", "randrw"):
        config = resolve_config(effective_device(kind.value))
        count = max(count, config.write_buffer_units * 5)
    return count


def _bandwidth_sweep(kind: DeviceKind, depths: Tuple[int, ...], io_count: int):
    points = [
        async_point(
            kind.value, rw, iodepth=depth,
            io_count=_io_count_for(kind, rw, depth, io_count),
        )
        for rw in PATTERNS
        for depth in depths
    ]
    data = sweep(points, name="bandwidth_sweep")
    series = {
        rw: [data[(kind.value, rw, d)].result.bandwidth_mbps for d in depths]
        for rw in PATTERNS
    }
    peak = max(max(vals) for vals in series.values())
    return {
        rw: [100.0 * v / peak for v in vals] for rw, vals in series.items()
    }, peak


def _fig05(figure_id: str, kind: DeviceKind, depths: Tuple[int, ...], io_count: int):
    normalized, peak = _bandwidth_sweep(kind, tuple(depths), io_count)
    series = tuple(
        Series.from_points(PATTERN_LABELS[rw], depths, normalized[rw], "%")
        for rw in PATTERNS
    )
    return FigureResult(
        figure_id=figure_id,
        title=f"Normalized bandwidth vs queue depth — {kind.value.upper()} SSD",
        x_label="queue depth",
        y_label="% of max bandwidth",
        series=series,
        notes=f"max observed bandwidth {peak:.0f} MB/s (normalization base)",
        extras={"peak_mbps": peak},
    )


def fig05a(io_count: int = 2000, depths: Tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32)):
    """ULL SSD bandwidth utilization (Fig. 5a)."""
    return _fig05("fig05a", DeviceKind.ULL, depths, io_count)


def fig05b(io_count: int = 2000, depths: Tuple[int, ...] = (1, 4, 16, 64, 128, 256)):
    """NVMe SSD bandwidth utilization (Fig. 5b)."""
    return _fig05("fig05b", DeviceKind.NVME, depths, io_count)


# ----------------------------------------------------------------------
# Figure 6: read/write interference
# ----------------------------------------------------------------------
def _interference(io_count: int, fractions: Tuple[int, ...], iodepth: int):
    points = []
    for kind in DeviceKind:
        for frac in fractions:
            if frac == 0:
                points.append(
                    async_point(
                        kind.value, "randread", iodepth=iodepth,
                        io_count=io_count, key=(kind.value, frac),
                    )
                )
            else:
                points.append(
                    async_point(
                        kind.value, "randrw", iodepth=iodepth,
                        io_count=io_count, write_fraction=frac / 100.0,
                        key=(kind.value, frac),
                    )
                )
    data = sweep(points, name="interference")
    return {key: m.result for key, m in data.items()}


def _fig06(figure_id: str, metric: str, io_count: int, fractions, iodepth: int):
    data = _interference(io_count, tuple(fractions), iodepth)
    series = []
    for kind in DeviceKind:
        ys = []
        for frac in fractions:
            summary = data[(kind.value, frac)].read_latency
            ys.append(
                summary.mean_us if metric == "mean" else summary.p99999_us
            )
        series.append(
            Series.from_points(f"{kind.value.upper()} SSD", fractions, ys, "us")
        )
    what = "Average" if metric == "mean" else "99.999th"
    return FigureResult(
        figure_id=figure_id,
        title=f"{what} read latency vs write fraction (random, 4KB)",
        x_label="write fraction (%)",
        y_label=f"{what.lower()} read latency (us)",
        series=tuple(series),
        notes=f"{io_count} I/Os per point, libaio QD{iodepth}",
    )


def fig06a(io_count: int = 4000, fractions=(0, 20, 40, 60, 80), iodepth: int = 8):
    """Average read latency under write interference (Fig. 6a)."""
    return _fig06("fig06a", "mean", io_count, fractions, iodepth)


def fig06b(io_count: int = 4000, fractions=(0, 20, 40, 60, 80), iodepth: int = 8):
    """Five-nines read latency under write interference (Fig. 6b)."""
    return _fig06("fig06b", "p99999", io_count, fractions, iodepth)


# ----------------------------------------------------------------------
# Figure 7a: average power
# ----------------------------------------------------------------------
def fig07a(io_count: int = 1500):
    """Average device power, async/sync x pattern + idle (Fig. 7a)."""
    points = []
    for kind in DeviceKind:
        for rw in PATTERNS:
            points.append(
                async_point(
                    kind.value, rw, iodepth=16, io_count=io_count,
                    key=(kind.value, "async", rw),
                )
            )
        for rw in PATTERNS:
            points.append(
                sync_point(
                    kind.value, rw, io_count=max(200, io_count // 4),
                    key=(kind.value, "sync", rw),
                )
            )
        points.append(idle_point(kind.value, key=(kind.value, "idle", None)))
    data = sweep(points, name="fig07a")
    series = []
    for kind in DeviceKind:
        labels, values = [], []
        for rw in PATTERNS:
            labels.append(f"Async {PATTERN_LABELS[rw]}")
            values.append(data[(kind.value, "async", rw)].result.avg_power_w)
        for rw in PATTERNS:
            labels.append(f"Sync {PATTERN_LABELS[rw]}")
            values.append(data[(kind.value, "sync", rw)].result.avg_power_w)
        labels.append("Idle")
        values.append(data[(kind.value, "idle", None)].value("avg_power_w"))
        series.append(
            Series.from_points(f"{kind.value.upper()} SSD", labels, values, "W")
        )
    return FigureResult(
        figure_id="fig07a",
        title="Average power consumption (4KB I/O)",
        x_label="workload",
        y_label="power (W)",
        series=tuple(series),
    )


# ----------------------------------------------------------------------
# Figures 7b and 8: garbage collection time series
# ----------------------------------------------------------------------
#: Default overwrite counts: enough to exhaust each preset's erased pool.
GC_IO_COUNT = {"ull": 30_000, "nvme": 45_000}


def _gc_runs(kinds, io_count: int):
    """Sustained random overwrites on a full device until GC engages.

    Synchronous QD-1, matching the paper's time-series methodology: the
    host keeps exactly one 4 KB overwrite outstanding, so latency shows
    the *device's* ability to absorb GC rather than host queueing.
    """
    points = [
        gc_point(kind.value, io_count or GC_IO_COUNT[kind.value])
        for kind in kinds
    ]
    return sweep(points, name="gc_run")


def fig07b(io_count: int = 0, windows: int = 40):
    """Write latency over time as GC kicks in (Fig. 7b)."""
    data = _gc_runs(tuple(DeviceKind), io_count)
    series = []
    gc_counts = {}
    for kind in DeviceKind:
        measured = data[("gc", kind.value)]
        result = measured.result
        window_ns = max(1, result.duration_ns // windows)
        windowed = result.timeseries.windowed(window_ns)
        xs = [start / 1e6 for start in windowed.starts_ns]  # ms
        ys = [mean / US for mean in windowed.means]
        series.append(
            Series.from_points(f"{kind.value.upper()} SSD", xs, ys, "us")
        )
        gc_counts[f"{kind.value}_gc_events"] = float(measured.device.gc_events)
    return FigureResult(
        figure_id="fig07b",
        title="Write latency over time under sustained random overwrites",
        x_label="time (ms)",
        y_label="write latency (us)",
        series=tuple(series),
        notes="device preconditioned full; GC engages mid-run",
        extras=gc_counts,
    )


def _fig08(figure_id: str, kind: DeviceKind, io_count: int, windows: int):
    measured = _gc_runs((kind,), io_count)[("gc", kind.value)]
    result = measured.result
    window_ns = max(1, result.duration_ns // windows)
    latency = result.timeseries.windowed(window_ns)
    power = measured.device.power_series.windowed(window_ns)
    series = (
        Series.from_points(
            "Latency", [s / 1e6 for s in latency.starts_ns],
            [m / US for m in latency.means], "us",
        ),
        Series.from_points(
            "Power", [s / 1e6 for s in power.starts_ns], list(power.means), "W"
        ),
    )
    extras = {
        "gc_events": float(measured.device.gc_events),
        "first_gc_ms": (
            measured.device.first_gc_ns / 1e6
            if measured.device.first_gc_ns >= 0
            else -1.0
        ),
        "write_amplification": measured.device.write_amplification,
    }
    return FigureResult(
        figure_id=figure_id,
        title=f"Power and latency during GC — {kind.value.upper()} SSD",
        x_label="time (ms)",
        y_label="latency (us) / power (W)",
        series=series,
        extras=extras,
    )


def fig08a(io_count: int = 0, windows: int = 40):
    """NVMe SSD power + latency during GC (Fig. 8a)."""
    return _fig08("fig08a", DeviceKind.NVME, io_count, windows)


def fig08b(io_count: int = 0, windows: int = 40):
    """ULL SSD power + latency during GC (Fig. 8b)."""
    return _fig08("fig08b", DeviceKind.ULL, io_count, windows)
