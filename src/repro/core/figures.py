"""Registry of every paper table/figure reproduction.

``FIGURES`` maps figure ids (``"table1"``, ``"fig04a"`` ... ``"fig23"``)
to zero-config callables; ``run_figure`` invokes one with optional scale
overrides.  All heavy lifting lives in the per-section modules.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.figures_completion import (
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14a,
    fig14b,
    fig15,
    fig16,
)
from repro.core.figures_device import (
    fig04a,
    fig04b,
    fig05a,
    fig05b,
    fig06a,
    fig06b,
    fig07a,
    fig07b,
    fig08a,
    fig08b,
)
from repro.core.figures_server import fig23
from repro.core.figures_spdk import fig17, fig18, fig19, fig20, fig21, fig22a, fig22b
from repro.core.ablations import (
    gc_policy_ablation,
    hybrid_sleep_ablation,
    map_cache_ablation,
    overprovision_ablation,
    suspend_resume_ablation,
    write_buffer_ablation,
)
from repro.core.extensions import (
    latency_anatomy,
    lightqueue_depth_limit,
    lightqueue_study,
)
from repro.core.figures_faults import fault_nbdflap, fault_readtail, fault_retry
from repro.core.figures_zoo import zoo_latency
from repro.core.metrics import FigureResult, Series
from repro.flash.timing import TABLE_I


def table1() -> FigureResult:
    """Table I: 3D flash technology characteristics."""
    names = [timing.name for timing in TABLE_I]
    series = (
        Series.from_points("# layers", names, [t.layers for t in TABLE_I]),
        Series.from_points(
            "tR (us)", names, [t.read_ns / 1000 for t in TABLE_I], "us"
        ),
        Series.from_points(
            "tPROG (us)", names, [t.program_ns / 1000 for t in TABLE_I], "us"
        ),
        Series.from_points(
            "Capacity (Gb)", names, [t.die_capacity_gbit for t in TABLE_I], "Gb"
        ),
        Series.from_points(
            "Page size (KB)", names, [t.page_size / 1024 for t in TABLE_I], "KB"
        ),
    )
    return FigureResult(
        figure_id="table1",
        title="Analysis of 3D flash characteristics (Table I)",
        x_label="technology",
        y_label="value",
        series=series,
    )


FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "table1": table1,
    "fig04a": fig04a,
    "fig04b": fig04b,
    "fig05a": fig05a,
    "fig05b": fig05b,
    "fig06a": fig06a,
    "fig06b": fig06b,
    "fig07a": fig07a,
    "fig07b": fig07b,
    "fig08a": fig08a,
    "fig08b": fig08b,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14a": fig14a,
    "fig14b": fig14b,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
    "fig21": fig21,
    "fig22a": fig22a,
    "fig22b": fig22b,
    "fig23": fig23,
    # Beyond the paper: ablations of the modeled mechanisms...
    "abl-suspend": suspend_resume_ablation,
    "abl-mapcache": map_cache_ablation,
    "abl-writebuffer": write_buffer_ablation,
    "abl-overprovision": overprovision_ablation,
    "abl-gcpolicy": gc_policy_ablation,
    "abl-hybridsleep": hybrid_sleep_ablation,
    # ...and the paper's implications, implemented.
    "ext-lightqueue": lightqueue_study,
    "ext-lightqueue-depth": lightqueue_depth_limit,
    "ext-anatomy": latency_anatomy,
    # The registry's device axis: every zoo spec on one chart.
    "zoo-latency": zoo_latency,
    # Resilience under deterministic fault injection (repro.faults).
    "fault-readtail": fault_readtail,
    "fault-retry": fault_retry,
    "fault-nbdflap": fault_nbdflap,
}


def run_figure(figure_id: str, **kwargs) -> FigureResult:
    """Run one figure reproduction by id."""
    try:
        fn = FIGURES[figure_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}"
        ) from exc
    return fn(**kwargs)
