"""The experiment harness — the paper's methodology as a library.

* :mod:`repro.core.experiment` — assemble device + stack + workload and
  run one measurement.
* :mod:`repro.core.metrics` — figure/series result containers.
* :mod:`repro.core.figures` — one function per paper table/figure; the
  registry maps ``"fig04a"``-style ids to them.
* :mod:`repro.core.report` — plain-text rendering of figure results.
"""

from repro.core.experiment import (
    DeviceKind,
    StackKind,
    build_device,
    run_async_job,
    run_sync_job,
)
from repro.core.metrics import FigureResult, Series
from repro.core.figures import FIGURES, run_figure
from repro.core.report import render_figure

__all__ = [
    "DeviceKind",
    "StackKind",
    "build_device",
    "run_sync_job",
    "run_async_job",
    "Series",
    "FigureResult",
    "FIGURES",
    "run_figure",
    "render_figure",
]
