"""The devices x workload sweep axis: any figure metric across the zoo.

The paper measures two devices; the registry makes the device a data
axis.  ``zoo_sweep`` is the generic grid — every registered device (plus
the two preset aliases a caller may ask for) crossed with a workload
list — and ``zoo_latency`` is the registered figure built on it: mean
and p99 latency of 4 KB random reads and writes across the whole zoo,
one row per device.

Each (device, workload) cell is an ordinary sweep point, so cells cache
independently under their device's spec-hash identity and fan out
across workers like any other grid.  The CLI's ``--device`` override is
deliberately *not* applied here (the device axis is the figure's
subject, not a default to substitute), which also makes the figure a
cheap whole-zoo validity check: ``python -m repro zoo-latency`` builds
and runs every spec in the tree.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.metrics import FigureResult, Series
from repro.core.sweep import Measurement, make_point, sweep


def zoo_points(
    workloads: Sequence[str],
    *,
    io_count: int = 400,
    devices: Sequence[str] = (),
    engine: str = "psync",
    iodepth: int = 1,
):
    """The devices x workload grid as sweep points.

    ``devices`` defaults to every registered spec (the zoo); pass names
    explicitly to include the ``"ull"``/``"nvme"`` preset aliases or to
    narrow the axis.  Keys are ``(device, workload)``.
    """
    from repro.ssd.registry import list_devices

    names = tuple(devices) or list_devices()
    return [
        make_point(
            (device, rw),
            "job",
            device=device,
            rw=rw,
            engine=engine,
            iodepth=iodepth,
            io_count=io_count,
            device_seed=42,
            stack_seed=11,
            job_seed=1234,
        )
        for device in names
        for rw in workloads
    ]


def zoo_sweep(
    workloads: Sequence[str],
    *,
    io_count: int = 400,
    devices: Sequence[str] = (),
    name: str = "zoo",
) -> Dict[Tuple[str, str], Measurement]:
    """Run the devices x workload grid; ``{(device, rw): Measurement}``."""
    points = zoo_points(tuple(workloads), io_count=io_count, devices=devices)
    return sweep(points, name=name)


def zoo_latency(io_count: int = 400) -> FigureResult:
    """Mean and p99 latency of 4KB random I/O across the device zoo."""
    from repro.ssd.registry import list_devices

    devices = list_devices()
    workloads = ("randread", "randwrite")
    data = zoo_sweep(workloads, io_count=io_count, name="zoo_latency")
    series = []
    for rw, short in (("randread", "RndRd"), ("randwrite", "RndWr")):
        for metric, pick in (
            ("mean", lambda s: s.mean_us),
            ("p99", lambda s: s.p99_us),
        ):
            ys = [pick(data[(device, rw)].result.latency) for device in devices]
            series.append(
                Series.from_points(f"{short} {metric}", devices, ys, "us")
            )
    return FigureResult(
        figure_id="zoo-latency",
        title="4KB random-I/O latency across the device zoo",
        x_label="device",
        y_label="latency (us)",
        series=tuple(series),
        notes=(
            f"{io_count} I/Os per cell, psync QD1, kernel interrupt path; "
            "one column per registered device spec"
        ),
    )
