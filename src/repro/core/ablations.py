"""Ablation studies: isolate each design choice DESIGN.md calls out.

Every mechanism the reproduction credits for a paper observation can be
switched off; these experiments measure how much of the observed
behavior that mechanism actually carries:

* program **suspend/resume** — the anti-interference mechanism (Fig. 6);
* the **map-segment cache** — the random-vs-sequential read gap;
* **write-buffer size** — buffered write latency vs. backlog;
* **overprovisioning** — GC's ability to keep up with overwrites
  (the flat ULL line of Fig. 7b);
* the **hybrid-poll sleep fraction** — the latency/CPU trade the kernel
  fixed at 1/2.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.core.experiment import DeviceKind, device_config
from repro.core.metrics import FigureResult, Series
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.sim.engine import Simulator
from repro.ssd.device import SsdDevice
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import JobResult, run_job


def _run_on_config(
    config,
    job: FioJob,
    *,
    completion: CompletionMethod = CompletionMethod.INTERRUPT,
    sleep_fraction: float = None,
) -> Tuple[JobResult, SsdDevice]:
    sim = Simulator()
    device = SsdDevice(sim, config)
    device.precondition()
    stack = KernelStack(sim, device, completion=completion)
    if sleep_fraction is not None:
        stack.engine.sleep_fraction = sleep_fraction
    return run_job(sim, stack, job), device


def suspend_resume_ablation(io_count: int = 3000) -> FigureResult:
    """Fig. 6 without the suspend/resume engine: reads queue behind
    programs even on Z-NAND."""
    base = device_config(DeviceKind.ULL)
    job = FioJob(
        name="mix", rw="randrw", write_fraction=0.5,
        engine=IoEngineKind.LIBAIO, iodepth=8, io_count=io_count,
    )
    series = []
    for label, enabled in (("suspend/resume ON", True), ("suspend/resume OFF", False)):
        config = dataclasses.replace(base, suspend_resume=enabled)
        result, _ = _run_on_config(config, job)
        series.append(
            Series.from_points(
                label,
                ("mean", "p99.999"),
                (result.read_latency.mean_us, result.read_latency.p99999_us),
                "us",
            )
        )
    return FigureResult(
        figure_id="abl-suspend",
        title="Read latency under 50% writes, with/without suspend/resume (ULL)",
        x_label="metric",
        y_label="read latency (us)",
        series=tuple(series),
    )


def map_cache_ablation(io_count: int = 1200) -> FigureResult:
    """The ULL random-vs-sequential read gap is the map-segment cache."""
    base = device_config(DeviceKind.ULL)
    series = []
    for label, segments in (("map cache ON", base.map_cache_segments),
                            ("map cache OFF (full map in SRAM)", 0)):
        config = dataclasses.replace(base, map_cache_segments=segments)
        ys = []
        for rw in ("read", "randread"):
            job = FioJob(name=rw, rw=rw, engine=IoEngineKind.PSYNC,
                         io_count=io_count)
            result, _ = _run_on_config(config, job)
            ys.append(result.latency.mean_us)
        series.append(Series.from_points(label, ("SeqRd", "RndRd"), ys, "us"))
    return FigureResult(
        figure_id="abl-mapcache",
        title="Sequential vs random reads, with/without the map cache (ULL)",
        x_label="pattern",
        y_label="avg latency (us)",
        series=tuple(series),
    )


def write_buffer_ablation(
    io_count: int = 3000, sizes: Tuple[int, ...] = (64, 512, 2048, 8192)
) -> FigureResult:
    """NVMe buffered writes: the buffer hides tPROG until it fills."""
    series = []
    mean_ys, tail_ys = [], []
    for units in sizes:
        config = device_config(DeviceKind.NVME, write_buffer_units=units)
        job = FioJob(
            name="wr", rw="randwrite", engine=IoEngineKind.LIBAIO,
            iodepth=16, io_count=io_count,
        )
        result, _ = _run_on_config(config, job)
        mean_ys.append(result.latency.mean_us)
        tail_ys.append(result.latency.p99999_us)
    labels = [f"{units}u" for units in sizes]
    series.append(Series.from_points("mean", labels, mean_ys, "us"))
    series.append(Series.from_points("p99.999", labels, tail_ys, "us"))
    return FigureResult(
        figure_id="abl-writebuffer",
        title="NVMe random-write latency vs write-buffer size (QD16)",
        x_label="buffer size (4KB units)",
        y_label="latency (us)",
        series=tuple(series),
    )


def overprovision_ablation(
    io_count: int = 12_000, ratios: Tuple[float, ...] = (0.08, 0.125, 0.20, 0.28)
) -> FigureResult:
    """The flat ULL GC line needs headroom: WAF and write latency vs OP."""
    labels = [f"{int(100 * ratio)}%" for ratio in ratios]
    latency_ys, waf_ys = [], []
    for ratio in ratios:
        config = dataclasses.replace(
            device_config(DeviceKind.ULL), overprovision=ratio
        )
        job = FioJob(
            name="ow", rw="randwrite", engine=IoEngineKind.PSYNC,
            io_count=io_count,
        )
        result, device = _run_on_config(config, job)
        latency_ys.append(result.latency.mean_us)
        waf_ys.append(device.ftl.write_amplification())
    return FigureResult(
        figure_id="abl-overprovision",
        title="Sustained overwrites vs overprovisioning (ULL)",
        x_label="overprovisioning",
        y_label="write latency (us) / WAF",
        series=(
            Series.from_points("write latency", labels, latency_ys, "us"),
            Series.from_points("write amplification", labels, waf_ys, "x"),
        ),
    )


def gc_policy_ablation(io_count: int = 30_000, hot_fraction: float = 0.2):
    """Greedy vs. cost-benefit GC under skewed (hot/cold) overwrites.

    80 % of the overwrites hit ``hot_fraction`` of the space.  With the
    allocator's host/GC stream separation doing the hot/cold
    segregation, migrated cold data settles into near-fully-valid
    blocks that neither policy selects — so the two victim scores end
    up within a few percent of each other.  The experiment documents
    that convergence (and that both sustain the storm at equal WAF);
    cost-benefit's distinct *choices* are covered by unit tests.
    """
    import numpy as np

    results = {}
    for policy in ("greedy", "cost-benefit"):
        # A smaller array reaches GC steady state (where the policies
        # diverge) within a tractable number of overwrites.
        config = dataclasses.replace(
            device_config(
                DeviceKind.ULL, blocks_per_die=12, pages_per_block=64
            ),
            gc_policy=policy,
        )
        sim = Simulator()
        device = SsdDevice(sim, config)
        device.precondition()
        rng = np.random.default_rng(17)
        pages = device.logical_pages
        hot_pages = max(1, int(pages * hot_fraction))
        for _ in range(io_count):
            if rng.random() < 0.8:
                lpn = int(rng.integers(0, hot_pages))
            else:
                lpn = int(rng.integers(hot_pages, pages))
            device.write(lpn * 4096, 4096)
        sim.run()
        results[policy] = device
    labels = tuple(results)
    return FigureResult(
        figure_id="abl-gcpolicy",
        title="GC victim policy under 80/20 skewed overwrites (ULL)",
        x_label="policy",
        y_label="WAF / erases",
        series=(
            Series.from_points(
                "write amplification",
                labels,
                [results[p].ftl.write_amplification() for p in labels],
                "x",
            ),
            Series.from_points(
                "erases",
                labels,
                [float(results[p].ftl.erases) for p in labels],
            ),
        ),
    )


def hybrid_sleep_ablation(
    io_count: int = 2000, fractions: Tuple[float, ...] = (0.25, 0.5, 0.75)
) -> FigureResult:
    """The kernel's sleep-half heuristic: latency vs CPU across fractions."""
    config = device_config(DeviceKind.ULL)
    labels = [f"{fraction:.2f}" for fraction in fractions]
    latency_ys, cpu_ys = [], []
    for fraction in fractions:
        job = FioJob(name="hy", rw="randread", engine=IoEngineKind.PSYNC,
                     io_count=io_count)
        result, _ = _run_on_config(
            config, job,
            completion=CompletionMethod.HYBRID,
            sleep_fraction=fraction,
        )
        latency_ys.append(result.latency.mean_us)
        cpu_ys.append(100.0 * result.cpu_utilization())
    return FigureResult(
        figure_id="abl-hybridsleep",
        title="Hybrid polling: sleep fraction vs latency and CPU (ULL)",
        x_label="sleep fraction of estimated wait",
        y_label="latency (us) / CPU (%)",
        series=(
            Series.from_points("latency", labels, latency_ys, "us"),
            Series.from_points("CPU utilization", labels, cpu_ys, "%"),
        ),
    )
