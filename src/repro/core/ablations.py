"""Ablation studies: isolate each design choice DESIGN.md calls out.

Every mechanism the reproduction credits for a paper observation can be
switched off; these experiments measure how much of the observed
behavior that mechanism actually carries:

* program **suspend/resume** — the anti-interference mechanism (Fig. 6);
* the **map-segment cache** — the random-vs-sequential read gap;
* **write-buffer size** — buffered write latency vs. backlog;
* **overprovisioning** — GC's ability to keep up with overwrites
  (the flat ULL line of Fig. 7b);
* the **gc victim policy** — greedy vs. cost-benefit under skew;
* the **hybrid-poll sleep fraction** — the latency/CPU trade the kernel
  fixed at 1/2.

Each ablation declares its configuration grid as sweep points
(:func:`~repro.core.runners.config_point` carries device-config
overrides into the runner), so modified-device runs get the same
caching and parallel fan-out as the paper figures.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.metrics import FigureResult, Series
from repro.core.runners import config_point
from repro.core.sweep import make_point, sweep


def suspend_resume_ablation(io_count: int = 3000) -> FigureResult:
    """Fig. 6 without the suspend/resume engine: reads queue behind
    programs even on Z-NAND."""
    variants = (("suspend/resume ON", True), ("suspend/resume OFF", False))
    points = [
        config_point(
            "ull", "randrw", io_count=io_count,
            engine="libaio", iodepth=8, write_fraction=0.5,
            config_overrides=(("suspend_resume", enabled),),
            key=label,
        )
        for label, enabled in variants
    ]
    data = sweep(points, name="abl-suspend")
    series = []
    for label, _enabled in variants:
        result = data[label].result
        series.append(
            Series.from_points(
                label,
                ("mean", "p99.999"),
                (result.read_latency.mean_us, result.read_latency.p99999_us),
                "us",
            )
        )
    return FigureResult(
        figure_id="abl-suspend",
        title="Read latency under 50% writes, with/without suspend/resume (ULL)",
        x_label="metric",
        y_label="read latency (us)",
        series=tuple(series),
    )


def map_cache_ablation(io_count: int = 1200) -> FigureResult:
    """The ULL random-vs-sequential read gap is the map-segment cache."""
    variants = (
        ("map cache ON", ()),
        ("map cache OFF (full map in SRAM)", (("map_cache_segments", 0),)),
    )
    patterns = ("read", "randread")
    points = [
        config_point(
            "ull", rw, io_count=io_count, config_overrides=overrides,
            key=(label, rw),
        )
        for label, overrides in variants
        for rw in patterns
    ]
    data = sweep(points, name="abl-mapcache")
    series = []
    for label, _overrides in variants:
        ys = [data[(label, rw)].result.latency.mean_us for rw in patterns]
        series.append(Series.from_points(label, ("SeqRd", "RndRd"), ys, "us"))
    return FigureResult(
        figure_id="abl-mapcache",
        title="Sequential vs random reads, with/without the map cache (ULL)",
        x_label="pattern",
        y_label="avg latency (us)",
        series=tuple(series),
    )


def write_buffer_ablation(
    io_count: int = 3000, sizes: Tuple[int, ...] = (64, 512, 2048, 8192)
) -> FigureResult:
    """NVMe buffered writes: the buffer hides tPROG until it fills."""
    points = [
        config_point(
            "nvme", "randwrite", io_count=io_count,
            engine="libaio", iodepth=16,
            config_overrides=(("write_buffer_units", units),),
            key=units,
        )
        for units in sizes
    ]
    data = sweep(points, name="abl-writebuffer")
    mean_ys = [data[units].result.latency.mean_us for units in sizes]
    tail_ys = [data[units].result.latency.p99999_us for units in sizes]
    labels = [f"{units}u" for units in sizes]
    return FigureResult(
        figure_id="abl-writebuffer",
        title="NVMe random-write latency vs write-buffer size (QD16)",
        x_label="buffer size (4KB units)",
        y_label="latency (us)",
        series=(
            Series.from_points("mean", labels, mean_ys, "us"),
            Series.from_points("p99.999", labels, tail_ys, "us"),
        ),
    )


def overprovision_ablation(
    io_count: int = 12_000, ratios: Tuple[float, ...] = (0.08, 0.125, 0.20, 0.28)
) -> FigureResult:
    """The flat ULL GC line needs headroom: WAF and write latency vs OP."""
    points = [
        config_point(
            "ull", "randwrite", io_count=io_count,
            config_overrides=(("overprovision", ratio),),
            want_device=True,
            key=ratio,
        )
        for ratio in ratios
    ]
    data = sweep(points, name="abl-overprovision")
    labels = [f"{int(100 * ratio)}%" for ratio in ratios]
    latency_ys = [data[ratio].result.latency.mean_us for ratio in ratios]
    waf_ys = [data[ratio].device.write_amplification for ratio in ratios]
    return FigureResult(
        figure_id="abl-overprovision",
        title="Sustained overwrites vs overprovisioning (ULL)",
        x_label="overprovisioning",
        y_label="write latency (us) / WAF",
        series=(
            Series.from_points("write latency", labels, latency_ys, "us"),
            Series.from_points("write amplification", labels, waf_ys, "x"),
        ),
    )


def gc_policy_ablation(io_count: int = 30_000, hot_fraction: float = 0.2):
    """Greedy vs. cost-benefit GC under skewed (hot/cold) overwrites.

    80 % of the overwrites hit ``hot_fraction`` of the space.  With the
    allocator's host/GC stream separation doing the hot/cold
    segregation, migrated cold data settles into near-fully-valid
    blocks that neither policy selects — so the two victim scores end
    up within a few percent of each other.  The experiment documents
    that convergence (and that both sustain the storm at equal WAF);
    cost-benefit's distinct *choices* are covered by unit tests.
    """
    policies = ("greedy", "cost-benefit")
    points = [
        make_point(
            policy,
            "gc_policy",
            device="ull",
            policy=policy,
            io_count=io_count,
            hot_fraction=hot_fraction,
            # A smaller array reaches GC steady state (where the
            # policies diverge) within a tractable number of overwrites.
            config_overrides=(("blocks_per_die", 12), ("pages_per_block", 64)),
        )
        for policy in policies
    ]
    data = sweep(points, name="abl-gcpolicy")
    return FigureResult(
        figure_id="abl-gcpolicy",
        title="GC victim policy under 80/20 skewed overwrites (ULL)",
        x_label="policy",
        y_label="WAF / erases",
        series=(
            Series.from_points(
                "write amplification",
                policies,
                [data[p].value("write_amplification") for p in policies],
                "x",
            ),
            Series.from_points(
                "erases",
                policies,
                [data[p].value("erases") for p in policies],
            ),
        ),
    )


def hybrid_sleep_ablation(
    io_count: int = 2000, fractions: Tuple[float, ...] = (0.25, 0.5, 0.75)
) -> FigureResult:
    """The kernel's sleep-half heuristic: latency vs CPU across fractions."""
    points = [
        config_point(
            "ull", "randread", io_count=io_count,
            completion="hybrid", sleep_fraction=fraction,
            key=fraction,
        )
        for fraction in fractions
    ]
    data = sweep(points, name="abl-hybridsleep")
    labels = [f"{fraction:.2f}" for fraction in fractions]
    latency_ys = [data[f].result.latency.mean_us for f in fractions]
    cpu_ys = [100.0 * data[f].result.cpu_utilization() for f in fractions]
    return FigureResult(
        figure_id="abl-hybridsleep",
        title="Hybrid polling: sleep fraction vs latency and CPU (ULL)",
        x_label="sleep fraction of estimated wait",
        y_label="latency (us) / CPU (%)",
        series=(
            Series.from_points("latency", labels, latency_ys, "us"),
            Series.from_points("CPU utilization", labels, cpu_ys, "%"),
        ),
    )
