"""Extension experiments: the paper's *implications*, implemented.

Section IV-C concludes that NVMe's rich queue machinery is overkill for
ULL devices and that "a future ULL-enabled system may require to have a
lighter queue mechanism and simpler protocol, such as NCQ of SATA".
:func:`lightqueue_study` evaluates that proposal: an NCQ-style
register-latched 32-entry queue (:mod:`repro.nvme.lightweight`) with a
thin dispatch path, against the standard NVMe rings, on the ULL SSD.
"""

from __future__ import annotations

from repro.core.metrics import FigureResult, Series
from repro.core.runners import anatomy_point, light_point
from repro.core.sweep import sweep


def lightqueue_study(io_count: int = 1500) -> FigureResult:
    """Latency of the NCQ-style light queue vs. NVMe rings (ULL, 4KB).

    The protocol saving (SQE fetch DMA + CQE post + doorbell + blk-mq
    tagging, ~1 µs end to end) is small in absolute terms but is a
    meaningful share of an ~10 µs I/O — exactly the paper's argument
    that the rich queue only earns its cost on devices that need deep
    parallelism.
    """
    variants = (
        ("NVMe rings, interrupt", False, "interrupt"),
        ("NVMe rings, poll", False, "poll"),
        ("Light queue, interrupt", True, "interrupt"),
        ("Light queue, poll", True, "poll"),
    )
    patterns = ("randread", "randwrite")
    points = [
        light_point(
            "ull", rw, light=light, completion=completion, io_count=io_count,
            key=(label, rw),
        )
        for label, light, completion in variants
        for rw in patterns
    ]
    data = sweep(points, name="ext-lightqueue")
    series = []
    for label, _light, _completion in variants:
        ys = [data[(label, rw)].result.latency.mean_us for rw in patterns]
        series.append(Series.from_points(label, patterns, ys, "us"))
    rich = series[0]
    light_series = series[2]
    saving = 1.0 - light_series.value_at("randread") / rich.value_at("randread")
    return FigureResult(
        figure_id="ext-lightqueue",
        title="NCQ-style light queue vs NVMe rings (ULL SSD, 4KB, QD1)",
        x_label="pattern",
        y_label="avg latency (us)",
        series=tuple(series),
        notes="Section IV-C implication prototype",
        extras={"read_saving_frac": saving},
    )


def latency_anatomy(
    io_count: int = 1200, rw: str = "randread", seed: int = 42
) -> FigureResult:
    """Where each microsecond of a 4 KB I/O goes, per stack (ULL SSD).

    Splits the application-observed latency into three stages using the
    stacks' stage probes:

    * **submit** — application start to doorbell/register write;
    * **device** — doorbell to CQE in host memory (protocol + flash);
    * **complete** — CQE to control returning to the application
      (MSI + ISR + wake-up, or poll detection).

    The device stage is invariant across stacks — the entire difference
    between interrupt, poll, and SPDK is software on either side of it,
    which is the paper's core argument in one picture.
    """
    variants = (
        ("Kernel interrupt", "kernel", "interrupt"),
        ("Kernel poll", "kernel", "poll"),
        ("SPDK", "spdk", None),
    )
    stage_names = ("submit", "device", "complete")
    points = [
        anatomy_point(kind, completion, rw, io_count, seed=seed, key=label)
        for label, kind, completion in variants
    ]
    data = sweep(points, name="ext-anatomy")
    series = []
    for label, _kind, _completion in variants:
        measured = data[label]
        ys = [
            measured.value(f"{stage}_ns") / 1000.0 for stage in stage_names
        ]
        series.append(Series.from_points(label, stage_names, ys, "us"))
    return FigureResult(
        figure_id="ext-anatomy",
        title=f"Latency anatomy of a 4KB {rw} (ULL SSD, QD1)",
        x_label="stage",
        y_label="mean time (us)",
        series=tuple(series),
        notes="device stage is stack-invariant; software differs",
    )


def lightqueue_depth_limit(io_count: int = 2500) -> FigureResult:
    """Bandwidth of the 32-entry light queue vs. deep NVMe rings.

    The flip side of the proposal: 32 NCQ slots are plenty for the ULL
    SSD (which saturates by QD 8-16) — the shallow queue loses nothing.
    """
    depths = (1, 4, 8, 16, 32)
    variants = (("NVMe rings", False), ("Light queue", True))
    points = [
        light_point(
            "ull", "randread", light=light, completion="interrupt",
            io_count=max(io_count, depth * 40), iodepth=depth,
            key=(label, depth),
        )
        for label, light in variants
        for depth in depths
    ]
    data = sweep(points, name="ext-lightqueue-depth")
    series = []
    for label, _light in variants:
        ys = [data[(label, depth)].result.bandwidth_mbps for depth in depths]
        series.append(Series.from_points(label, depths, ys, "MB/s"))
    return FigureResult(
        figure_id="ext-lightqueue-depth",
        title="Bandwidth vs queue depth: 32-slot light queue loses nothing",
        x_label="queue depth",
        y_label="bandwidth (MB/s)",
        series=tuple(series),
    )
