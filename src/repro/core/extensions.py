"""Extension experiments: the paper's *implications*, implemented.

Section IV-C concludes that NVMe's rich queue machinery is overkill for
ULL devices and that "a future ULL-enabled system may require to have a
lighter queue mechanism and simpler protocol, such as NCQ of SATA".
:func:`lightqueue_study` evaluates that proposal: an NCQ-style
register-latched 32-entry queue (:mod:`repro.nvme.lightweight`) with a
thin dispatch path, against the standard NVMe rings, on the ULL SSD.
"""

from __future__ import annotations

from repro.core.experiment import DeviceKind, build_device
from repro.core.metrics import FigureResult, Series
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.nvme.lightweight import LightQueuePair
from repro.sim.engine import Simulator
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import JobResult, run_job


def _run(
    *,
    light: bool,
    completion: CompletionMethod,
    rw: str,
    io_count: int,
    iodepth: int = 1,
) -> JobResult:
    sim = Simulator()
    device = build_device(sim, DeviceKind.ULL)
    qpair = None
    if light:
        qpair = LightQueuePair(
            sim,
            device,
            interrupts_enabled=(completion is CompletionMethod.INTERRUPT),
        )
    stack = KernelStack(
        sim, device, completion=completion, qpair=qpair, thin_submit=light
    )
    engine = IoEngineKind.PSYNC if iodepth == 1 else IoEngineKind.LIBAIO
    job = FioJob(
        name=f"light={light}", rw=rw, engine=engine,
        iodepth=iodepth, io_count=io_count,
    )
    return run_job(sim, stack, job)


def lightqueue_study(io_count: int = 1500) -> FigureResult:
    """Latency of the NCQ-style light queue vs. NVMe rings (ULL, 4KB).

    The protocol saving (SQE fetch DMA + CQE post + doorbell + blk-mq
    tagging, ~1 µs end to end) is small in absolute terms but is a
    meaningful share of an ~10 µs I/O — exactly the paper's argument
    that the rich queue only earns its cost on devices that need deep
    parallelism.
    """
    variants = (
        ("NVMe rings, interrupt", False, CompletionMethod.INTERRUPT),
        ("NVMe rings, poll", False, CompletionMethod.POLL),
        ("Light queue, interrupt", True, CompletionMethod.INTERRUPT),
        ("Light queue, poll", True, CompletionMethod.POLL),
    )
    patterns = ("randread", "randwrite")
    series = []
    for label, light, completion in variants:
        ys = [
            _run(light=light, completion=completion, rw=rw, io_count=io_count)
            .latency.mean_us
            for rw in patterns
        ]
        series.append(Series.from_points(label, patterns, ys, "us"))
    rich = series[0]
    light_series = series[2]
    saving = 1.0 - light_series.value_at("randread") / rich.value_at("randread")
    return FigureResult(
        figure_id="ext-lightqueue",
        title="NCQ-style light queue vs NVMe rings (ULL SSD, 4KB, QD1)",
        x_label="pattern",
        y_label="avg latency (us)",
        series=tuple(series),
        notes="Section IV-C implication prototype",
        extras={"read_saving_frac": saving},
    )


def latency_anatomy(
    io_count: int = 1200, rw: str = "randread", seed: int = 42
) -> FigureResult:
    """Where each microsecond of a 4 KB I/O goes, per stack (ULL SSD).

    Splits the application-observed latency into three stages using the
    stacks' stage probes:

    * **submit** — application start to doorbell/register write;
    * **device** — doorbell to CQE in host memory (protocol + flash);
    * **complete** — CQE to control returning to the application
      (MSI + ISR + wake-up, or poll detection).

    The device stage is invariant across stacks — the entire difference
    between interrupt, poll, and SPDK is software on either side of it,
    which is the paper's core argument in one picture.
    """
    from repro.spdk.stack import SpdkStack
    from repro.workloads.engines import MetricsCollector, SyncJobEngine
    from repro.workloads.patterns import make_pattern

    variants = (
        ("Kernel interrupt", "kernel", CompletionMethod.INTERRUPT),
        ("Kernel poll", "kernel", CompletionMethod.POLL),
        ("SPDK", "spdk", None),
    )
    stage_names = ("submit", "device", "complete")
    series = []
    for label, kind, completion in variants:
        sim = Simulator()
        device = build_device(sim, DeviceKind.ULL, seed=seed)
        if kind == "spdk":
            stack = SpdkStack(sim, device)
        else:
            stack = KernelStack(sim, device, completion=completion)
        stack.stage_log = []
        job = FioJob(
            name=label, rw=rw, engine=IoEngineKind.PSYNC, io_count=io_count
        )
        pattern = make_pattern(job.rw, job.block_size, device.capacity_bytes)
        metrics = MetricsCollector()
        process = sim.process(SyncJobEngine(sim, stack, job, pattern, metrics).run())
        sim.run_until_event(process)
        count = len(stack.stage_log)
        sums = [0, 0, 0]
        for start, submitted, cqe, done in stack.stage_log:
            sums[0] += submitted - start
            sums[1] += cqe - submitted
            sums[2] += done - cqe
        series.append(
            Series.from_points(
                label, stage_names, [s / count / 1000.0 for s in sums], "us"
            )
        )
    return FigureResult(
        figure_id="ext-anatomy",
        title=f"Latency anatomy of a 4KB {rw} (ULL SSD, QD1)",
        x_label="stage",
        y_label="mean time (us)",
        series=tuple(series),
        notes="device stage is stack-invariant; software differs",
    )


def lightqueue_depth_limit(io_count: int = 2500) -> FigureResult:
    """Bandwidth of the 32-entry light queue vs. deep NVMe rings.

    The flip side of the proposal: 32 NCQ slots are plenty for the ULL
    SSD (which saturates by QD 8-16) — the shallow queue loses nothing.
    """
    depths = (1, 4, 8, 16, 32)
    series = []
    for label, light in (("NVMe rings", False), ("Light queue", True)):
        ys = []
        for depth in depths:
            result = _run(
                light=light,
                completion=CompletionMethod.INTERRUPT,
                rw="randread",
                io_count=max(io_count, depth * 40),
                iodepth=depth,
            )
            ys.append(result.bandwidth_mbps)
        series.append(Series.from_points(label, depths, ys, "MB/s"))
    return FigureResult(
        figure_id="ext-lightqueue-depth",
        title="Bandwidth vs queue depth: 32-slot light queue loses nothing",
        x_label="queue depth",
        y_label="bandwidth (MB/s)",
        series=tuple(series),
    )
