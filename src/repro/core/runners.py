"""Measurement runners: the execution layer behind the sweep engine.

Each runner is a pure function from canonical parameters to a
:class:`~repro.core.sweep.Measurement` — it builds a fresh simulator,
device, and host stack, runs one job, and returns only detached data
(job summaries, device snapshots, scalars), never live simulator state.
That contract is what lets the engine execute points in worker
processes and persist results across runs.

Runners:

* ``job`` — the universal fio-style measurement: any device (with
  config overrides), any pattern/block size/engine/queue depth, kernel
  (interrupt/poll/hybrid, optionally the NCQ-style light queue) or SPDK
  host path.  Seeds are explicit (``device_seed``/``stack_seed``/
  ``job_seed``) so every figure reproduces its historical numbers.
* ``idle`` — a preconditioned device left alone; reports average power.
* ``nbd`` — fio over ext4 over an NBD client/server pair (Fig. 23).
* ``gc_policy`` — raw skewed-overwrite storm against the device (the
  GC victim-policy ablation; no host stack involved).
* ``anatomy`` — stage-probe run splitting latency into
  submit/device/complete (the ``ext-anatomy`` extension).

The point constructors (:func:`sync_point`, :func:`async_point`, ...)
encode the seed conventions the pre-engine helpers used, so figures
declare grids without repeating them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.api import JobConfig, Testbed, device_snapshot
from repro.core.sweep import Measurement, Point, make_point, runner
from repro.faults.plan import FaultPlan, active_plan
from repro.sim.engine import Simulator
from repro.ssd.device import SsdDevice
from repro.ssd.registry import effective_device, resolve_config
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import run_job


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _resolve_config(device: str, config_overrides=()):
    """Any device the registry accepts — preset alias, zoo name, or
    spec path — resolved with overrides applied."""
    return resolve_config(device, tuple(config_overrides))


def _resolve_faults(fault_plan: Tuple) -> Optional[FaultPlan]:
    """An explicit per-point plan wins; otherwise pick up the plan the
    CLI/engine installed ambiently (workers re-install it, so parallel
    runs see the same plan as serial ones)."""
    if fault_plan:
        return FaultPlan.from_params(fault_plan)
    return active_plan()


# ----------------------------------------------------------------------
# The universal job runner
# ----------------------------------------------------------------------
@runner("job")
def job_runner(
    *,
    device: str,
    rw: str,
    engine: str = "psync",
    block_size: int = 4096,
    iodepth: int = 1,
    io_count: int = 1000,
    write_fraction: float = 0.5,
    precondition: float = 1.0,
    stack: str = "kernel",
    completion: str = "interrupt",
    sleep_fraction: Optional[float] = None,
    light: bool = False,
    capture_timeseries: bool = False,
    config_overrides: Tuple = (),
    device_seed: int = 42,
    stack_seed: int = 11,
    job_seed: int = 1234,
    fault_plan: Tuple = (),
    want_device: bool = False,
) -> Measurement:
    """One fio-style measurement on a fresh simulator."""
    testbed = Testbed(
        device=device,
        stack=stack,
        completion=completion,
        precondition=precondition,
        light=light,
        sleep_fraction=sleep_fraction,
        config_overrides=tuple(config_overrides),
        device_seed=device_seed,
        stack_seed=stack_seed,
        faults=_resolve_faults(fault_plan),
    )
    config = JobConfig(
        rw=rw,
        engine=engine,
        block_size=block_size,
        iodepth=iodepth,
        io_count=io_count,
        write_fraction=write_fraction,
        seed=job_seed,
        capture_timeseries=capture_timeseries,
    )
    return testbed.run(config, want_device=want_device)


# ----------------------------------------------------------------------
# Idle power
# ----------------------------------------------------------------------
@runner("idle")
def idle_runner(
    *,
    device: str,
    duration_ns: int = 10_000_000,
    precondition: float = 1.0,
    device_seed: int = 42,
) -> Measurement:
    """A device left alone; reports its average power over the window."""
    sim = Simulator()
    ssd = Testbed(
        device=device, precondition=precondition, device_seed=device_seed,
        faults=active_plan(),
    ).open_device(sim)
    sim.run(until=duration_ns)
    return Measurement(
        values=(("avg_power_w", ssd.power.average_watts(sim.now)),)
    )


# ----------------------------------------------------------------------
# Server-client NBD path (Fig. 23)
# ----------------------------------------------------------------------
class FileSystemOverNbd:
    """fio -> ext4 -> NBD client -> network -> server -> ULL SSD.

    Adapts the ext4 model to the ``sync_io`` contract the workload
    engines expect, adding the client's user-space cost per file I/O.
    """

    def __init__(self, sim: Simulator, server, faults=None) -> None:
        from repro.host.accounting import CpuAccounting
        from repro.host.costs import DEFAULT_COSTS
        from repro.kstack.filesystem import Ext4Model
        from repro.net.nbd import NbdSystem

        self.sim = sim
        self.accounting = CpuAccounting()
        self.costs = DEFAULT_COSTS
        self.device = Testbed(device="ull", faults=faults).open_device(sim)
        self.nbd = NbdSystem(
            sim, self.device, server=server, accounting=self.accounting,
            faults=faults,
        )
        self.fs = Ext4Model(
            sim,
            self.accounting,
            self.nbd.sync_io,
            self.device.capacity_bytes,
        )

    @property
    def data_region_bytes(self) -> int:
        """File-data capacity left after the metadata/journal region."""
        return self.device.capacity_bytes - self.fs.data_base

    def sync_io(self, op, offset: int, nbytes: int):
        from repro.host.accounting import ExecMode
        from repro.ssd.device import IoOp

        costs = self.costs
        self.accounting.charge(
            costs.user_io_prep.ns, ExecMode.USER, "fio", "fio_rw",
            loads=costs.user_io_prep.loads, stores=costs.user_io_prep.stores,
        )
        yield self.sim.timeout(costs.user_io_prep.ns)
        if op is IoOp.READ:
            latency = yield from self.fs.read(offset, nbytes)
        else:
            latency = yield from self.fs.write(offset, nbytes)
        return latency + costs.user_io_prep.ns


@runner("nbd")
def nbd_runner(
    *,
    server: str,
    rw: str,
    block_size: int = 4096,
    io_count: int = 800,
    device: str = "ull",
    job_seed: int = 1234,
    fault_plan: Tuple = (),
) -> Measurement:
    """One synchronous file-I/O run over the NBD client/server system."""
    from repro.net.nbd import NbdServerKind

    if device != "ull":
        raise ValueError("the NBD system models the ULL SSD only")
    sim = Simulator()
    stack = FileSystemOverNbd(
        sim, NbdServerKind(server), faults=_resolve_faults(fault_plan)
    )
    job = FioJob(
        name=f"nbd-{server}-{rw}-{block_size}",
        rw=rw,
        block_size=block_size,
        engine=IoEngineKind.PSYNC,
        io_count=io_count,
        seed=job_seed,
        # Keep file data inside the region ext4 reserves for it.
        region_bytes=(stack.data_region_bytes // block_size) * block_size,
    )
    return Measurement(result=run_job(sim, stack, job))


# ----------------------------------------------------------------------
# GC victim-policy storm (ablation)
# ----------------------------------------------------------------------
@runner("gc_policy")
def gc_policy_runner(
    *,
    device: str,
    policy: str,
    io_count: int,
    hot_fraction: float,
    config_overrides: Tuple = (),
    rng_seed: int = 17,
) -> Measurement:
    """Skewed (80/20) raw overwrites against the device until GC steady
    state; reports write amplification and erase count."""
    import numpy as np

    config = dataclasses.replace(
        _resolve_config(device, config_overrides), gc_policy=policy
    )
    sim = Simulator()
    ssd = SsdDevice(sim, config, faults=active_plan())
    ssd.precondition()
    rng = np.random.default_rng(rng_seed)
    pages = ssd.logical_pages
    hot_pages = max(1, int(pages * hot_fraction))
    for _ in range(io_count):
        if rng.random() < 0.8:
            lpn = int(rng.integers(0, hot_pages))
        else:
            lpn = int(rng.integers(hot_pages, pages))
        ssd.write(lpn * 4096, 4096)
    sim.run()
    return Measurement(
        device=device_snapshot(ssd),
        values=(
            ("write_amplification", ssd.ftl.write_amplification()),
            ("erases", float(ssd.ftl.erases)),
        ),
    )


# ----------------------------------------------------------------------
# Latency anatomy via stage probes (extension)
# ----------------------------------------------------------------------
@runner("anatomy")
def anatomy_runner(
    *,
    device: str,
    stack: str,
    completion: Optional[str],
    rw: str,
    io_count: int,
    device_seed: int = 42,
) -> Measurement:
    """Mean submit/device/complete stage times of a synchronous run."""
    from repro.workloads.engines import MetricsCollector, SyncJobEngine
    from repro.workloads.patterns import make_pattern

    sim = Simulator()
    ssd, host = Testbed(
        device=device,
        stack=stack,
        completion=completion or "interrupt",
        device_seed=device_seed,
        faults=active_plan(),
    ).build(sim)
    host.stage_log = []
    job = FioJob(
        name=f"anatomy-{stack}", rw=rw, engine=IoEngineKind.PSYNC, io_count=io_count
    )
    pattern = make_pattern(job.rw, job.block_size, ssd.capacity_bytes)
    metrics = MetricsCollector()
    process = sim.process(SyncJobEngine(sim, host, job, pattern, metrics).run())
    sim.run_until_event(process)
    count = len(host.stage_log)
    sums = [0, 0, 0]
    for start, submitted, cqe, done in host.stage_log:
        sums[0] += submitted - start
        sums[1] += cqe - submitted
        sums[2] += done - cqe
    return Measurement(
        values=(
            ("submit_ns", sums[0] / count),
            ("device_ns", sums[1] / count),
            ("complete_ns", sums[2] / count),
        )
    )


# ----------------------------------------------------------------------
# Point constructors: the seed conventions of the pre-engine helpers
# ----------------------------------------------------------------------
# Each constructor passes its device through
# ``registry.effective_device`` — the CLI's ``--device`` override
# substitutes at *declaration* time, so the override lands in the
# point's canonical parameters (and its cache key) and worker processes
# need no ambient state.  Default point *keys* keep the declared device
# name: figures index and label their series by the grid they declared,
# and overridden grids that collapse onto one device dedup through the
# engine's memo (identical params = one execution).  ``nbd_point`` is
# the one exception: the NBD system models the ULL SSD only.
def sync_point(
    device: str,
    rw: str,
    *,
    block_size: int = 4096,
    method: str = "interrupt",
    stack: str = "kernel",
    io_count: int = 2000,
    key=None,
) -> Point:
    """A synchronous (pvsync2 / SPDK-plugin) measurement.

    Mirrors ``run_sync_job``: one seed (42) drives device, stack, and
    access pattern alike.
    """
    if key is None:
        key = (device, rw, block_size, method, stack)
    device = effective_device(device)
    return make_point(
        key,
        "job",
        device=device,
        rw=rw,
        engine="psync",
        block_size=block_size,
        io_count=io_count,
        stack=stack,
        completion=method,
        device_seed=42,
        stack_seed=42,
        job_seed=42,
    )


def async_point(
    device: str,
    rw: str,
    *,
    iodepth: int = 1,
    io_count: int = 2000,
    write_fraction: float = 0.5,
    capture_timeseries: bool = False,
    config_overrides: Tuple = (),
    want_device: bool = False,
    key=None,
) -> Point:
    """An asynchronous (libaio, interrupt-completed) measurement.

    Mirrors ``run_async_job``: device and pattern seeded 42, stack 11.
    """
    if key is None:
        key = (device, rw, iodepth)
    device = effective_device(device)
    return make_point(
        key,
        "job",
        device=device,
        rw=rw,
        engine="libaio",
        iodepth=iodepth,
        io_count=io_count,
        write_fraction=write_fraction,
        capture_timeseries=capture_timeseries,
        config_overrides=config_overrides,
        want_device=want_device,
        device_seed=42,
        stack_seed=11,
        job_seed=42,
    )


def gc_point(device: str, io_count: int, *, key=None) -> Point:
    """Sustained sync QD-1 random overwrites until GC engages, with the
    latency time series and a device snapshot (Figs. 7b/8)."""
    if key is None:
        key = ("gc", device)
    device = effective_device(device)
    return make_point(
        key,
        "job",
        device=device,
        rw="randwrite",
        engine="psync",
        io_count=io_count,
        capture_timeseries=True,
        want_device=True,
        device_seed=42,
        stack_seed=11,
        job_seed=1234,
    )


def config_point(
    device: str,
    rw: str,
    *,
    io_count: int,
    config_overrides: Tuple = (),
    engine: str = "psync",
    iodepth: int = 1,
    write_fraction: float = 0.5,
    completion: str = "interrupt",
    sleep_fraction: Optional[float] = None,
    want_device: bool = False,
    key,
) -> Point:
    """An ablation-style run on a modified device config.

    Mirrors ``ablations._run_on_config``: device seed 42, stack seed 11,
    fio's default pattern seed (1234).
    """
    device = effective_device(device)
    return make_point(
        key,
        "job",
        device=device,
        rw=rw,
        engine=engine,
        iodepth=iodepth,
        io_count=io_count,
        write_fraction=write_fraction,
        completion=completion,
        sleep_fraction=sleep_fraction,
        config_overrides=config_overrides,
        want_device=want_device,
        device_seed=42,
        stack_seed=11,
        job_seed=1234,
    )


def light_point(
    device: str,
    rw: str,
    *,
    light: bool,
    completion: str,
    io_count: int,
    iodepth: int = 1,
    key=None,
) -> Point:
    """A light-queue-vs-NVMe-rings measurement (extension studies)."""
    if key is None:
        key = (device, rw, light, completion, iodepth)
    device = effective_device(device)
    return make_point(
        key,
        "job",
        device=device,
        rw=rw,
        engine="psync" if iodepth == 1 else "libaio",
        iodepth=iodepth,
        io_count=io_count,
        completion=completion,
        light=light,
        device_seed=42,
        stack_seed=11,
        job_seed=1234,
    )


def idle_point(device: str, *, duration_ns: int = 10_000_000, key=None) -> Point:
    """Average power of an idle, preconditioned device."""
    if key is None:
        key = ("idle", device)
    device = effective_device(device)
    return make_point(
        key,
        "idle",
        device=device,
        duration_ns=duration_ns,
    )


def nbd_point(server: str, rw: str, block_size: int, io_count: int, *, key=None) -> Point:
    """One Fig. 23 server-client NBD measurement."""
    return make_point(
        key if key is not None else (server, rw, block_size),
        "nbd",
        device="ull",
        server=server,
        rw=rw,
        block_size=block_size,
        io_count=io_count,
    )


def anatomy_point(
    stack: str, completion: Optional[str], rw: str, io_count: int, *,
    device: str = "ull", seed: int = 42, key=None,
) -> Point:
    """One stage-probe run for the latency-anatomy extension."""
    if key is None:
        key = (stack, completion)
    device = effective_device(device)
    return make_point(
        key,
        "anatomy",
        device=device,
        stack=stack,
        completion=completion,
        rw=rw,
        io_count=io_count,
        device_seed=seed,
    )
