"""Figure 23: SPDK in a real server-client system (paper Section VI-C)."""

from __future__ import annotations

from typing import Tuple

from repro.core.display import KB
from repro.core.metrics import FigureResult, Series
from repro.core.runners import FileSystemOverNbd, nbd_point  # noqa: F401 (re-export)
from repro.core.sweep import sweep
from repro.net.nbd import NbdServerKind

NBD_BLOCK_SIZES = (4096, 8192, 16384, 32768, 65536)
NBD_PATTERNS = ("read", "randread", "write", "randwrite")
NBD_PATTERN_LABELS = {
    "read": "SeqRd", "randread": "RndRd", "write": "SeqWr", "randwrite": "RndWr",
}


def fig23(io_count: int = 800, block_sizes: Tuple[int, ...] = NBD_BLOCK_SIZES):
    """Kernel NBD vs. SPDK NBD latency over ext4 (Fig. 23)."""
    servers = (NbdServerKind.KERNEL, NbdServerKind.SPDK)
    points = [
        nbd_point(server.value, rw, bs, io_count)
        for rw in NBD_PATTERNS
        for server in servers
        for bs in block_sizes
    ]
    data = sweep(points, name="fig23")
    series = []
    for rw in NBD_PATTERNS:
        for server in servers:
            label = "Kernel NBD" if server is NbdServerKind.KERNEL else "SPDK NBD"
            ys = [
                data[(server.value, rw, bs)].result.latency.mean_us
                for bs in block_sizes
            ]
            series.append(
                Series.from_points(
                    f"{NBD_PATTERN_LABELS[rw]} {label}",
                    [KB[bs] for bs in block_sizes],
                    ys,
                    "us",
                )
            )
    return FigureResult(
        figure_id="fig23",
        title="Server-client NBD latency: kernel vs SPDK server (ULL SSD)",
        x_label="file size / block size",
        y_label="avg latency (us)",
        series=tuple(series),
        notes="client ext4 cannot be bypassed; SPDK replaces the server side",
    )
