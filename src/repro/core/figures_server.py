"""Figure 23: SPDK in a real server-client system (paper Section VI-C)."""

from __future__ import annotations

from typing import Tuple

from repro.core.experiment import DeviceKind, build_device
from repro.core.figures_completion import KB
from repro.core.metrics import FigureResult, Series
from repro.host.accounting import CpuAccounting, ExecMode
from repro.host.costs import DEFAULT_COSTS
from repro.kstack.filesystem import Ext4Model
from repro.net.link import NetworkLink
from repro.net.nbd import NbdServerKind, NbdSystem
from repro.obs.core import obs_aware_cache
from repro.sim.engine import Simulator
from repro.ssd.device import IoOp
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import run_job

NBD_BLOCK_SIZES = (4096, 8192, 16384, 32768, 65536)
NBD_PATTERNS = ("read", "randread", "write", "randwrite")
NBD_PATTERN_LABELS = {
    "read": "SeqRd", "randread": "RndRd", "write": "SeqWr", "randwrite": "RndWr",
}


class FileSystemOverNbd:
    """fio -> ext4 -> NBD client -> network -> server -> ULL SSD.

    Adapts the ext4 model to the ``sync_io`` contract the workload
    engines expect, adding the client's user-space cost per file I/O.
    """

    def __init__(self, sim: Simulator, server: NbdServerKind) -> None:
        self.sim = sim
        self.accounting = CpuAccounting()
        self.costs = DEFAULT_COSTS
        self.device = build_device(sim, DeviceKind.ULL)
        self.nbd = NbdSystem(
            sim, self.device, server=server, accounting=self.accounting
        )
        self.fs = Ext4Model(
            sim,
            self.accounting,
            self.nbd.sync_io,
            self.device.capacity_bytes,
        )

    @property
    def data_region_bytes(self) -> int:
        """File-data capacity left after the metadata/journal region."""
        return self.device.capacity_bytes - self.fs.data_base

    def sync_io(self, op: IoOp, offset: int, nbytes: int):
        costs = self.costs
        self.accounting.charge(
            costs.user_io_prep.ns, ExecMode.USER, "fio", "fio_rw",
            loads=costs.user_io_prep.loads, stores=costs.user_io_prep.stores,
        )
        yield self.sim.timeout(costs.user_io_prep.ns)
        if op is IoOp.READ:
            latency = yield from self.fs.read(offset, nbytes)
        else:
            latency = yield from self.fs.write(offset, nbytes)
        return latency + costs.user_io_prep.ns


@obs_aware_cache
def _nbd_run(server_value: str, rw: str, block_size: int, io_count: int):
    sim = Simulator()
    stack = FileSystemOverNbd(sim, NbdServerKind(server_value))
    job = FioJob(
        name=f"nbd-{server_value}-{rw}-{block_size}",
        rw=rw,
        block_size=block_size,
        engine=IoEngineKind.PSYNC,
        io_count=io_count,
        # Keep file data inside the region ext4 reserves for it.
        region_bytes=(stack.data_region_bytes // block_size) * block_size,
    )
    return run_job(sim, stack, job)


def fig23(io_count: int = 800, block_sizes: Tuple[int, ...] = NBD_BLOCK_SIZES):
    """Kernel NBD vs. SPDK NBD latency over ext4 (Fig. 23)."""
    series = []
    for rw in NBD_PATTERNS:
        for server in (NbdServerKind.KERNEL, NbdServerKind.SPDK):
            label = "Kernel NBD" if server is NbdServerKind.KERNEL else "SPDK NBD"
            ys = []
            for bs in block_sizes:
                result = _nbd_run(server.value, rw, bs, io_count)
                ys.append(result.latency.mean_us)
            series.append(
                Series.from_points(
                    f"{NBD_PATTERN_LABELS[rw]} {label}",
                    [KB[bs] for bs in block_sizes],
                    ys,
                    "us",
                )
            )
    return FigureResult(
        figure_id="fig23",
        title="Server-client NBD latency: kernel vs SPDK server (ULL SSD)",
        x_label="file size / block size",
        y_label="avg latency (us)",
        series=tuple(series),
        notes="client ext4 cannot be bypassed; SPDK replaces the server side",
    )
