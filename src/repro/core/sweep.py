"""Declarative sweep engine: point grids, parallel execution, caching.

Every figure reproduction is a grid of independent measurements — each
one builds a fresh :class:`~repro.sim.engine.Simulator` with fixed
seeds, so a point's result depends only on its parameters.  This module
turns that fact into infrastructure:

* a figure declares its grid as :class:`Point` objects (a *runner* name
  plus canonical parameters) wrapped in an :class:`ExperimentSpec`;
* a :class:`SweepEngine` executes the grid — serially or fanned out
  across a ``ProcessPoolExecutor`` — and returns ``{point.key:
  Measurement}`` merged deterministically by point key, so parallel
  output is bit-identical to serial;
* results land in an in-process memo (figures share identical points,
  e.g. Figs. 9-16 all reuse the same synchronous runs) and, optionally,
  in a persistent on-disk :class:`SweepCache` keyed by a canonical hash
  of (schema version, point params, device config, cost table) that
  survives across runs;
* while an :class:`~repro.obs.core.Observability` bundle is installed,
  the engine steps aside exactly like ``obs_aware_cache`` did: every
  point executes live (a traced run must actually run to produce
  spans), nothing is read from or written to either cache, and in
  parallel mode each worker records into its own bundle which is
  shipped back and absorbed into the parent tracer/registry in point
  order.

The actual measurement code lives in :mod:`repro.core.runners`; runners
register themselves by name so worker processes can resolve them after
a fork/spawn.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.core import Observability, current_obs

#: Bump when a change invalidates previously cached measurements
#: (simulator semantics, Measurement layout, runner behavior).
CACHE_SCHEMA = 1

#: Where the CLI persists measurements unless told otherwise.
DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE_DIR", os.path.join("~", ".cache", "repro"))
).expanduser()


# ----------------------------------------------------------------------
# Canonical parameter values
# ----------------------------------------------------------------------
def canonical(value: Any) -> Any:
    """Normalize a parameter value into the hashable canonical subset.

    Allowed: ``None``, ``bool``, ``int``, ``float``, ``str``, enums
    (replaced by their value), and tuples/lists/dicts of the same
    (dicts become sorted item tuples).  Anything else is rejected so
    cache keys stay well-defined.
    """
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(canonical(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), canonical(v)) for k, v in value.items()))
    raise TypeError(
        f"sweep parameters must be scalars/tuples/dicts, got {type(value).__name__}"
    )


def canonical_params(params: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Sorted, canonicalized ``(name, value)`` pairs."""
    return tuple(sorted((name, canonical(v)) for name, v in params.items()))


# ----------------------------------------------------------------------
# The declarative layer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Point:
    """One measurement of a grid: a runner name plus its parameters.

    ``key`` identifies the point *within its spec* (figures index the
    result dict by it); ``params`` identify the measurement globally
    (two points with equal runner+params are the same measurement and
    share cache entries, across figures and across runs).
    """

    key: Any
    runner: str
    params: Tuple[Tuple[str, Any], ...]

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)


def make_point(key: Any, runner: str, **params: Any) -> Point:
    """A :class:`Point` with canonicalized parameters."""
    return Point(key=key, runner=runner, params=canonical_params(params))


@dataclass(frozen=True)
class ExperimentSpec:
    """A named grid of points (one figure's worth of measurements)."""

    name: str
    points: Tuple[Point, ...]
    version: int = CACHE_SCHEMA

    def __post_init__(self) -> None:
        keys = [point.key for point in self.points]
        if len(set(keys)) != len(keys):
            dupes = sorted({repr(k) for k in keys if keys.count(k) > 1})
            raise ValueError(f"spec {self.name!r} has duplicate point keys: {dupes}")


# ----------------------------------------------------------------------
# Measurement results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeviceSnapshot:
    """Device-side state a figure reads after a run, detached from the
    simulator so it can cross process/cache boundaries."""

    gc_events: int = 0
    first_gc_ns: int = -1  # -1: GC never engaged
    write_amplification: float = 0.0
    erases: int = 0
    power_series: Optional[object] = None  # stats.timeseries.TimeSeries
    #: Registry/spec name of the device measured ("" for legacy
    #: snapshots unpickled from warm caches).
    device: str = ""


@dataclass(frozen=True)
class Measurement:
    """What one point produced: the job result, optional device-side
    extracts, and runner-specific scalar values."""

    result: Optional[object] = None  # workloads.runner.JobResult
    device: Optional[DeviceSnapshot] = None
    values: Tuple[Tuple[str, float], ...] = ()

    def value(self, name: str) -> float:
        """A named scalar from ``values`` (raises KeyError if absent)."""
        table = dict(self.values)
        return table[name]


# ----------------------------------------------------------------------
# Runner registry
# ----------------------------------------------------------------------
_RUNNERS: Dict[str, Callable[..., Measurement]] = {}


def runner(name: str) -> Callable:
    """Class-level decorator registering a measurement runner by name."""

    def register(fn: Callable[..., Measurement]) -> Callable[..., Measurement]:
        _RUNNERS[name] = fn
        return fn

    return register


def get_runner(name: str) -> Callable[..., Measurement]:
    if name not in _RUNNERS:
        import repro.core.runners  # noqa: F401  (registers the built-ins)
    return _RUNNERS[name]


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def _device_identity(params: Dict[str, Any]) -> str:
    """The resolved device identity a point will run against.

    Preset devices (``"ull"``/``"nvme"``) keep their historical identity
    string — a ``repr`` of the resolved config — so warm caches stay
    valid; registry/spec devices are content-addressed by canonical spec
    hash (``spec:<name>:<hash>``).  See
    :func:`repro.ssd.registry.device_identity`.
    """
    device = params.get("device")
    if not device:
        return ""
    from repro.ssd.registry import device_identity

    return device_identity(device, params.get("config_overrides", ()))


def _costs_identity() -> str:
    """The current software cost table (read dynamically so edits and
    monkeypatches to ``repro.host.costs.DEFAULT_COSTS`` invalidate)."""
    from repro.host import costs as costs_module

    return repr(sorted(dataclasses.asdict(costs_module.DEFAULT_COSTS).items()))


def _ambient_fault_params():
    """The ambiently installed fault plan as canonical params, or None.

    Points that carry an explicit ``fault_plan`` parameter are already
    keyed by it; this covers plans installed around a whole run (the
    CLI's ``--faults`` flag), which otherwise would alias fault-free
    cache entries.
    """
    from repro.faults.plan import active_plan

    plan = active_plan()
    return plan.to_params() if plan is not None else None


def _ambient_telemetry_params():
    """The installed bundle's telemetry config as canonical params, or None.

    Telemetry-enabled runs execute live (the engine steps aside under
    any installed bundle), so this is belt-and-braces — but it keeps the
    invariant airtight: a measurement produced with telemetry on can
    never be served to a telemetry-off caller or vice versa, even if a
    future path caches under an installed bundle.
    """
    telemetry = getattr(current_obs(), "telemetry", None)
    if telemetry is None or not telemetry.enabled:
        return None
    return telemetry.config.to_params()


# NOTE: the self-profiler (repro.obs.prof) and the blame recorder
# (repro.obs.blame) are deliberately *excluded* from cache keys.  Their
# configuration is attribution-only — it cannot change a measurement
# (byte-identity is a tested guarantee for both), and profiled/blamed
# runs always execute live because an enabled profiler or blame
# recorder makes the installed bundle ``enabled`` (blame additionally
# requires tracing).  Keying on them would only fragment warm caches.


def point_cache_key(point: Point, version: int = CACHE_SCHEMA) -> str:
    """Canonical hash identifying one measurement across runs."""
    items = [
        CACHE_SCHEMA,
        version,
        point.runner,
        point.params,
        _device_identity(point.kwargs()),
        _costs_identity(),
    ]
    ambient_faults = _ambient_fault_params()
    if ambient_faults is not None:
        # Appended only when a plan is live, so fault-free runs keep
        # their historical keys (and their warm caches).
        items.append(ambient_faults)
    ambient_telemetry = _ambient_telemetry_params()
    if ambient_telemetry is not None:
        # Same append-only discipline as faults: telemetry-off runs keep
        # their historical keys.
        items.append(("telemetry", ambient_telemetry))
    blob = repr(tuple(items))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Persistent cache
# ----------------------------------------------------------------------
class SweepCache:
    """Pickle-per-measurement cache under a root directory.

    Layout: ``<root>/<hash[:2]>/<hash>.pkl``.  Reads tolerate missing or
    corrupt files (a miss); writes are atomic (temp file + rename) so
    parallel runs never observe torn entries.
    """

    def __init__(self, root) -> None:
        self.root = Path(root).expanduser()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Measurement]:
        try:
            with open(self._path(key), "rb") as fh:
                return pickle.load(fh)
        except (OSError, EOFError, pickle.PickleError, AttributeError, ImportError):
            return None

    def put(self, key: str, measurement: Measurement) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            return  # cache dir unusable: run uncached rather than fail
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(measurement, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)


# ----------------------------------------------------------------------
# Worker entry points (module-level: must be picklable)
# ----------------------------------------------------------------------
def _execute_point(
    runner_name: str,
    params: Tuple[Tuple[str, Any], ...],
    fault_params=None,
) -> Measurement:
    fn = get_runner(runner_name)
    if fault_params:
        # Re-install the parent's ambient fault plan explicitly: worker
        # processes (spawn in particular) don't inherit module state.
        from repro.faults.plan import FaultPlan

        with FaultPlan.from_params(fault_params).installed():
            return fn(**dict(params))
    return fn(**dict(params))


def _execute_point_traced(
    runner_name: str,
    params: Tuple[Tuple[str, Any], ...],
    tracing: bool,
    metrics: bool,
    fault_params=None,
    telemetry_params=None,
    profile_params=None,
    blame_params=None,
):
    """Run one point under a fresh worker-local bundle and ship both back."""
    telemetry = None
    if telemetry_params is not None:
        from repro.obs.telemetry import TelemetryConfig

        telemetry = TelemetryConfig.from_params(telemetry_params)
    profile = None
    if profile_params is not None:
        from repro.obs.prof import ProfilerConfig

        profile = ProfilerConfig.from_params(profile_params)
    blame = None
    if blame_params is not None:
        from repro.obs.blame import BlameConfig

        blame = BlameConfig.from_params(blame_params)
    bundle = Observability(
        tracing=tracing, metrics=metrics, telemetry=telemetry, profile=profile,
        blame=blame,
    )
    with bundle:
        measurement = _execute_point(runner_name, params, fault_params)
    return measurement, bundle


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class SweepStats:
    """Cumulative engine counters (the CLI prints per-figure deltas)."""

    points: int = 0
    executed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    traced: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class SweepEngine:
    """Executes :class:`ExperimentSpec` grids with memoization, optional
    persistence, and optional process-pool fan-out."""

    def __init__(self, *, jobs: int = 1, cache: Optional[SweepCache] = None) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.stats = SweepStats()
        self._memo: Dict[str, Measurement] = {}

    # ------------------------------------------------------------------
    def clear_memo(self) -> None:
        """Drop the in-process memo (the disk cache is untouched)."""
        self._memo.clear()

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> Dict[Any, Measurement]:
        """Execute every point of ``spec``; returns ``{key: Measurement}``
        in spec point order regardless of execution order."""
        self.stats.points += len(spec.points)
        obs = current_obs()
        if obs.enabled:
            return self._run_traced(spec, obs)

        results: Dict[Any, Measurement] = {}
        pending: List[Tuple[str, List[Point]]] = []
        pending_index: Dict[str, int] = {}
        for point in spec.points:
            key = point_cache_key(point, spec.version)
            measurement = self._memo.get(key)
            if measurement is not None:
                self.stats.memo_hits += 1
                results[point.key] = measurement
                continue
            if self.cache is not None:
                measurement = self.cache.get(key)
                if measurement is not None:
                    self.stats.disk_hits += 1
                    self._memo[key] = measurement
                    results[point.key] = measurement
                    continue
            if key in pending_index:
                pending[pending_index[key]][1].append(point)
            else:
                pending_index[key] = len(pending)
                pending.append((key, [point]))

        if pending:
            fault_params = _ambient_fault_params()
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _execute_point,
                            points[0].runner,
                            points[0].params,
                            fault_params,
                        )
                        for _key, points in pending
                    ]
                    measured = [future.result() for future in futures]
            else:
                measured = [
                    _execute_point(points[0].runner, points[0].params, fault_params)
                    for _key, points in pending
                ]
            for (key, points), measurement in zip(pending, measured):
                self.stats.executed += 1
                self._memo[key] = measurement
                if self.cache is not None:
                    self.cache.put(key, measurement)
                for point in points:
                    results[point.key] = measurement

        return {point.key: results[point.key] for point in spec.points}

    # ------------------------------------------------------------------
    def _run_traced(self, spec: ExperimentSpec, obs) -> Dict[Any, Measurement]:
        """Live execution under an installed bundle: no cache on either
        side, every point runs, spans/metrics land in ``obs``.

        Serial and parallel take the same shape — each point records
        into a fresh per-point bundle which is absorbed into ``obs`` in
        spec order — so traced output is identical either way by
        construction (gauge time-weighting in particular cannot be
        merged from aggregates any other way: each point restarts the
        simulator clock at zero).
        """
        results: Dict[Any, Measurement] = {}
        points = spec.points
        tracing = bool(getattr(obs.tracer, "enabled", False))
        metrics = bool(getattr(obs.registry, "enabled", False))
        fault_params = _ambient_fault_params()
        telemetry = getattr(obs, "telemetry", None)
        telemetry_params = (
            telemetry.config.to_params()
            if telemetry is not None and telemetry.enabled
            else None
        )
        profiler = getattr(obs, "profiler", None)
        profile_params = (
            profiler.config.to_params()
            if profiler is not None and profiler.enabled
            else None
        )
        blame = getattr(obs, "blame", None)
        blame_params = blame.config.to_params() if blame is not None else None
        if self.jobs > 1 and len(points) > 1:
            workers = min(self.jobs, len(points))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _execute_point_traced, point.runner, point.params,
                        tracing, metrics, fault_params, telemetry_params,
                        profile_params, blame_params,
                    )
                    for point in points
                ]
                pairs = [future.result() for future in futures]
        else:
            pairs = [
                _execute_point_traced(
                    point.runner, point.params, tracing, metrics, fault_params,
                    telemetry_params, profile_params, blame_params,
                )
                for point in points
            ]
        # Absorb per-point bundles in spec order: deterministic pids,
        # io ids, and metric merge order.
        for point, (measurement, bundle) in zip(points, pairs):
            self.stats.executed += 1
            self.stats.traced += 1
            obs.absorb(bundle)
            results[point.key] = measurement
        return results


# ----------------------------------------------------------------------
# The process-default engine
# ----------------------------------------------------------------------
_UNSET = object()
_DEFAULT_ENGINE = SweepEngine()


def default_engine() -> SweepEngine:
    """The engine figure functions submit their grids to."""
    return _DEFAULT_ENGINE


def configure(*, jobs: Optional[int] = None, cache_dir: Any = _UNSET) -> SweepEngine:
    """Reconfigure the default engine (CLI flags, benchmark env vars).

    ``jobs``: worker-process count (1 = serial).  ``cache_dir``: a
    directory to persist measurements under, or ``None`` to disable the
    persistent layer (the in-process memo always stays on).
    """
    engine = _DEFAULT_ENGINE
    if jobs is not None:
        engine.jobs = max(1, int(jobs))
    if cache_dir is not _UNSET:
        engine.cache = SweepCache(cache_dir) if cache_dir else None
    return engine


def sweep(
    points: Iterable[Point], *, name: str = "adhoc", version: int = CACHE_SCHEMA
) -> Dict[Any, Measurement]:
    """Run a grid on the default engine; returns ``{key: Measurement}``."""
    spec = ExperimentSpec(name=name, points=tuple(points), version=version)
    return default_engine().run(spec)
