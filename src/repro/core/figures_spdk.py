"""Figures 17-22: the SPDK kernel-bypass stack (paper Section VI-A/B)."""

from __future__ import annotations

from typing import Tuple

from repro.core.display import KB, PATTERN_LABELS, PATTERNS
from repro.core.experiment import DeviceKind
from repro.core.figures_completion import _sync_sweep
from repro.core.metrics import FigureResult, Series
from repro.host.accounting import ExecMode

BLOCK_SIZES = (4096, 8192, 16384, 32768)
BIG_BLOCK_SIZES = (65536, 131072, 262144, 524288, 1048576)

SPDK_VS_INT = (("SPDK", "poll", "spdk"), ("Kernel Interrupt", "interrupt", "kernel"))


def _spdk_latency_fig(figure_id: str, device: DeviceKind, io_count: int,
                      block_sizes: Tuple[int, ...]):
    cells = [
        (device.value, rw, bs, method, stack)
        for rw in PATTERNS
        for _label, method, stack in SPDK_VS_INT
        for bs in block_sizes
    ]
    data = _sync_sweep(figure_id, cells, io_count)
    series = []
    for rw in PATTERNS:
        for label, method, stack in SPDK_VS_INT:
            ys = [
                data[(device.value, rw, bs, method, stack)].latency.mean_us
                for bs in block_sizes
            ]
            series.append(
                Series.from_points(
                    f"{PATTERN_LABELS[rw]} {label}",
                    [KB[bs] for bs in block_sizes],
                    ys,
                    "us",
                )
            )
    return FigureResult(
        figure_id=figure_id,
        title=f"SPDK vs kernel interrupt latency — {device.value.upper()} SSD",
        x_label="block size",
        y_label="avg latency (us)",
        series=tuple(series),
        notes=f"QD1, {io_count} I/Os per point",
    )


def fig17(io_count: int = 1500, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """SPDK vs. interrupt on the NVMe SSD: no meaningful win (Fig. 17)."""
    return _spdk_latency_fig("fig17", DeviceKind.NVME, io_count, tuple(block_sizes))


def fig18(io_count: int = 1500, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """SPDK vs. interrupt on the ULL SSD: kernel bypass pays off (Fig. 18)."""
    return _spdk_latency_fig("fig18", DeviceKind.ULL, io_count, tuple(block_sizes))


def fig19(io_count: int = 400, block_sizes: Tuple[int, ...] = BIG_BLOCK_SIZES):
    """Big requests: SPDK's advantage vanishes (Fig. 19)."""
    return _spdk_latency_fig("fig19", DeviceKind.ULL, io_count, tuple(block_sizes))


def fig20(io_count: int = 1200, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """CPU utilization: SPDK owns the whole core (Fig. 20)."""
    cells = [
        ("ull", rw, bs, method, stack)
        for rw in PATTERNS
        for _label, method, stack in SPDK_VS_INT
        for bs in block_sizes
    ]
    data = _sync_sweep("fig20", cells, io_count)
    series = []
    for rw in PATTERNS:
        for label, method, stack in SPDK_VS_INT:
            for mode in (ExecMode.USER, ExecMode.KERNEL):
                ys = [
                    100.0
                    * data[("ull", rw, bs, method, stack)].cpu_utilization(mode)
                    for bs in block_sizes
                ]
                series.append(
                    Series.from_points(
                        f"{PATTERN_LABELS[rw]} {label} {mode.value}",
                        [KB[bs] for bs in block_sizes],
                        ys,
                        "%",
                    )
                )
    return FigureResult(
        figure_id="fig20",
        title="CPU utilization: SPDK vs kernel interrupt (ULL)",
        x_label="block size",
        y_label="CPU utilization (%)",
        series=tuple(series),
    )


def fig21(io_count: int = 1200, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """SPDK memory instructions, normalized to the interrupt path (Fig. 21)."""
    cells = [
        ("ull", rw, bs, method, stack)
        for rw in PATTERNS
        for bs in block_sizes
        for method, stack in (("poll", "spdk"), ("interrupt", "kernel"))
    ]
    data = _sync_sweep("fig21", cells, io_count)
    series = []
    for rw in PATTERNS:
        loads, stores = [], []
        for bs in block_sizes:
            spdk = data[("ull", rw, bs, "poll", "spdk")]
            interrupt = data[("ull", rw, bs, "interrupt", "kernel")]
            loads.append(
                spdk.accounting.total_loads() / interrupt.accounting.total_loads()
            )
            stores.append(
                spdk.accounting.total_stores() / interrupt.accounting.total_stores()
            )
        xs = [KB[bs] for bs in block_sizes]
        series.append(
            Series.from_points(f"{PATTERN_LABELS[rw]} Load", xs, loads, "x")
        )
        series.append(
            Series.from_points(f"{PATTERN_LABELS[rw]} Store", xs, stores, "x")
        )
    return FigureResult(
        figure_id="fig21",
        title="SPDK memory instructions normalized to interrupt (ULL)",
        x_label="block size",
        y_label="normalized count (x interrupt)",
        series=tuple(series),
    )


# ----------------------------------------------------------------------
# Figure 22: per-function load/store breakdowns
# ----------------------------------------------------------------------
def _fig22(figure_id: str, title: str, stack: str, functions, io_count: int):
    cells = [("ull", rw, 4096, "poll", stack) for rw in PATTERNS]
    data = _sync_sweep(figure_id, cells, io_count)
    series = []
    for function in functions + ("others",):
        xs, ys = [], []
        for rw in PATTERNS:
            result = data[("ull", rw, 4096, "poll", stack)]
            load_share = result.accounting.load_share_by_function()
            store_share = result.accounting.store_share_by_function()
            for kind, shares in (("LD", load_share), ("ST", store_share)):
                xs.append(f"{PATTERN_LABELS[rw]}-{kind}")
                if function == "others":
                    covered = sum(shares.get(f, 0.0) for f in functions)
                    ys.append(100.0 * (1.0 - covered))
                else:
                    ys.append(100.0 * shares.get(function, 0.0))
        series.append(Series.from_points(function, xs, ys, "%"))
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="pattern-instruction",
        y_label="% of instructions",
        series=tuple(series),
    )


def fig22a(io_count: int = 1200):
    """Kernel polling: which functions issue the memory traffic (Fig. 22a)."""
    return _fig22(
        "fig22a",
        "Load/store breakdown by function — kernel polling (ULL, 4KB)",
        "kernel",
        ("blk_mq_poll", "nvme_poll"),
        io_count,
    )


def fig22b(io_count: int = 1200):
    """SPDK: which functions issue the memory traffic (Fig. 22b)."""
    return _fig22(
        "fig22b",
        "Load/store breakdown by function — SPDK (ULL, 4KB)",
        "spdk",
        (
            "spdk_nvme_qpair_process_completions",
            "nvme_pcie_qpair_process_completions",
            "nvme_qpair_check_enabled",
        ),
        io_count,
    )
