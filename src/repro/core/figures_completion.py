"""Figures 9-16: I/O completion methods (paper Section V).

All experiments are synchronous (pvsync2) on one core, as in the paper.
Each figure declares its (pattern x variant x block size) grid as sweep
points; identical cells across figures (Figs. 9-16 share many runs)
collapse in the engine's memo and persistent cache.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.display import KB, PATTERN_LABELS, PATTERNS
from repro.core.experiment import DeviceKind
from repro.core.metrics import FigureResult, Series
from repro.core.runners import sync_point
from repro.core.sweep import sweep
from repro.host.accounting import ExecMode

BLOCK_SIZES = (4096, 8192, 16384, 32768)


def _sync_sweep(name: str, cells, io_count: int):
    """Run every unique (device, rw, block_size, method, stack) cell.

    Returns ``{cell: JobResult}``; cells may repeat (figures often pair
    a variant with its interrupt baseline per block size).
    """
    unique = tuple(dict.fromkeys(cells))
    points = [
        sync_point(
            device, rw, block_size=bs, method=method, stack=stack,
            io_count=io_count,
        )
        for device, rw, bs, method, stack in unique
    ]
    data = sweep(points, name=name)
    return {cell: data[cell].result for cell in unique}


def _latency_vs_bs(
    figure_id: str,
    title: str,
    device: DeviceKind,
    variants,
    io_count: int,
    block_sizes: Tuple[int, ...],
    patterns=PATTERNS,
    metric: str = "mean",
):
    """Generic grid: per pattern, one series per completion variant."""
    cells = [
        (device.value, rw, bs, method, stack)
        for rw in patterns
        for _label, method, stack in variants
        for bs in block_sizes
    ]
    data = _sync_sweep(figure_id, cells, io_count)
    series = []
    for rw in patterns:
        for label, method, stack in variants:
            ys = []
            for bs in block_sizes:
                summary = data[(device.value, rw, bs, method, stack)].latency
                ys.append(
                    summary.mean_us if metric == "mean" else summary.p99999_us
                )
            series.append(
                Series.from_points(
                    f"{PATTERN_LABELS[rw]} {label}",
                    [KB[bs] for bs in block_sizes],
                    ys,
                    "us",
                )
            )
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="block size",
        y_label=("avg" if metric == "mean" else "99.999th") + " latency (us)",
        series=tuple(series),
        notes=f"pvsync2, {io_count} I/Os per point, {device.value.upper()} SSD",
    )


# ----------------------------------------------------------------------
# Figures 9 and 10: poll vs. interrupt latency
# ----------------------------------------------------------------------
POLL_VS_INT = (("Poll", "poll", "kernel"), ("Interrupt", "interrupt", "kernel"))


def fig09(io_count: int = 2000, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """Interrupt vs. poll latency on the NVMe SSD (Fig. 9)."""
    return _latency_vs_bs(
        "fig09",
        "Latency comparison (interrupt vs poll) — NVMe SSD",
        DeviceKind.NVME,
        POLL_VS_INT,
        io_count,
        tuple(block_sizes),
    )


def fig10(io_count: int = 2000, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """Interrupt vs. poll latency on the ULL SSD (Fig. 10)."""
    return _latency_vs_bs(
        "fig10",
        "Latency comparison (interrupt vs poll) — ULL SSD",
        DeviceKind.ULL,
        POLL_VS_INT,
        io_count,
        tuple(block_sizes),
    )


# ----------------------------------------------------------------------
# Figure 11: five-nines latency, poll vs. interrupt (ULL)
# ----------------------------------------------------------------------
def fig11(io_count: int = 25000, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """Five-nines latency of the ULL SSD: polling's tail is worse (Fig. 11)."""
    panels = (("randread", "Reads"), ("randwrite", "Writes"))
    cells = [
        ("ull", rw, bs, method, stack)
        for rw, _panel in panels
        for _label, method, stack in POLL_VS_INT
        for bs in block_sizes
    ]
    data = _sync_sweep("fig11", cells, io_count)
    series = []
    for rw, panel in panels:
        for label, method, stack in POLL_VS_INT:
            ys = [
                data[("ull", rw, bs, method, stack)].latency.p99999_us
                for bs in block_sizes
            ]
            series.append(
                Series.from_points(
                    f"{panel} {label}", [KB[bs] for bs in block_sizes], ys, "us"
                )
            )
    return FigureResult(
        figure_id="fig11",
        title="99.999th latency of ULL SSD (interrupt vs poll)",
        x_label="block size",
        y_label="99.999th latency (us)",
        series=tuple(series),
        notes=f"{io_count} I/Os per point; tails dominated by device stalls",
    )


# ----------------------------------------------------------------------
# Figures 12 and 13: CPU utilization
# ----------------------------------------------------------------------
def fig12(io_count: int = 1500, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """CPU utilization of hybrid polling (Fig. 12)."""
    cells = [
        ("ull", rw, bs, "hybrid", "kernel")
        for rw in PATTERNS
        for bs in block_sizes
    ]
    data = _sync_sweep("fig12", cells, io_count)
    series = []
    for rw in PATTERNS:
        ys = [
            100.0 * data[("ull", rw, bs, "hybrid", "kernel")].cpu_utilization()
            for bs in block_sizes
        ]
        series.append(
            Series.from_points(
                PATTERN_LABELS[rw], [KB[bs] for bs in block_sizes], ys, "%"
            )
        )
    return FigureResult(
        figure_id="fig12",
        title="CPU utilization of hybrid polling — ULL SSD",
        x_label="block size",
        y_label="CPU utilization (%)",
        series=tuple(series),
    )


def fig13(io_count: int = 1500, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """CPU utilization, interrupt vs. poll, split user/kernel (Fig. 13)."""
    variants = (("Interrupt", "interrupt", "kernel"), ("Poll", "poll", "kernel"))
    cells = [
        ("ull", rw, bs, method, stack)
        for rw in PATTERNS
        for _label, method, stack in variants
        for bs in block_sizes
    ]
    data = _sync_sweep("fig13", cells, io_count)
    series = []
    for rw in PATTERNS:
        for label, method, stack in variants:
            for mode in (ExecMode.USER, ExecMode.KERNEL):
                ys = [
                    100.0
                    * data[("ull", rw, bs, method, stack)].cpu_utilization(mode)
                    for bs in block_sizes
                ]
                series.append(
                    Series.from_points(
                        f"{PATTERN_LABELS[rw]} {label} {mode.value}",
                        [KB[bs] for bs in block_sizes],
                        ys,
                        "%",
                    )
                )
    return FigureResult(
        figure_id="fig13",
        title="CPU utilization of interrupt vs poll — ULL SSD",
        x_label="block size",
        y_label="CPU utilization (%)",
        series=tuple(series),
    )


# ----------------------------------------------------------------------
# Figure 14: CPU cycle breakdown of the polled path
# ----------------------------------------------------------------------
def fig14a(io_count: int = 1500):
    """Kernel cycles: NVMe driver vs. rest of the storage stack (Fig. 14a)."""
    cells = [("ull", rw, 4096, "poll", "kernel") for rw in PATTERNS]
    data = _sync_sweep("fig14a", cells, io_count)
    driver_share, stack_share = [], []
    for rw in PATTERNS:
        result = data[("ull", rw, 4096, "poll", "kernel")]
        by_module = result.accounting.cycles_by_module(ExecMode.KERNEL)
        storage = {
            module: ns
            for module, ns in by_module.items()
            if module in ("vfs", "blk-mq", "nvme-driver")
        }
        total = sum(storage.values())
        driver = storage.get("nvme-driver", 0)
        driver_share.append(100.0 * driver / total)
        stack_share.append(100.0 * (total - driver) / total)
    labels = [PATTERN_LABELS[rw] for rw in PATTERNS]
    return FigureResult(
        figure_id="fig14a",
        title="Kernel cycle breakdown by module (polled mode, ULL)",
        x_label="pattern",
        y_label="% of storage-stack cycles",
        series=(
            Series.from_points("Storage Stack", labels, stack_share, "%"),
            Series.from_points("NVMe Driver", labels, driver_share, "%"),
        ),
    )


def fig14b(io_count: int = 1500):
    """Kernel cycles: blk_mq_poll and nvme_poll dominate (Fig. 14b)."""
    cells = [("ull", rw, 4096, "poll", "kernel") for rw in PATTERNS]
    data = _sync_sweep("fig14b", cells, io_count)
    blk_poll, nvme_poll = [], []
    for rw in PATTERNS:
        result = data[("ull", rw, 4096, "poll", "kernel")]
        shares = result.accounting.cycle_share_by_function(ExecMode.KERNEL)
        blk_poll.append(100.0 * shares.get("blk_mq_poll", 0.0))
        nvme_poll.append(100.0 * shares.get("nvme_poll", 0.0))
    labels = [PATTERN_LABELS[rw] for rw in PATTERNS]
    return FigureResult(
        figure_id="fig14b",
        title="Kernel cycle breakdown by function (polled mode, ULL)",
        x_label="pattern",
        y_label="% of kernel cycles",
        series=(
            Series.from_points("blk_mq_poll", labels, blk_poll, "%"),
            Series.from_points("nvme_poll", labels, nvme_poll, "%"),
        ),
    )


# ----------------------------------------------------------------------
# Figure 15: memory instructions of poll, normalized to interrupt
# ----------------------------------------------------------------------
def fig15(io_count: int = 1500, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """Normalized load/store counts of polling (Fig. 15)."""
    panels = (("randread", "Reads"), ("randwrite", "Writes"))
    cells = [
        ("ull", rw, bs, method, "kernel")
        for rw, _panel in panels
        for bs in block_sizes
        for method in ("poll", "interrupt")
    ]
    data = _sync_sweep("fig15", cells, io_count)
    series = []
    for rw, panel in panels:
        loads, stores = [], []
        for bs in block_sizes:
            poll = data[("ull", rw, bs, "poll", "kernel")]
            interrupt = data[("ull", rw, bs, "interrupt", "kernel")]
            loads.append(
                poll.accounting.total_loads() / interrupt.accounting.total_loads()
            )
            stores.append(
                poll.accounting.total_stores() / interrupt.accounting.total_stores()
            )
        xs = [KB[bs] for bs in block_sizes]
        series.append(Series.from_points(f"{panel} Load", xs, loads, "x"))
        series.append(Series.from_points(f"{panel} Store", xs, stores, "x"))
    return FigureResult(
        figure_id="fig15",
        title="Memory instructions of poll, normalized to interrupt (ULL)",
        x_label="block size",
        y_label="normalized count (x interrupt)",
        series=tuple(series),
    )


# ----------------------------------------------------------------------
# Figure 16: latency reduction of polling and hybrid polling
# ----------------------------------------------------------------------
def fig16(io_count: int = 2000, block_sizes: Tuple[int, ...] = BLOCK_SIZES):
    """Latency reduction vs. interrupt: poll and hybrid (Fig. 16)."""
    cells = [
        ("ull", rw, bs, method, "kernel")
        for rw in PATTERNS
        for bs in block_sizes
        for method in ("interrupt", "poll", "hybrid")
    ]
    data = _sync_sweep("fig16", cells, io_count)
    series = []
    for rw in PATTERNS:
        for label, method in (("Polling", "poll"), ("Hybrid Polling", "hybrid")):
            ys = []
            for bs in block_sizes:
                base = data[("ull", rw, bs, "interrupt", "kernel")]
                variant = data[("ull", rw, bs, method, "kernel")]
                reduction = 100.0 * (
                    1.0 - variant.latency.mean_ns / base.latency.mean_ns
                )
                ys.append(reduction)
            series.append(
                Series.from_points(
                    f"{PATTERN_LABELS[rw]} {label}",
                    [KB[bs] for bs in block_sizes],
                    ys,
                    "%",
                )
            )
    return FigureResult(
        figure_id="fig16",
        title="Latency reduction over interrupt: poll vs hybrid (ULL)",
        x_label="block size",
        y_label="latency reduction (%)",
        series=tuple(series),
    )
