"""Figure result containers.

A :class:`FigureResult` is the reproduction of one paper figure/table: a
set of :class:`Series` (label + x/y arrays) plus provenance notes.  The
benchmark harness renders these and asserts their headline shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class Series:
    """One line/bar group of a figure."""

    label: str
    x: Tuple
    y: Tuple[float, ...]
    unit: str = ""

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )

    @classmethod
    def from_points(
        cls, label: str, x: Sequence, y: Sequence[float], unit: str = ""
    ) -> "Series":
        return cls(label=label, x=tuple(x), y=tuple(y), unit=unit)

    def value_at(self, x_value) -> float:
        """y value for an exact x (raises if absent)."""
        try:
            return self.y[self.x.index(x_value)]
        except ValueError as exc:
            raise KeyError(f"x={x_value!r} not in series {self.label!r}") from exc

    def to_dict(self) -> Dict:
        """A JSON-serializable rendering of this series."""
        return {
            "label": self.label,
            "x": list(self.x),
            "y": list(self.y),
            "unit": self.unit,
        }


@dataclass
class FigureResult:
    """A reproduced table or figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Tuple[Series, ...]
    notes: str = ""
    extras: Dict[str, float] = field(default_factory=dict)

    def get(self, label: str) -> Series:
        """Series by exact label."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(
            f"{self.figure_id}: no series {label!r}; have "
            f"{[s.label for s in self.series]}"
        )

    def find(self, *substrings: str) -> Series:
        """The unique series whose label contains all ``substrings``."""
        matches = [
            series
            for series in self.series
            if all(sub.lower() in series.label.lower() for sub in substrings)
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{self.figure_id}: {substrings} matched "
                f"{[s.label for s in matches]}"
            )
        return matches[0]

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(series.label for series in self.series)

    def to_dict(self) -> Dict:
        """A JSON-serializable rendering (machine-readable results)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [series.to_dict() for series in self.series],
            "notes": self.notes,
            "extras": dict(self.extras),
        }
