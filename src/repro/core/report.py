"""Plain-text rendering of figure results.

The benchmark harness prints these tables — the same rows/series the
paper's plots show, one series per row.
"""

from __future__ import annotations

from repro.core.metrics import FigureResult


def _fmt(value: float) -> str:
    if isinstance(value, str):
        return value
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


#: Unicode block characters, shortest to tallest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def render_sparkline(values, *, width: int = 60) -> str:
    """A one-line unicode plot of a numeric series.

    Long series are bucketed down to ``width`` columns (bucket means);
    the scale runs from the series minimum (▁) to maximum (█) — made
    for eyeballing the GC time-series figures in a terminal.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(values[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[min(top, int((v - low) / span * top + 0.5))] for v in values
    )


def render_timeseries(result: FigureResult) -> str:
    """Figure rendering for time-series results: label, range, sparkline."""
    lines = [f"== {result.figure_id}: {result.title} =="]
    if result.notes:
        lines.append(f"   ({result.notes})")
    label_width = max(len(s.label) for s in result.series)
    for series in result.series:
        low, high = min(series.y), max(series.y)
        lines.append(
            f"{series.label.ljust(label_width)} "
            f"[{low:8.2f} .. {high:8.2f} {series.unit}] "
            f"{render_sparkline(series.y)}"
        )
    return "\n".join(lines)


def render_figure(result: FigureResult, *, width: int = 14) -> str:
    """One table: x values as columns, one series per row."""
    lines = [f"== {result.figure_id}: {result.title} =="]
    if result.notes:
        lines.append(f"   ({result.notes})")
    xs = result.series[0].x if result.series else ()
    label_width = max([len(s.label) for s in result.series] + [len(result.x_label)])
    header = result.x_label.ljust(label_width) + " | " + " ".join(
        str(x)[:width].rjust(min(width, max(6, len(str(x))))) for x in xs
    )
    lines.append(header)
    lines.append("-" * len(header))
    for series in result.series:
        row = series.label.ljust(label_width) + " | " + " ".join(
            _fmt(y).rjust(min(width, max(6, len(str(x))))) for x, y in zip(series.x, series.y)
        )
        if series.unit:
            row += f"  [{series.unit}]"
        lines.append(row)
    if result.extras:
        extras = ", ".join(f"{key}={_fmt(val)}" for key, val in result.extras.items())
        lines.append(f"   extras: {extras}")
    return "\n".join(lines)
