"""Build-and-run helpers: one call per measurement.

Each measurement gets a *fresh* simulator and device (preconditioned
unless told otherwise), so runs are independent and deterministic for a
given seed.

The run helpers here (``run_sync_job``/``run_async_job``) are
**deprecated shims** over :mod:`repro.api` — new code should build a
:class:`repro.api.Testbed` and pass a :class:`repro.api.JobConfig`.
The low-level builders (``device_config``/``build_device``/
``build_stack``) remain supported for code that composes its own
simulator.
"""

from __future__ import annotations

import enum
import warnings
from typing import Optional, Tuple, Union

from repro.host.costs import DEFAULT_COSTS, SoftwareCosts
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.sim.engine import Simulator
from repro.spdk.stack import SpdkStack
from repro.ssd.config import SsdConfig
from repro.ssd.device import SsdDevice
from repro.ssd.presets import build_nvme_preset, build_ull_preset
from repro.workloads.runner import JobResult


class DeviceKind(enum.Enum):
    """The paper's two SSDs (the preset subset of the device registry).

    The full zoo — these two plus planar MLC, multi-step TLC, QLC, and
    the Optane-like PM device — lives in :mod:`repro.ssd.registry`;
    anything that accepts a device accepts a registry name or a spec
    path too.
    """

    ULL = "ull"
    NVME = "nvme"


class StackKind(enum.Enum):
    """Which host I/O path drives the device."""

    KERNEL = "kernel"
    SPDK = "spdk"


def device_config(kind: DeviceKind, **overrides) -> SsdConfig:
    """The preset config for ``kind`` (keyword overrides pass through).

    Preset path only; for registry names and spec files use
    :func:`repro.ssd.registry.resolve_config`.
    """
    if kind is DeviceKind.ULL:
        return build_ull_preset(**overrides)
    return build_nvme_preset(**overrides)


def build_device(
    sim: Simulator,
    kind: DeviceKind,
    *,
    precondition: float = 1.0,
    seed: int = 42,
    config: Optional[SsdConfig] = None,
) -> SsdDevice:
    """A fresh device, optionally preconditioned (whole-drive fill)."""
    device = SsdDevice(sim, config or device_config(kind), seed=seed)
    if precondition > 0:
        device.precondition(precondition)
    return device


def build_stack(
    sim: Simulator,
    device: SsdDevice,
    *,
    stack: StackKind = StackKind.KERNEL,
    completion: CompletionMethod = CompletionMethod.INTERRUPT,
    costs: Optional[SoftwareCosts] = None,
    seed: int = 11,
):
    """The host path: kernel (with a completion method) or SPDK."""
    if stack is StackKind.SPDK:
        return SpdkStack(sim, device, costs=costs or DEFAULT_COSTS)
    return KernelStack(
        sim, device, completion=completion, costs=costs or DEFAULT_COSTS, seed=seed
    )


def run_sync_job(
    device_kind: DeviceKind,
    rw: str,
    *,
    block_size: int = 4096,
    io_count: int = 2000,
    stack: StackKind = StackKind.KERNEL,
    completion: CompletionMethod = CompletionMethod.INTERRUPT,
    write_fraction: float = 0.5,
    precondition: float = 1.0,
    seed: int = 42,
    costs: Optional[SoftwareCosts] = None,
    capture_timeseries: bool = False,
) -> JobResult:
    """Deprecated: use :class:`repro.api.Testbed` + :class:`JobConfig`.

    One synchronous (pvsync2 / SPDK-plugin) measurement; the historical
    convention — one seed drives device, stack, and pattern alike — is
    preserved through the facade.
    """
    warnings.warn(
        "run_sync_job is deprecated; build a repro.api.Testbed and call "
        "run_job(JobConfig(...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import JobConfig, Testbed

    device_kind = DeviceKind(device_kind)
    testbed = Testbed(
        device=device_kind.value,
        stack=StackKind(stack).value,
        completion=CompletionMethod(completion).value,
        precondition=precondition,
        costs=costs,
        device_seed=seed,
        stack_seed=seed,
    )
    return testbed.run_job(
        JobConfig(
            rw=rw,
            engine="psync",
            block_size=block_size,
            io_count=io_count,
            write_fraction=write_fraction,
            seed=seed,
            capture_timeseries=capture_timeseries,
            name=f"{device_kind.value}-{rw}-{block_size}",
        )
    )


def run_async_job(
    device_kind: DeviceKind,
    rw: str,
    *,
    block_size: int = 4096,
    iodepth: int = 1,
    io_count: int = 2000,
    write_fraction: float = 0.5,
    precondition: float = 1.0,
    seed: int = 42,
    capture_timeseries: bool = False,
    config: Optional[SsdConfig] = None,
    want_device: bool = False,
) -> Union[JobResult, Tuple[JobResult, SsdDevice]]:
    """Deprecated: use :class:`repro.api.Testbed` + :class:`JobConfig`.

    One asynchronous (libaio, interrupt-completed) measurement.
    Returns the :class:`JobResult`; with ``want_device=True`` returns
    ``(result, device)`` for callers that also read device-side state.
    """
    warnings.warn(
        "run_async_job is deprecated; build a repro.api.Testbed and call "
        "run_job(JobConfig(engine='libaio', ...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import JobConfig, Testbed

    device_kind = DeviceKind(device_kind)
    testbed = Testbed(
        device=device_kind.value,
        precondition=precondition,
        config=config,
        device_seed=seed,
        stack_seed=11,
    )
    job = JobConfig(
        rw=rw,
        engine="libaio",
        block_size=block_size,
        iodepth=iodepth,
        io_count=io_count,
        write_fraction=write_fraction,
        seed=seed,
        capture_timeseries=capture_timeseries,
        name=f"{device_kind.value}-{rw}-qd{iodepth}",
    )
    if want_device:
        return testbed.run_job(job, want_device=True)
    return testbed.run_job(job)
