"""Build-and-run helpers: one call per measurement.

Every figure function composes these.  Each measurement gets a *fresh*
simulator and device (preconditioned unless told otherwise), so runs are
independent and deterministic for a given seed.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple, Union

from repro.host.costs import DEFAULT_COSTS, SoftwareCosts
from repro.kstack.completion import CompletionMethod
from repro.kstack.stack import KernelStack
from repro.sim.engine import Simulator
from repro.spdk.stack import SpdkStack
from repro.ssd.config import SsdConfig
from repro.ssd.device import SsdDevice
from repro.ssd.presets import nvme_ssd_config, ull_ssd_config
from repro.workloads.job import FioJob, IoEngineKind
from repro.workloads.runner import JobResult, run_job


class DeviceKind(enum.Enum):
    """Which of the paper's two SSDs to instantiate."""

    ULL = "ull"
    NVME = "nvme"


class StackKind(enum.Enum):
    """Which host I/O path drives the device."""

    KERNEL = "kernel"
    SPDK = "spdk"


def device_config(kind: DeviceKind, **overrides) -> SsdConfig:
    """The preset config for ``kind`` (keyword overrides pass through)."""
    if kind is DeviceKind.ULL:
        return ull_ssd_config(**overrides)
    return nvme_ssd_config(**overrides)


def build_device(
    sim: Simulator,
    kind: DeviceKind,
    *,
    precondition: float = 1.0,
    seed: int = 42,
    config: Optional[SsdConfig] = None,
) -> SsdDevice:
    """A fresh device, optionally preconditioned (whole-drive fill)."""
    device = SsdDevice(sim, config or device_config(kind), seed=seed)
    if precondition > 0:
        device.precondition(precondition)
    return device


def build_stack(
    sim: Simulator,
    device: SsdDevice,
    *,
    stack: StackKind = StackKind.KERNEL,
    completion: CompletionMethod = CompletionMethod.INTERRUPT,
    costs: Optional[SoftwareCosts] = None,
    seed: int = 11,
):
    """The host path: kernel (with a completion method) or SPDK."""
    if stack is StackKind.SPDK:
        return SpdkStack(sim, device, costs=costs or DEFAULT_COSTS)
    return KernelStack(
        sim, device, completion=completion, costs=costs or DEFAULT_COSTS, seed=seed
    )


def run_sync_job(
    device_kind: DeviceKind,
    rw: str,
    *,
    block_size: int = 4096,
    io_count: int = 2000,
    stack: StackKind = StackKind.KERNEL,
    completion: CompletionMethod = CompletionMethod.INTERRUPT,
    write_fraction: float = 0.5,
    precondition: float = 1.0,
    seed: int = 42,
    costs: Optional[SoftwareCosts] = None,
    capture_timeseries: bool = False,
) -> JobResult:
    """One synchronous (pvsync2 / SPDK-plugin) measurement."""
    sim = Simulator()
    device = build_device(sim, device_kind, precondition=precondition, seed=seed)
    host = build_stack(sim, device, stack=stack, completion=completion,
                       costs=costs, seed=seed)
    engine = IoEngineKind.SPDK if stack is StackKind.SPDK else IoEngineKind.PSYNC
    job = FioJob(
        name=f"{device_kind.value}-{rw}-{block_size}",
        rw=rw,
        block_size=block_size,
        engine=engine,
        io_count=io_count,
        write_fraction=write_fraction,
        seed=seed,
        capture_timeseries=capture_timeseries,
    )
    return run_job(sim, host, job)


def run_async_job(
    device_kind: DeviceKind,
    rw: str,
    *,
    block_size: int = 4096,
    iodepth: int = 1,
    io_count: int = 2000,
    write_fraction: float = 0.5,
    precondition: float = 1.0,
    seed: int = 42,
    capture_timeseries: bool = False,
    config: Optional[SsdConfig] = None,
    want_device: bool = False,
) -> Union[JobResult, Tuple[JobResult, SsdDevice]]:
    """One asynchronous (libaio, interrupt-completed) measurement.

    Returns the :class:`JobResult`; with ``want_device=True`` returns
    ``(result, device)`` for the few callers that also read device-side
    state (power series, GC events).  The default drops the simulator
    and device as soon as the run finishes, so sweeps over many points
    do not keep every device's full state alive.
    """
    sim = Simulator()
    device = build_device(
        sim, device_kind, precondition=precondition, seed=seed, config=config
    )
    host = build_stack(sim, device)
    job = FioJob(
        name=f"{device_kind.value}-{rw}-qd{iodepth}",
        rw=rw,
        block_size=block_size,
        engine=IoEngineKind.LIBAIO,
        iodepth=iodepth,
        io_count=io_count,
        write_fraction=write_fraction,
        seed=seed,
        capture_timeseries=capture_timeseries,
    )
    result = run_job(sim, host, job)
    if want_device:
        return result, device
    return result
