"""Shared display vocabulary for the figure modules.

The paper's figures all speak the same axis language: the four fio
access patterns with their plot labels, and block sizes named in KB.
Keeping these here (rather than in one figure module) lets every
figure module import them without reaching into a sibling.
"""

from __future__ import annotations

#: fio ``rw=`` values the paper sweeps, in presentation order.
PATTERNS = ("read", "randread", "write", "randwrite")

#: Plot labels for each pattern (paper figure legends).
PATTERN_LABELS = {
    "read": "SeqRd",
    "randread": "RndRd",
    "write": "SeqWr",
    "randwrite": "RndWr",
}

#: Block-size axis labels.
KB = {
    4096: "4KB", 8192: "8KB", 16384: "16KB", 32768: "32KB",
    65536: "64KB", 131072: "128KB", 262144: "256KB",
    524288: "512KB", 1048576: "1MB",
}

#: Nanoseconds per microsecond (y-axis conversions).
US = 1_000.0
