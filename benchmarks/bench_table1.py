"""Table I: 3D flash characteristics."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures import table1  # noqa: E402


def test_table1(benchmark):
    result = emit(benchmark.pedantic(table1, rounds=1, iterations=1))
    tR = result.get("tR (us)")
    assert tR.value_at("Z-NAND") == 3.0
    assert tR.value_at("BiCS") == 45.0
    assert tR.value_at("V-NAND") == 60.0
    tprog = result.get("tPROG (us)")
    assert tprog.value_at("Z-NAND") == 100.0
    # Z-NAND reads 15-20x faster, programs ~7x faster (Section II-A1).
    assert 15 <= tR.value_at("V-NAND") / tR.value_at("Z-NAND") <= 20
    assert 6 <= tprog.value_at("V-NAND") / tprog.value_at("Z-NAND") <= 7.5
