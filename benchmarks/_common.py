"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure, saves the rendered
rows under ``benchmarks/results/<figure_id>.txt`` plus a
machine-readable ``<figure_id>.json`` (so shape/perf trajectories can
be diffed across PRs), prints them (visible with ``pytest -s``), and
asserts the figure's headline shape.

The sweep engine the figures run on is configurable via environment
variables: ``REPRO_JOBS`` fans measurements out across worker
processes, ``REPRO_CACHE_DIR`` persists them on disk across benchmark
runs.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.core import sweep
from repro.core.metrics import FigureResult
from repro.core.report import render_figure

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

if os.environ.get("REPRO_JOBS") or os.environ.get("REPRO_CACHE_DIR"):
    sweep.configure(
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )


def emit(result: FigureResult) -> FigureResult:
    """Persist and print a figure reproduction; returns it unchanged."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = render_figure(result)
    (RESULTS_DIR / f"{result.figure_id}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{result.figure_id}.json").write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    print()
    print(text)
    return result


def reduction(figure: FigureResult, better: str, worse: str, x) -> float:
    """Fractional latency reduction of ``better`` over ``worse`` at x."""
    return 1.0 - figure.find(*better.split()).value_at(x) / figure.find(
        *worse.split()
    ).value_at(x)
