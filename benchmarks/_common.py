"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure, saves the rendered
rows under ``benchmarks/results/<figure_id>.txt``, prints them (visible
with ``pytest -s``), and asserts the figure's headline shape.
"""

from __future__ import annotations

import pathlib

from repro.core.metrics import FigureResult
from repro.core.report import render_figure

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(result: FigureResult) -> FigureResult:
    """Persist and print a figure reproduction; returns it unchanged."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = render_figure(result)
    (RESULTS_DIR / f"{result.figure_id}.txt").write_text(text + "\n")
    print()
    print(text)
    return result


def reduction(figure: FigureResult, better: str, worse: str, x) -> float:
    """Fractional latency reduction of ``better`` over ``worse`` at x."""
    return 1.0 - figure.find(*better.split()).value_at(x) / figure.find(
        *worse.split()
    ).value_at(x)
