"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure, saves the rendered
rows under ``benchmarks/results/<figure_id>.txt`` plus a
machine-readable ``<figure_id>.json`` (so shape/perf trajectories can
be diffed across PRs), prints them (visible with ``pytest -s``), and
asserts the figure's headline shape.

The sweep engine the figures run on is configurable via environment
variables: ``REPRO_JOBS`` fans measurements out across worker
processes, ``REPRO_CACHE_DIR`` persists them on disk across benchmark
runs.
"""

from __future__ import annotations

import atexit
import json
import os
import pathlib

from repro.core import sweep
from repro.core.metrics import FigureResult
from repro.core.report import render_figure
from repro.perf import PerfSession, bench_filename, write_bench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

if os.environ.get("REPRO_JOBS") or os.environ.get("REPRO_CACHE_DIR"):
    sweep.configure(
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )

# Self-profiling: every window between emit() calls is booked to the
# figure just emitted, and the aggregate lands in a top-level
# BENCH_<date>.json when the benchmark process exits — the perf
# trajectory rides along with the per-figure result files.
_PERF = PerfSession()
_PERF_MARK = _PERF.mark()


@atexit.register
def _write_bench_aggregate() -> None:
    if not _PERF.records:
        return
    path = write_bench(_PERF.to_doc(source="benchmarks"),
                       REPO_ROOT / bench_filename())
    print(f"\nwrote benchmark timings to {path}")


def emit(result: FigureResult) -> FigureResult:
    """Persist and print a figure reproduction; returns it unchanged."""
    global _PERF_MARK
    _PERF_MARK = _PERF.lap(result.figure_id, _PERF_MARK)
    RESULTS_DIR.mkdir(exist_ok=True)
    text = render_figure(result)
    (RESULTS_DIR / f"{result.figure_id}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{result.figure_id}.json").write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    print()
    print(text)
    return result


def reduction(figure: FigureResult, better: str, worse: str, x) -> float:
    """Fractional latency reduction of ``better`` over ``worse`` at x."""
    return 1.0 - figure.find(*better.split()).value_at(x) / figure.find(
        *worse.split()
    ).value_at(x)
