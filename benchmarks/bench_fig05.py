"""Figure 5: normalized bandwidth vs. queue depth."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_device import fig05a, fig05b  # noqa: E402


def test_fig05a_ull(benchmark):
    result = emit(
        benchmark.pedantic(
            fig05a, kwargs=dict(io_count=2500), rounds=1, iterations=1
        )
    )
    # Paper: 8 queue entries saturate sequential access; 16 worst case.
    assert result.get("SeqRd").value_at(8) > 90
    assert result.get("RndRd").value_at(16) > 90
    assert result.get("SeqWr").value_at(16) > 80  # paper: writes 87-90%


def test_fig05b_nvme(benchmark):
    result = emit(
        benchmark.pedantic(
            fig05b, kwargs=dict(io_count=2500), rounds=1, iterations=1
        )
    )
    rnd_rd = result.get("RndRd")
    # Paper: NVMe needs >=128 entries to approach its peak on random
    # reads — still climbing where the ULL SSD saturated at QD 8.
    assert rnd_rd.value_at(4) < 45
    assert rnd_rd.value_at(256) > 70
    assert rnd_rd.value_at(256) > rnd_rd.value_at(64)
    # ...and 4KB writes plateau at the flush bandwidth (~40-55% of the
    # read max) no matter how deep the queue gets.
    rnd_wr = result.get("RndWr")
    assert 25 < rnd_wr.value_at(256) < 70
    assert abs(rnd_wr.value_at(256) - rnd_wr.value_at(16)) < 10
