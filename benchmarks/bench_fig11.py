"""Figure 11: polling's five-nines latency is worse than interrupts."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_completion import fig11  # noqa: E402


def test_fig11(benchmark):
    result = emit(
        benchmark.pedantic(
            fig11,
            kwargs=dict(io_count=30000, block_sizes=(4096, 16384)),
            rounds=1,
            iterations=1,
        )
    )
    # Paper: the long tail of polling is worse than interrupts by
    # ~12.5% (reads) / ~11.4% (writes) — spin locks held through long
    # device stalls defer pending kernel work.
    worse = 0
    cells = 0
    for panel in ("Reads", "Writes"):
        poll = result.find(panel, "Poll")
        interrupt = result.find(panel, "Interrupt")
        for x in poll.x:
            cells += 1
            if poll.value_at(x) > interrupt.value_at(x):
                worse += 1
    assert worse >= cells * 0.75, "poll tails must generally exceed interrupt"
    read_ratio = result.find("Reads", "Poll").value_at("4KB") / result.find(
        "Reads", "Interrupt"
    ).value_at("4KB")
    assert 1.0 < read_ratio < 1.5
