"""Figures 9 and 10: interrupt vs. poll latency on both devices."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_completion import fig09, fig10  # noqa: E402

IO_COUNT = 1500


def test_fig09_nvme(benchmark):
    result = emit(
        benchmark.pedantic(
            fig09, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: on the NVMe SSD polling buys <2.2% (reads) / <11.2% (writes).
    for rw in ("SeqRd", "RndRd"):
        poll = result.find(rw, "Poll").value_at("4KB")
        interrupt = result.find(rw, "Interrupt").value_at("4KB")
        assert poll <= interrupt
    rnd_saving = 1 - result.find("RndRd", "Poll").value_at("4KB") / result.find(
        "RndRd", "Interrupt"
    ).value_at("4KB")
    assert rnd_saving < 0.08  # negligible on a slow-flash device


def test_fig10_ull(benchmark):
    result = emit(
        benchmark.pedantic(
            fig10, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: poll 9.6/9.2 us vs interrupt 11.8/11.2 us at 4KB —
    # a 13-17% reduction that shrinks as the block size grows.
    for rw in ("SeqRd", "SeqWr", "RndWr"):
        poll = result.find(rw, "Poll")
        interrupt = result.find(rw, "Interrupt")
        saving_4k = 1 - poll.value_at("4KB") / interrupt.value_at("4KB")
        saving_32k = 1 - poll.value_at("32KB") / interrupt.value_at("32KB")
        assert 0.08 < saving_4k < 0.30
        assert saving_32k < saving_4k
    # Absolute calibration: ULL 4KB reads around the paper's numbers.
    assert 9 < result.find("SeqRd", "Poll").value_at("4KB") < 14
    assert 11 < result.find("SeqRd", "Interrupt").value_at("4KB") < 16
