"""Figures 14 and 15: where polling spends cycles and memory traffic."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_completion import fig14a, fig14b, fig15  # noqa: E402

IO_COUNT = 1200


def test_fig14a_module_breakdown(benchmark):
    result = emit(
        benchmark.pedantic(
            fig14a, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: the NVMe driver itself is only ~17.5% of kernel cycles.
    for value in result.get("NVMe Driver").y:
        assert 8 < value < 30


def test_fig14b_function_breakdown(benchmark):
    result = emit(
        benchmark.pedantic(
            fig14b, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: blk_mq_poll ~67% and nvme_poll ~17% of kernel cycles (84%
    # combined).
    for x in result.get("blk_mq_poll").x:
        blk = result.get("blk_mq_poll").value_at(x)
        nvme = result.get("nvme_poll").value_at(x)
        assert 50 < blk < 80
        assert 8 < nvme < 28
        assert blk + nvme > 70


def test_fig15_memory_instructions(benchmark):
    result = emit(
        benchmark.pedantic(
            fig15, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: polling executes ~137% more loads (2.37x) and ~78% more
    # stores (1.78x) than the interrupt path.
    read_loads = result.get("Reads Load").value_at("4KB")
    read_stores = result.get("Reads Store").value_at("4KB")
    assert 1.8 < read_loads < 3.5
    assert 1.3 < read_stores < 2.6
    assert read_loads > read_stores  # loads grow faster (CQ checks)
