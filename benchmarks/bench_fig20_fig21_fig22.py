"""Figures 20-22: SPDK's CPU and memory-instruction footprint."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_spdk import fig20, fig21, fig22a, fig22b  # noqa: E402

IO_COUNT = 1000


def test_fig20_cpu(benchmark):
    result = emit(
        benchmark.pedantic(
            fig20, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: SPDK consumes the entire core from user space; the
    # conventional path uses ~10% user + ~15% kernel.
    for rw in ("SeqRd", "RndRd", "SeqWr", "RndWr"):
        spdk_user = result.get(f"{rw} SPDK user").value_at("4KB")
        spdk_kernel = result.get(f"{rw} SPDK kernel").value_at("4KB")
        assert spdk_user > 95
        assert spdk_kernel < 1
        int_user = result.get(f"{rw} Kernel Interrupt user").value_at("4KB")
        int_kernel = result.get(f"{rw} Kernel Interrupt kernel").value_at("4KB")
        assert int_user + int_kernel < 60


def test_fig21_memory_instructions(benchmark):
    result = emit(
        benchmark.pedantic(
            fig21, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: SPDK issues ~23x the loads and ~16.2x the stores of the
    # conventional interrupt path, growing with wait time (random reads
    # poll longer than sequential ones on the ULL SSD).
    seq_loads = result.get("SeqRd Load").value_at("4KB")
    seq_stores = result.get("SeqRd Store").value_at("4KB")
    assert 12 < seq_loads < 40
    assert 6 < seq_stores < 30
    assert result.get("RndRd Load").value_at("4KB") > seq_loads


def test_fig22a_poll_breakdown(benchmark):
    result = emit(
        benchmark.pedantic(
            fig22a, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: kernel polling's two functions take ~39% of load/stores;
    # our path model attributes less base traffic outside the poll loop,
    # so the share runs higher (see EXPERIMENTS.md) — the shape claim is
    # that the two poll functions dominate and blk_mq_poll > nvme_poll.
    for x in result.get("blk_mq_poll").x:
        blk = result.get("blk_mq_poll").value_at(x)
        nvme = result.get("nvme_poll").value_at(x)
        assert 30 < blk + nvme < 90
        assert blk > nvme


def test_fig22b_spdk_breakdown(benchmark):
    result = emit(
        benchmark.pedantic(
            fig22b, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper (loads): process_completions ~37%, pcie variant ~22%,
    # check_enabled ~20%, others the rest.
    outer = result.get("spdk_nvme_qpair_process_completions")
    inner = result.get("nvme_pcie_qpair_process_completions")
    check = result.get("nvme_qpair_check_enabled")
    for x in outer.x:
        if x.endswith("LD"):
            assert 25 < outer.value_at(x) < 50
            assert 12 < inner.value_at(x) < 32
            assert 10 < check.value_at(x) < 30
