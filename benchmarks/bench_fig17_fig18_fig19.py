"""Figures 17-19: SPDK vs. the kernel interrupt path."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit, reduction  # noqa: E402

from repro.core.figures_spdk import fig17, fig18, fig19  # noqa: E402

IO_COUNT = 1200


def test_fig17_nvme(benchmark):
    result = emit(
        benchmark.pedantic(
            fig17, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: on the NVMe SSD the difference is ~4.3% (reads) / ~11.1%
    # (writes) — "almost similar to each other and negligible".
    assert reduction(result, "RndRd SPDK", "RndRd Kernel", "4KB") < 0.08
    assert reduction(result, "SeqRd SPDK", "SeqRd Kernel", "4KB") < 0.15
    assert reduction(result, "SeqWr SPDK", "SeqWr Kernel", "4KB") < 0.35


def test_fig18_ull(benchmark):
    result = emit(
        benchmark.pedantic(
            fig18, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: 25.2% / 6.3% / 13.7% / 13.3% reductions for SeqRd / RndRd /
    # SeqWr / RndWr.  Our random reads keep more of the win (see
    # EXPERIMENTS.md); the ordering SeqRd > RndRd holds.
    seq_rd = reduction(result, "SeqRd SPDK", "SeqRd Kernel", "4KB")
    rnd_rd = reduction(result, "RndRd SPDK", "RndRd Kernel", "4KB")
    assert 0.15 < seq_rd < 0.40
    assert rnd_rd < seq_rd
    assert reduction(result, "SeqWr SPDK", "SeqWr Kernel", "4KB") > 0.10


def test_fig19_big_blocks(benchmark):
    result = emit(
        benchmark.pedantic(
            fig19, kwargs=dict(io_count=250), rounds=1, iterations=1
        )
    )
    # Paper: with >=64KB requests the SPDK and kernel curves overlap.
    for rw in ("SeqRd", "RndRd", "SeqWr", "RndWr"):
        saving_1m = reduction(result, f"{rw} SPDK", f"{rw} Kernel", "1MB")
        assert saving_1m < 0.06, f"{rw}: SPDK advantage must vanish at 1MB"
    # And the shrink is monotone-ish from 64KB to 1MB.
    saving_64k = reduction(result, "SeqRd SPDK", "SeqRd Kernel", "64KB")
    saving_1m = reduction(result, "SeqRd SPDK", "SeqRd Kernel", "1MB")
    assert saving_1m < saving_64k
