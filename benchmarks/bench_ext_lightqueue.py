"""Extension bench: the Section IV-C lightweight-queue prototype."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.extensions import lightqueue_depth_limit, lightqueue_study  # noqa: E402


def test_lightqueue_latency(benchmark):
    result = emit(
        benchmark.pedantic(
            lightqueue_study, kwargs=dict(io_count=1200), rounds=1, iterations=1
        )
    )
    rich_int = result.get("NVMe rings, interrupt")
    light_int = result.get("Light queue, interrupt")
    light_poll = result.get("Light queue, poll")
    # The light queue must beat the rich rings on both patterns...
    for rw in ("randread", "randwrite"):
        assert light_int.value_at(rw) < rich_int.value_at(rw)
    # ...by a visible protocol margin (paper: rich queue is "overkill"):
    # ~0.8 us of ring/doorbell machinery off a ~16 us I/O.
    assert result.extras["read_saving_frac"] > 0.035
    # Combining the light protocol with polling stacks the savings.
    assert light_poll.value_at("randread") < light_int.value_at("randread")


def test_lightqueue_depth_is_enough(benchmark):
    result = emit(
        benchmark.pedantic(
            lightqueue_depth_limit, kwargs=dict(io_count=2000),
            rounds=1, iterations=1,
        )
    )
    rich = result.get("NVMe rings")
    light = result.get("Light queue")
    # 32 slots lose no bandwidth on a device that saturates by QD 8-16.
    assert light.value_at(32) > 0.9 * rich.value_at(32)
    assert light.value_at(8) > 0.8 * light.value_at(32)
