"""Extension bench: latency anatomy — the paper's argument in one table."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

import pytest  # noqa: E402

from repro.core.extensions import latency_anatomy  # noqa: E402


def test_latency_anatomy(benchmark):
    result = emit(
        benchmark.pedantic(
            latency_anatomy, kwargs=dict(io_count=1000), rounds=1, iterations=1
        )
    )
    interrupt = result.get("Kernel interrupt")
    poll = result.get("Kernel poll")
    spdk = result.get("SPDK")
    # The device stage is stack-invariant: all three see the same flash.
    devices = [s.value_at("device") for s in (interrupt, poll, spdk)]
    assert max(devices) == pytest.approx(min(devices), rel=0.05)
    # Polling's entire win is the completion side (no MSI/ISR/wake-up)...
    assert poll.value_at("complete") < 0.5 * interrupt.value_at("complete")
    assert poll.value_at("submit") == pytest.approx(
        interrupt.value_at("submit"), rel=0.01
    )
    # ...while SPDK also strips the submission side (no syscall/blk-mq).
    assert spdk.value_at("submit") < 0.6 * poll.value_at("submit")
    assert spdk.value_at("complete") < poll.value_at("complete")
    # And the device dominates everything — the reason SPDK is only
    # worth it once the device itself is ultra-low latency.
    assert interrupt.value_at("device") > 2 * (
        interrupt.value_at("submit") + interrupt.value_at("complete")
    )
