"""Figure 7: power consumption and the onset of garbage collection."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_device import fig07a, fig07b  # noqa: E402


def test_fig07a_power(benchmark):
    result = emit(
        benchmark.pedantic(
            fig07a, kwargs=dict(io_count=1200), rounds=1, iterations=1
        )
    )
    ull = result.get("ULL SSD")
    nvme = result.get("NVME SSD")
    # Paper: idle ~3.8 W on both; reads similar (~4.1 W); ULL consumes
    # ~30% less than NVMe for async writes (SLC-like programs).
    assert abs(ull.value_at("Idle") - 3.8) < 0.15
    assert abs(nvme.value_at("Idle") - 3.8) < 0.15
    assert nvme.value_at("Async SeqWr") > 1.15 * ull.value_at("Async SeqWr")
    # Sync (QD1) traffic barely lifts power above idle.
    assert ull.value_at("Sync RndRd") < ull.value_at("Async RndRd") + 0.5


def test_fig07b_gc_latency(benchmark):
    result = emit(
        benchmark.pedantic(fig07b, rounds=1, iterations=1)
    )
    ull = result.get("ULL SSD")
    nvme = result.get("NVME SSD")
    # Paper: NVMe write latency rises sharply once GC begins (~6.3x);
    # ULL stays sustained.
    assert max(nvme.y) > 3 * nvme.y[0]
    assert max(ull.y[1:-1]) < 2.5 * ull.y[0]
    assert result.extras["nvme_gc_events"] > 0
    assert result.extras["ull_gc_events"] > 0
