"""Figure 6: read/write interference (mixed random workload)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_device import fig06a, fig06b  # noqa: E402

IO_COUNT = 3500


def test_fig06a_average(benchmark):
    result = emit(
        benchmark.pedantic(
            fig06a, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    nvme = result.get("NVME SSD")
    ull = result.get("ULL SSD")
    # Paper: NVMe read latency degrades sharply once writes are mixed in;
    # ULL stays essentially flat (suspend/resume).
    assert nvme.value_at(20) > 1.5 * nvme.value_at(0)
    assert ull.value_at(80) < 1.6 * ull.value_at(0)
    assert nvme.value_at(80) > 5 * ull.value_at(80)


def test_fig06b_five_nines(benchmark):
    result = emit(
        benchmark.pedantic(
            fig06b, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: NVMe 99.999th reaches ~4.5 ms with 20% writes; ULL stays
    # under ~120 us.
    assert result.get("NVME SSD").value_at(20) > 800
    assert result.get("ULL SSD").value_at(20) < 450
