"""Ablation benches: how much of each figure each mechanism carries."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.ablations import (  # noqa: E402
    gc_policy_ablation,
    hybrid_sleep_ablation,
    map_cache_ablation,
    overprovision_ablation,
    suspend_resume_ablation,
    write_buffer_ablation,
)


def test_ablation_suspend_resume(benchmark):
    result = emit(
        benchmark.pedantic(
            suspend_resume_ablation, kwargs=dict(io_count=2500),
            rounds=1, iterations=1,
        )
    )
    on = result.get("suspend/resume ON")
    off = result.get("suspend/resume OFF")
    # Without suspend/resume, reads queue behind 100us programs: the
    # average degrades by >1.8x (tails are dominated by common-mode
    # device stalls, so the mean carries the signal).
    assert off.value_at("mean") > 1.8 * on.value_at("mean")
    assert off.value_at("p99.999") >= on.value_at("p99.999")


def test_ablation_map_cache(benchmark):
    result = emit(
        benchmark.pedantic(
            map_cache_ablation, kwargs=dict(io_count=1000),
            rounds=1, iterations=1,
        )
    )
    cached = result.get("map cache ON")
    uncached = result.get("map cache OFF (full map in SRAM)")
    # The cache only hurts random reads; with a full in-SRAM map the
    # random/sequential gap collapses.
    gap_on = cached.value_at("RndRd") - cached.value_at("SeqRd")
    gap_off = uncached.value_at("RndRd") - uncached.value_at("SeqRd")
    assert gap_on > 2.0  # paper: 15.9 vs 12.6 us
    assert gap_off < gap_on / 2


def test_ablation_write_buffer(benchmark):
    result = emit(
        benchmark.pedantic(
            write_buffer_ablation, kwargs=dict(io_count=2500),
            rounds=1, iterations=1,
        )
    )
    means = result.get("mean")
    # A tiny buffer exposes flash programs; a big one restores the
    # buffered fast path.
    assert means.value_at("64u") > 1.5 * means.value_at("8192u")


def test_ablation_overprovision(benchmark):
    result = emit(
        benchmark.pedantic(
            overprovision_ablation, kwargs=dict(io_count=9000),
            rounds=1, iterations=1,
        )
    )
    waf = result.get("write amplification")
    # More spare blocks, cheaper GC.
    assert waf.value_at("8%") > waf.value_at("28%")
    latency = result.get("write latency")
    assert latency.value_at("8%") >= latency.value_at("28%")


def test_ablation_gc_policy(benchmark):
    result = emit(
        benchmark.pedantic(
            gc_policy_ablation, kwargs=dict(io_count=30000),
            rounds=1, iterations=1,
        )
    )
    waf = result.get("write amplification")
    erases = result.get("erases")
    # Both policies must sustain the storm; with stream separation doing
    # the hot/cold segregation their WAFs converge.
    assert erases.value_at("greedy") > 100
    assert erases.value_at("cost-benefit") > 100
    ratio = waf.value_at("cost-benefit") / waf.value_at("greedy")
    assert 0.8 < ratio < 1.2


def test_ablation_hybrid_sleep(benchmark):
    result = emit(
        benchmark.pedantic(
            hybrid_sleep_ablation, kwargs=dict(io_count=1500),
            rounds=1, iterations=1,
        )
    )
    cpu = result.get("CPU utilization")
    latency = result.get("latency")
    # Sleeping longer saves CPU...
    assert cpu.value_at("0.75") < cpu.value_at("0.25")
    # ...but oversleeping costs latency (the paper's inaccuracy point).
    assert latency.value_at("0.75") > latency.value_at("0.25")
