"""Figure 23: SPDK NBD vs. kernel NBD in a server-client system."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit, reduction  # noqa: E402

from repro.core.figures_server import fig23  # noqa: E402


def test_fig23(benchmark):
    result = emit(
        benchmark.pedantic(
            fig23, kwargs=dict(io_count=600), rounds=1, iterations=1
        )
    )
    # Paper: SPDK NBD cuts read latency ~39% (seq) / ~38% (rnd), but
    # writes only ~3.7% / ~4.6% — the client file system's journaling
    # and metadata cannot be bypassed.
    seq_rd = reduction(result, "SeqRd SPDK", "SeqRd Kernel", "4KB")
    rnd_rd = reduction(result, "RndRd SPDK", "RndRd Kernel", "4KB")
    seq_wr = reduction(result, "SeqWr SPDK", "SeqWr Kernel", "4KB")
    rnd_wr = reduction(result, "RndWr SPDK", "RndWr Kernel", "4KB")
    assert 0.25 < seq_rd < 0.50
    assert 0.25 < rnd_rd < 0.50
    assert seq_wr < 0.15
    assert rnd_wr < 0.15
    assert seq_rd > 2.5 * seq_wr
    # The relative saving shrinks as transfers dominate (64KB files).
    assert reduction(result, "SeqRd SPDK", "SeqRd Kernel", "64KB") < seq_rd
