"""Fault-injection figures: resilience cost under deterministic faults."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_faults import fault_nbdflap, fault_readtail, fault_retry  # noqa: E402


def test_fault_readtail(benchmark):
    result = emit(
        benchmark.pedantic(
            fault_readtail, kwargs=dict(io_count=600), rounds=1, iterations=1
        )
    )
    for completion in ("interrupt", "poll"):
        p99 = result.find(completion, "p99")
        # Tail latency grows monotonically with the NAND failure rate...
        assert list(p99.y) == sorted(p99.y)
        assert p99.y[-1] > 1.5 * p99.y[0]
        # ...while the mean moves far less than the tail.
        mean = result.find(completion, "mean")
        assert mean.y[-1] / mean.y[0] < p99.y[-1] / p99.y[0]
    # Polling still wins at every injected failure rate: device-side ECC
    # recovery shifts both completion methods alike.
    interrupt = result.find("interrupt", "mean")
    poll = result.find("poll", "mean")
    assert all(p < i for p, i in zip(poll.y, interrupt.y))


def test_fault_retry(benchmark):
    result = emit(
        benchmark.pedantic(
            fault_retry, kwargs=dict(io_count=600), rounds=1, iterations=1
        )
    )
    timeout_p99 = result.find("nvme-timeout", "p99")
    requeue_p99 = result.find("blkmq-requeue", "p99")
    # Zero-fault points coincide: same baseline measurement, both series.
    assert timeout_p99.y[0] == requeue_p99.y[0]
    # A lost completion pays the ~2 ms command timer, dwarfing the
    # requeue path's 100 us-based exponential backoff.
    assert timeout_p99.y[-1] > 5 * requeue_p99.y[-1]
    assert timeout_p99.y[-1] > 1_000  # us — the timeout timer dominates
    # Requeues still inflate the tail measurably over the clean baseline.
    assert requeue_p99.y[-1] > 1.5 * requeue_p99.y[0]


def test_fault_nbdflap(benchmark):
    result = emit(
        benchmark.pedantic(
            fault_nbdflap, kwargs=dict(io_count=400), rounds=1, iterations=1
        )
    )
    kernel = result.find("Kernel", "NBD")
    spdk = result.find("SPDK", "NBD")
    # Throughput decays as the link flaps more often (x = flaps/sec,
    # ascending; index 0 is the healthy link).
    assert list(kernel.y) == sorted(kernel.y, reverse=True)
    assert kernel.y[-1] < 0.9 * kernel.y[0]
    # On a healthy link SPDK wins; a flapping link erases most of the
    # server-software advantage because the outage dominates.
    healthy_gap = spdk.y[0] / kernel.y[0]
    flappy_gap = spdk.y[-1] / kernel.y[-1]
    assert healthy_gap > 1.0
    assert flappy_gap < healthy_gap
