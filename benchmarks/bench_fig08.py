"""Figure 8: power + latency time series during garbage collection."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

import numpy as np  # noqa: E402

from repro.core.figures_device import fig08a, fig08b  # noqa: E402


def _split_at_first_gc(result):
    """(pre-GC, post-GC) means of each series, split at first_gc_ms."""
    first_gc_ms = result.extras["first_gc_ms"]
    split = {}
    for series in result.series:
        xs = np.asarray(series.x, dtype=float)
        ys = np.asarray(series.y, dtype=float)
        pre = ys[xs < first_gc_ms]
        post = ys[xs >= first_gc_ms]
        split[series.label] = (float(pre.mean()), float(post.mean()))
    return split


def test_fig08a_nvme(benchmark):
    result = emit(benchmark.pedantic(fig08a, rounds=1, iterations=1))
    assert result.extras["gc_events"] > 0
    split = _split_at_first_gc(result)
    pre_power, post_power = split["Power"]
    pre_latency, post_latency = split["Latency"]
    # Paper: NVMe power *decreases* once GC monopolizes a few dies, and
    # write latency rises sharply (up to ~3 ms windows).
    assert post_power < pre_power - 0.3
    assert post_latency > 2 * pre_latency


def test_fig08b_ull(benchmark):
    result = emit(benchmark.pedantic(fig08b, rounds=1, iterations=1))
    assert result.extras["gc_events"] > 0
    split = _split_at_first_gc(result)
    pre_power, post_power = split["Power"]
    pre_latency, post_latency = split["Latency"]
    # Paper: ULL GC runs *in parallel with* host writes: power rises
    # (~12% in the paper) while latency stays flat.
    assert post_power > pre_power * 1.05
    assert post_latency < 2 * pre_latency
    # GC keeps up: write amplification stays moderate.
    assert 1.0 < result.extras["write_amplification"] < 6.0
