"""Figures 12 and 13: CPU utilization of the completion methods."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_completion import fig12, fig13  # noqa: E402

IO_COUNT = 1000


def test_fig12_hybrid_cpu(benchmark):
    result = emit(
        benchmark.pedantic(
            fig12, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: hybrid polling still burns 56-58% of the core.
    for series in result.series:
        for value in series.y:
            assert 30 < value < 80


def test_fig13_interrupt_vs_poll_cpu(benchmark):
    result = emit(
        benchmark.pedantic(
            fig13, kwargs=dict(io_count=IO_COUNT), rounds=1, iterations=1
        )
    )
    # Paper: polling's kernel-mode cycles dominate the whole execution
    # (96.4%), while interrupts leave the core mostly idle.
    for rw in ("SeqRd", "RndRd", "SeqWr", "RndWr"):
        poll_kernel = result.find(rw, "Poll", "kernel").value_at("4KB")
        int_kernel = result.find(rw, "Interrupt", "kernel").value_at("4KB")
        assert poll_kernel > 80
        assert int_kernel < 45
        assert poll_kernel > 2.5 * int_kernel
        # User-mode cycles are similar in absolute terms (small share).
        poll_user = result.find(rw, "Poll", "user").value_at("4KB")
        assert poll_user < 20
