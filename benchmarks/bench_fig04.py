"""Figure 4: latency vs. queue depth, ULL vs. NVMe (libaio, 4 KB)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_device import fig04a, fig04b  # noqa: E402

# Must exceed the NVMe write buffer (2048 units) so write points reach
# steady state rather than pure DRAM absorption.
IO_COUNT = 6000
DEPTHS = (1, 2, 4, 8, 16, 32)


def test_fig04a(benchmark):
    result = emit(
        benchmark.pedantic(
            fig04a, kwargs=dict(io_count=IO_COUNT, depths=DEPTHS),
            rounds=1, iterations=1,
        )
    )
    ull_rnd = result.find("ULL", "RndRd")
    nvme_rnd = result.find("NVME", "RndRd")
    # Paper: 15.9 us vs 82.9 us at low depth (~5.2x).
    assert 3.5 < nvme_rnd.value_at(1) / ull_rnd.value_at(1) < 7.5
    # Paper: NVMe random reads reach ~159 us at QD32; ULL stays sustainable.
    assert nvme_rnd.value_at(32) > 100
    assert ull_rnd.value_at(32) < 70
    # NVMe buffered writes start near the ULL's but blow up with depth.
    nvme_wr = result.find("NVME", "RndWr")
    assert nvme_wr.value_at(32) > 2.5 * nvme_wr.value_at(1)


def test_fig04b(benchmark):
    result = emit(
        benchmark.pedantic(
            fig04b, kwargs=dict(io_count=IO_COUNT, depths=DEPTHS),
            rounds=1, iterations=1,
        )
    )
    # Paper: NVMe five-nines write latency is ~108x its average —
    # millisecond scale; ULL tails stay in the hundreds of microseconds.
    nvme_wr_tail = result.find("NVME", "RndWr").value_at(16)
    ull_wr_tail = result.find("ULL", "RndWr").value_at(16)
    assert nvme_wr_tail > 3 * ull_wr_tail
    assert result.find("ULL", "RndRd").value_at(16) < 600  # "hundreds of us"
