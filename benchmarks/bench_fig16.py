"""Figure 16: latency reduction of polling vs. hybrid polling."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import emit  # noqa: E402

from repro.core.figures_completion import fig16  # noqa: E402


def test_fig16(benchmark):
    result = emit(
        benchmark.pedantic(
            fig16, kwargs=dict(io_count=1500), rounds=1, iterations=1
        )
    )
    # Paper: hybrid reduces latency by at most ~8%; pure polling far
    # more; hybrid trails polling by ~5% (sleep misprediction).
    for rw in ("SeqRd", "RndRd", "SeqWr", "RndWr"):
        poll = result.get(f"{rw} Polling").value_at("4KB")
        hybrid = result.get(f"{rw} Hybrid Polling").value_at("4KB")
        assert poll > hybrid, f"{rw}: hybrid must trail pure polling"
        assert hybrid > -4.0, f"{rw}: hybrid should not be slower than interrupts"
        assert 8 < poll < 30
