"""Tests for the declarative sweep engine (repro.core.sweep).

Covers the ISSUE-2 contract: parallel output identical to serial,
cold/warm persistent-cache round trips (the warm run executes zero
simulations), cache invalidation when the cost table changes, and the
step-aside behavior under an installed observability bundle.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.host.costs as costs_module
from repro.core import sweep
from repro.core.figures import run_figure
from repro.core.runners import sync_point
from repro.core.sweep import (
    ExperimentSpec,
    Measurement,
    Point,
    SweepCache,
    SweepEngine,
    canonical,
    make_point,
    point_cache_key,
)
from repro.obs.core import Observability


def _fresh_engine(**kwargs) -> SweepEngine:
    return SweepEngine(**kwargs)


def _spec(points) -> ExperimentSpec:
    return ExperimentSpec(name="test", points=tuple(points))


SMALL_GRID = lambda: [  # noqa: E731 - tiny factory, not worth a def
    sync_point("ull", rw, method=method, io_count=60)
    for rw in ("randread", "randwrite")
    for method in ("interrupt", "poll")
]


class TestCanonicalization:
    def test_scalars_pass_through(self):
        assert canonical(3) == 3
        assert canonical("x") == "x"
        assert canonical(None) is None

    def test_enums_become_values(self):
        from repro.core.experiment import DeviceKind

        assert canonical(DeviceKind.ULL) == "ull"

    def test_dicts_become_sorted_tuples(self):
        assert canonical({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_unhashable_rejected(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_duplicate_point_keys_rejected(self):
        point = make_point("k", "job", device="ull")
        with pytest.raises(ValueError):
            ExperimentSpec(name="dup", points=(point, point))


class TestCacheKeys:
    def test_same_params_same_key(self):
        a = sync_point("ull", "randread", io_count=50)
        b = sync_point("ull", "randread", io_count=50, key="other")
        assert point_cache_key(a) == point_cache_key(b)

    def test_params_change_key(self):
        a = sync_point("ull", "randread", io_count=50)
        b = sync_point("ull", "randread", io_count=51)
        assert point_cache_key(a) != point_cache_key(b)

    def test_device_config_in_key(self):
        plain = make_point("a", "job", device="ull", rw="randread")
        tweaked = make_point(
            "a", "job", device="ull", rw="randread",
            config_overrides=(("map_cache_segments", 0),),
        )
        assert point_cache_key(plain) != point_cache_key(tweaked)

    def test_cost_table_in_key(self, monkeypatch):
        point = sync_point("ull", "randread", io_count=50)
        before = point_cache_key(point)
        patched = dataclasses.replace(
            costs_module.DEFAULT_COSTS,
            user_io_prep=dataclasses.replace(
                costs_module.DEFAULT_COSTS.user_io_prep,
                ns=costs_module.DEFAULT_COSTS.user_io_prep.ns + 100,
            ),
        )
        monkeypatch.setattr(costs_module, "DEFAULT_COSTS", patched)
        assert point_cache_key(point) != before


class TestParallelEqualsSerial:
    def test_engine_results_identical(self):
        points = SMALL_GRID()
        serial = _fresh_engine(jobs=1).run(_spec(points))
        parallel = _fresh_engine(jobs=4).run(_spec(points))
        assert list(serial) == list(parallel)  # same key order
        for key in serial:
            assert serial[key].result.latency == parallel[key].result.latency
            assert serial[key].result.bytes_done == parallel[key].result.bytes_done

    def test_representative_figure_identical(self):
        engine = sweep.default_engine()
        engine.clear_memo()
        engine.jobs = 1
        serial = run_figure("fig04a", io_count=80, depths=(1, 4))
        engine.clear_memo()
        engine.jobs = 4
        parallel = run_figure("fig04a", io_count=80, depths=(1, 4))
        assert serial == parallel


class TestPersistentCache:
    def test_cold_then_warm(self, tmp_path):
        points = SMALL_GRID()
        cache = SweepCache(tmp_path)

        cold = _fresh_engine(cache=cache)
        first = cold.run(_spec(points))
        assert cold.stats.executed == len(points)
        assert cold.stats.disk_hits == 0

        warm = _fresh_engine(cache=cache)  # fresh memo: must hit disk
        second = warm.run(_spec(points))
        assert warm.stats.executed == 0, "warm run must execute no simulations"
        assert warm.stats.disk_hits == len(points)
        for key in first:
            assert first[key].result.latency == second[key].result.latency

    def test_memo_preferred_over_disk(self, tmp_path):
        points = SMALL_GRID()
        engine = _fresh_engine(cache=SweepCache(tmp_path))
        engine.run(_spec(points))
        engine.run(_spec(points))
        assert engine.stats.memo_hits == len(points)
        assert engine.stats.disk_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        point = sync_point("ull", "randread", io_count=40)
        cache = SweepCache(tmp_path)
        engine = _fresh_engine(cache=cache)
        engine.run(_spec([point]))
        path = cache._path(point_cache_key(point))
        path.write_bytes(b"not a pickle")
        fresh = _fresh_engine(cache=cache)
        fresh.run(_spec([point]))
        assert fresh.stats.executed == 1

    def test_cost_change_invalidates(self, tmp_path, monkeypatch):
        point = sync_point("ull", "randread", io_count=40)
        cache = SweepCache(tmp_path)
        engine = _fresh_engine(cache=cache)
        engine.run(_spec([point]))

        patched = dataclasses.replace(
            costs_module.DEFAULT_COSTS,
            user_io_prep=dataclasses.replace(
                costs_module.DEFAULT_COSTS.user_io_prep,
                ns=costs_module.DEFAULT_COSTS.user_io_prep.ns + 100,
            ),
        )
        monkeypatch.setattr(costs_module, "DEFAULT_COSTS", patched)
        fresh = _fresh_engine(cache=cache)
        fresh.run(_spec([point]))
        assert fresh.stats.executed == 1, "changed cost table must re-execute"
        assert fresh.stats.disk_hits == 0


class TestTracedRuns:
    def test_traced_run_bypasses_caches(self, tmp_path):
        point = sync_point("ull", "randread", io_count=40)
        cache = SweepCache(tmp_path)
        engine = _fresh_engine(cache=cache)
        engine.run(_spec([point]))  # populates memo + disk

        with Observability() as obs:
            engine.run(_spec([point]))
        assert engine.stats.traced == 1
        assert engine.stats.executed == 2, "traced point must run live"
        assert len(obs.tracer.finished_ios) > 0

        # And a traced result must not have been written back.
        untraced = _fresh_engine(cache=cache)
        untraced.run(_spec([point]))
        assert untraced.stats.disk_hits == 1

    def test_parallel_traced_merges_worker_bundles(self):
        points = [
            sync_point("ull", rw, io_count=40) for rw in ("randread", "randwrite")
        ]
        with Observability() as serial_obs:
            _fresh_engine(jobs=1).run(_spec(points))
        with Observability() as parallel_obs:
            _fresh_engine(jobs=2).run(_spec(points))
        assert len(parallel_obs.tracer.finished_ios) == len(
            serial_obs.tracer.finished_ios
        )
        serial_ids = [t.io_id for t in serial_obs.tracer.finished_ios]
        parallel_ids = [t.io_id for t in parallel_obs.tracer.finished_ios]
        assert sorted(parallel_ids) == sorted(serial_ids)
        assert {t.pid for t in parallel_obs.tracer.finished_ios} == {
            t.pid for t in serial_obs.tracer.finished_ios
        }
        serial_counters = {
            m.name: m.value
            for m in serial_obs.registry
            if m.kind == "counter"
        }
        parallel_counters = {
            m.name: m.value
            for m in parallel_obs.registry
            if m.kind == "counter"
        }
        assert parallel_counters == serial_counters


class TestMeasurement:
    def test_value_lookup(self):
        m = Measurement(values=(("a", 1.0),))
        assert m.value("a") == 1.0
        with pytest.raises(KeyError):
            m.value("missing")

    def test_point_kwargs_round_trip(self):
        point = make_point("k", "job", device="ull", io_count=10)
        assert point.kwargs() == {"device": "ull", "io_count": 10}
        assert isinstance(point, Point)


class TestSharedMemo:
    def test_figures_share_measurements(self):
        engine = sweep.default_engine()
        engine.clear_memo()
        engine.jobs = 1
        before = engine.stats.snapshot()
        run_figure("fig04a", io_count=60, depths=(1, 2))
        mid = engine.stats.snapshot()
        run_figure("fig04b", io_count=60, depths=(1, 2))
        after = engine.stats.snapshot()
        assert mid["executed"] - before["executed"] == 16
        assert after["executed"] == mid["executed"], "fig04b reuses fig04a's runs"
        assert after["memo_hits"] - mid["memo_hits"] == 16
