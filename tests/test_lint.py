"""simlint: per-rule fixtures, suppression semantics, output, exit codes.

Every rule gets at least one firing fixture and one silent fixture, so a
rule that stops matching (or starts over-matching) fails here before it
ships.  Fixture code lives in string literals — the linter never sees
this file's own AST tripping the rules it tests.
"""

from __future__ import annotations

import json

import pytest

from repro.lint.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    run_check,
    run_lint,
)
from repro.lint.engine import (
    find_suppressions,
    is_sim_layer_path,
    lint_paths,
    lint_source,
    validate_select,
)
from repro.lint.flow.rules import FLOW_RULES
from repro.lint.rules import ENGINE_CODES, RULES, all_codes, rules_table


def codes_of(result):
    return [d.code for d in result.diagnostics]


def lint_sim(source, **kwargs):
    """Lint a fixture as if it lived in a simulation layer."""
    return lint_source(source, "src/repro/ssd/fixture.py", **kwargs)


def lint_plain(source, **kwargs):
    """Lint a fixture as if it lived outside the sim layers."""
    return lint_source(source, "src/repro/core/fixture.py", **kwargs)


# ----------------------------------------------------------------------
# Registry / engine basics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_rule_pack_is_complete(self):
        assert sorted(RULES) == [f"SIM00{i}" for i in range(1, 7)] + ["SIM009"]
        assert sorted(ENGINE_CODES) == ["SIM000", "SIM007", "SIM008"]
        assert sorted(FLOW_RULES) == [f"SIM01{i}" for i in range(5)]
        assert all_codes() == [f"SIM00{i}" for i in range(10)] + [
            f"SIM01{i}" for i in range(5)
        ]

    def test_rules_table_covers_every_code(self):
        table = dict(rules_table())
        assert sorted(table) == all_codes()
        assert all(table.values())

    def test_validate_select_normalizes_and_rejects(self):
        assert validate_select(["sim001", " SIM003 "]) == ["SIM001", "SIM003"]
        with pytest.raises(ValueError, match="SIM999"):
            validate_select(["SIM999"])

    def test_syntax_error_is_sim000(self):
        result = lint_plain("def broken(:\n")
        assert codes_of(result) == ["SIM000"]
        assert result.files_scanned == 1

    def test_sim_layer_path_is_directory_based(self):
        assert is_sim_layer_path("src/repro/ssd/controller.py")
        assert is_sim_layer_path("src/repro/kstack/driver.py")
        # A *file* named like a layer is not a layer.
        assert not is_sim_layer_path("src/repro/core/ssd.py")
        assert not is_sim_layer_path("tests/test_lint.py")

    def test_diagnostics_sorted_by_location(self):
        source = (
            "import time\n"
            "def late():\n"
            "    return time.time()\n"
            "def early(x=[]):\n"
            "    return x\n"
        )
        result = lint_sim(source)
        keys = [d.sort_key for d in result.diagnostics]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# SIM001 — wall-clock reads inside simulation layers
# ----------------------------------------------------------------------
class TestWallClock:
    def test_fires_in_sim_layer(self):
        result = lint_sim("import time\nnow = time.time()\n")
        assert codes_of(result) == ["SIM001"]
        assert "Simulator.now" in result.diagnostics[0].message

    def test_fires_through_alias(self):
        result = lint_sim("import time as t\nnow = t.perf_counter()\n")
        assert codes_of(result) == ["SIM001"]

    def test_fires_for_from_import(self):
        result = lint_sim("from time import sleep\nsleep(1)\n")
        assert codes_of(result) == ["SIM001"]

    def test_silent_outside_sim_layers(self):
        result = lint_plain("import time\nnow = time.time()\n")
        assert codes_of(result) == []

    def test_silent_for_unrelated_attribute(self):
        # A local object that happens to have a .time() method.
        result = lint_sim("clock = make()\nnow = clock.time()\n")
        assert codes_of(result) == []


# ----------------------------------------------------------------------
# SIM009 — monotonic clocks outside repro.perf / repro.obs.prof
# ----------------------------------------------------------------------
class TestAdHocTiming:
    def test_fires_outside_timing_homes(self):
        result = lint_plain("import time\nt0 = time.perf_counter()\n")
        assert codes_of(result) == ["SIM009"]
        assert "repro.perf" in result.diagnostics[0].message

    def test_fires_for_monotonic_through_alias(self):
        result = lint_plain("import time as t\nt0 = t.monotonic_ns()\n")
        assert codes_of(result) == ["SIM009"]

    def test_fires_for_from_import(self):
        result = lint_plain(
            "from time import perf_counter_ns\nt0 = perf_counter_ns()\n"
        )
        assert codes_of(result) == ["SIM009"]

    def test_silent_in_perf_package(self):
        source = "import time\nt0 = time.perf_counter()\n"
        result = lint_source(source, "src/repro/perf/harness.py")
        assert codes_of(result) == []

    def test_silent_in_profiler_module(self):
        source = "import time\nt0 = time.perf_counter_ns()\n"
        result = lint_source(source, "src/repro/obs/prof.py")
        assert codes_of(result) == []

    def test_sim_layers_stay_sim001(self):
        # Inside a sim layer the stricter SIM001 owns the finding; SIM009
        # must not double-report.
        result = lint_sim("import time\nt0 = time.perf_counter()\n")
        assert codes_of(result) == ["SIM001"]

    def test_wall_clock_time_is_not_sim009(self):
        # time.time() outside sim layers is legitimate (CLI timestamps).
        result = lint_plain("import time\nt0 = time.time()\n")
        assert codes_of(result) == []

    def test_suppressible_with_reason(self):
        source = (
            "import time\n"
            "t0 = time.perf_counter()  "
            "# simlint: disable=SIM009 -- fixture exercises the rule\n"
        )
        result = lint_plain(source)
        assert codes_of(result) == []


# ----------------------------------------------------------------------
# SIM002 — global-state RNG
# ----------------------------------------------------------------------
class TestGlobalRng:
    def test_fires_for_random_module(self):
        result = lint_plain("import random\nx = random.random()\n")
        assert codes_of(result) == ["SIM002"]

    def test_fires_for_numpy_global_seed(self):
        result = lint_plain("import numpy as np\nnp.random.seed(0)\n")
        assert codes_of(result) == ["SIM002"]

    def test_silent_for_seeded_instances(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "rng = random.Random(7)\n"
            "gen = np.random.default_rng(7)\n"
            "x = rng.random()\n"
            "y = gen.random()\n"
        )
        assert codes_of(lint_plain(source)) == []

    def test_silent_for_shadowing_local(self):
        # No import of `random`: the name is a local, not the module.
        result = lint_plain("random = make_rng()\nx = random.random()\n")
        assert codes_of(result) == []


# ----------------------------------------------------------------------
# SIM003 — iteration order taken from a set
# ----------------------------------------------------------------------
class TestUnorderedIteration:
    def test_fires_for_for_loop_over_set_literal(self):
        result = lint_plain("for x in {1, 2, 3}:\n    print(x)\n")
        assert codes_of(result) == ["SIM003"]

    def test_fires_for_list_of_inferred_set_name(self):
        result = lint_plain("s = set()\nitems = list(s)\n")
        assert codes_of(result) == ["SIM003"]

    def test_fires_for_comprehension_over_self_attr_set(self):
        source = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.pending = set()\n"
            "    def order(self):\n"
            "        return [x for x in self.pending]\n"
        )
        assert codes_of(lint_plain(source)) == ["SIM003"]

    def test_fires_for_join_over_set(self):
        result = lint_plain('s = {"a", "b"}\nout = ",".join(s)\n')
        assert codes_of(result) == ["SIM003"]

    def test_silent_when_sorted(self):
        result = lint_plain("s = {3, 1}\nitems = list(sorted(s))\n")
        assert codes_of(result) == []

    def test_silent_for_order_insensitive_consumer(self):
        result = lint_plain("s = {3, 1}\nok = any(x > 2 for x in s)\n")
        assert codes_of(result) == []

    def test_silent_for_list_iteration(self):
        result = lint_plain("for x in [1, 2, 3]:\n    print(x)\n")
        assert codes_of(result) == []


# ----------------------------------------------------------------------
# SIM004 — float accumulation over unordered containers
# ----------------------------------------------------------------------
class TestFloatAccumulation:
    def test_fires_for_sum_over_set(self):
        result = lint_plain("s = {0.1, 0.2}\ntotal = sum(s)\n")
        assert codes_of(result) == ["SIM004"]

    def test_fires_for_generator_over_set(self):
        result = lint_plain("s = {0.1, 0.2}\ntotal = sum(x * 2 for x in s)\n")
        # Both hazards are real: the order is materialized (SIM003) and
        # the floats are accumulated in that order (SIM004).
        assert sorted(codes_of(result)) == ["SIM003", "SIM004"]

    def test_fires_for_fsum(self):
        result = lint_plain("import math\ns = {0.1}\nt = math.fsum(s)\n")
        assert codes_of(result) == ["SIM004"]

    def test_silent_for_sum_over_sorted_set(self):
        result = lint_plain("s = {0.1, 0.2}\ntotal = sum(sorted(s))\n")
        assert codes_of(result) == []

    def test_silent_for_sum_over_list(self):
        result = lint_plain("total = sum([0.1, 0.2])\n")
        assert codes_of(result) == []


# ----------------------------------------------------------------------
# SIM005 — mutable default arguments
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_fires_for_list_literal(self):
        result = lint_plain("def f(items=[]):\n    return items\n")
        assert codes_of(result) == ["SIM005"]

    def test_fires_for_dict_call_and_kwonly(self):
        result = lint_plain("def f(*, cache=dict()):\n    return cache\n")
        assert codes_of(result) == ["SIM005"]

    def test_fires_for_collections_factory(self):
        source = (
            "import collections\n"
            "def f(c=collections.Counter()):\n"
            "    return c\n"
        )
        assert codes_of(lint_plain(source)) == ["SIM005"]

    def test_silent_for_none_and_tuple(self):
        result = lint_plain("def f(a=None, b=(), c=0):\n    return a, b, c\n")
        assert codes_of(result) == []


# ----------------------------------------------------------------------
# SIM006 — bare except / swallowed exceptions
# ----------------------------------------------------------------------
class TestBareExcept:
    def test_fires_for_bare_except(self):
        source = "try:\n    go()\nexcept:\n    handle()\n"
        assert codes_of(lint_plain(source)) == ["SIM006"]

    def test_fires_for_swallowed_exception(self):
        source = "try:\n    go()\nexcept ValueError:\n    pass\n"
        assert codes_of(lint_plain(source)) == ["SIM006"]

    def test_silent_for_handled_exception(self):
        source = "try:\n    go()\nexcept ValueError:\n    recover()\n"
        assert codes_of(lint_plain(source)) == []


# ----------------------------------------------------------------------
# SIM010 — mixed time units
# ----------------------------------------------------------------------
class TestMixedTimeUnits:
    def test_fires_for_ns_plus_us(self):
        source = "def f(a_ns, b_us):\n    return a_ns + b_us\n"
        result = lint_sim(source)
        assert codes_of(result) == ["SIM010"]
        assert "us_to_ns" in result.diagnostics[0].message  # fix recipe

    def test_fires_interprocedurally_at_the_call_site(self):
        source = (
            "def wait(delay_us):\n"
            "    return delay_us\n"
            "def f(t_ns):\n"
            "    return wait(t_ns)\n"
        )
        result = lint_sim(source)
        assert [(d.code, d.line) for d in result.diagnostics] == [
            ("SIM010", 4)
        ]
        assert "'delay_us'" in result.diagnostics[0].message

    def test_fires_for_converter_misuse(self):
        source = (
            "from repro.units import us_to_ns\n"
            "def f(t_ns):\n"
            "    return us_to_ns(t_ns)\n"
        )
        assert codes_of(lint_sim(source)) == ["SIM010"]

    def test_silent_when_converted(self):
        source = (
            "from repro.units import us_to_ns\n"
            "def f(a_ns, b_us):\n"
            "    return a_ns + us_to_ns(b_us)\n"
        )
        assert codes_of(lint_sim(source)) == []

    def test_silent_for_literal_ladder_scaling(self):
        source = "def f(t_us, t_ns):\n    return t_us * 1_000 + t_ns\n"
        assert codes_of(lint_sim(source)) == []


# ----------------------------------------------------------------------
# SIM011 — cross-dimension arithmetic / comparison
# ----------------------------------------------------------------------
class TestCrossDimension:
    def test_fires_for_time_vs_size_comparison(self):
        source = "def f(t_ns, cap_bytes):\n    return t_ns < cap_bytes\n"
        assert codes_of(lint_sim(source)) == ["SIM011"]

    def test_fires_interprocedurally_via_return_summary(self):
        source = (
            "def payload(nbytes):\n"
            "    return nbytes\n"
            "def f(t_ns, nbytes):\n"
            "    return t_ns + payload(nbytes)\n"
        )
        result = lint_sim(source)
        assert [(d.code, d.line) for d in result.diagnostics] == [
            ("SIM011", 4)
        ]

    def test_silent_for_address_plus_size(self):
        # Pointer arithmetic and bounds checks are idiomatic.
        source = "def f(lpn, npages):\n    return lpn + npages\n"
        assert codes_of(lint_sim(source)) == []

    def test_silent_for_geometry_division(self):
        source = (
            "def f(nbytes, page_size):\n"
            "    pages = nbytes // page_size\n"
            "    return pages\n"
        )
        assert codes_of(lint_sim(source)) == []


# ----------------------------------------------------------------------
# SIM012 — LBA/PPN address-space confusion
# ----------------------------------------------------------------------
class TestAddressConfusion:
    def test_fires_for_physical_index_into_l2p(self):
        source = (
            "class F:\n"
            "    def read(self, ppa):\n"
            "        return self._l2p[ppa]\n"
        )
        result = lint_sim(source)
        assert codes_of(result) == ["SIM012"]
        assert "wrong side of the address mapping" in \
            result.diagnostics[0].message

    def test_fires_for_cross_space_assignment(self):
        source = "def f(ppa):\n    lpn = ppa\n    return lpn\n"
        assert codes_of(lint_sim(source)) == ["SIM012"]

    def test_fires_interprocedurally_for_wrong_space_argument(self):
        source = (
            "def lookup(lpn):\n"
            "    return lpn\n"
            "def f(ppa):\n"
            "    return lookup(ppa)\n"
        )
        result = lint_sim(source)
        assert [(d.code, d.line) for d in result.diagnostics] == [
            ("SIM012", 4)
        ]

    def test_silent_for_logical_index_into_l2p(self):
        source = (
            "class F:\n"
            "    def read(self, lpn):\n"
            "        return self._l2p[lpn]\n"
        )
        assert codes_of(lint_sim(source)) == []


# ----------------------------------------------------------------------
# SIM013 — unit-ambiguous public sim API parameters
# ----------------------------------------------------------------------
class TestAmbiguousApi:
    AMBIGUOUS = (
        "class Dev:\n"
        "    def submit(self, offset, nbytes):\n"
        "        return offset + nbytes\n"
    )

    def test_fires_for_bare_offset(self):
        result = lint_sim(self.AMBIGUOUS)
        assert codes_of(result) == ["SIM013"]
        assert "repro.units" in result.diagnostics[0].message

    def test_silent_with_units_annotation(self):
        source = (
            "from repro.units import Bytes\n"
            "class Dev:\n"
            "    def submit(self, offset: Bytes, nbytes):\n"
            "        return offset + nbytes\n"
        )
        assert codes_of(lint_sim(source)) == []

    def test_silent_for_private_methods(self):
        source = self.AMBIGUOUS.replace("def submit", "def _submit")
        assert codes_of(lint_sim(source)) == []

    def test_silent_outside_sim_layers(self):
        assert codes_of(lint_plain(self.AMBIGUOUS)) == []

    def test_fires_across_modules_in_a_project_run(self, tmp_path):
        # Whole-project run: the ambiguous API lives in one sim-layer
        # module, its caller in another; only the definition is flagged.
        api = tmp_path / "src/pkg/ssd/dev.py"
        api.parent.mkdir(parents=True)
        api.write_text(self.AMBIGUOUS)
        (tmp_path / "src/pkg/ssd/user.py").write_text(
            "from pkg.ssd.dev import Dev\n"
            "def go(dev, nbytes):\n"
            "    return dev.submit(0, nbytes)\n"
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [(d.code, d.path) for d in result.diagnostics] == [
            ("SIM013", "src/pkg/ssd/dev.py")
        ]


# ----------------------------------------------------------------------
# SIM014 — stale volatile state across a yield
# ----------------------------------------------------------------------
class TestStaleAcrossYield:
    def test_fires_for_depth_read_before_yield(self):
        source = (
            "class P:\n"
            "    def run(self):\n"
            "        depth = self.queue_depth\n"
            "        yield self.ev\n"
            "        self.consume(depth)\n"
        )
        result = lint_sim(source)
        assert [(d.code, d.line) for d in result.diagnostics] == [
            ("SIM014", 5)
        ]

    def test_fires_for_len_of_queue(self):
        source = (
            "class P:\n"
            "    def run(self):\n"
            "        depth = len(self.queue)\n"
            "        yield self.ev\n"
            "        self.consume(depth)\n"
        )
        assert codes_of(lint_sim(source)) == ["SIM014"]

    def test_fires_when_only_one_path_yields(self):
        # Dataflow merge is stale-wins: a single yielding path suffices.
        source = (
            "class P:\n"
            "    def run(self):\n"
            "        if self.fast:\n"
            "            depth = self.queue_depth\n"
            "            yield self.ev\n"
            "        else:\n"
            "            depth = 0\n"
            "        self.consume(depth)\n"
        )
        result = lint_sim(source)
        assert [(d.code, d.line) for d in result.diagnostics] == [
            ("SIM014", 8)
        ]

    def test_silent_when_reread_after_yield(self):
        source = (
            "class P:\n"
            "    def run(self):\n"
            "        yield self.ev\n"
            "        depth = self.queue_depth\n"
            "        self.consume(depth)\n"
        )
        assert codes_of(lint_sim(source)) == []

    def test_silent_for_elapsed_time_idiom(self):
        # `now` snapshots are the POINT of measuring across a yield.
        source = (
            "class P:\n"
            "    def run(self):\n"
            "        t0 = self.sim.now\n"
            "        yield self.ev\n"
            "        elapsed = self.sim.now - t0\n"
            "        self.log(elapsed)\n"
        )
        assert codes_of(lint_sim(source)) == []

    def test_silent_outside_sim_layers(self):
        source = (
            "class P:\n"
            "    def run(self):\n"
            "        depth = self.queue_depth\n"
            "        yield self.ev\n"
            "        self.consume(depth)\n"
        )
        assert codes_of(lint_plain(source)) == []

    def test_fires_across_modules_in_a_project_run(self, tmp_path):
        # Whole-project run: the process snapshots the inflight count of
        # a device defined in a sibling module, then blocks on an event
        # that device hands out.
        dev = tmp_path / "src/pkg/ssd/dev.py"
        dev.parent.mkdir(parents=True)
        dev.write_text(
            "class Dev:\n"
            "    def __init__(self):\n"
            "        self.inflight = []\n"
            "    def drain_event(self):\n"
            "        return object()\n"
        )
        (tmp_path / "src/pkg/ssd/proc.py").write_text(
            "from pkg.ssd.dev import Dev\n"
            "class Poller:\n"
            "    def run(self):\n"
            "        backlog = len(self.dev.inflight)\n"
            "        yield self.dev.drain_event()\n"
            "        self.report(backlog)\n"
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [(d.code, d.path, d.line) for d in result.diagnostics] == [
            ("SIM014", "src/pkg/ssd/proc.py", 6)
        ]


# ----------------------------------------------------------------------
# Suppression semantics (incl. SIM007 / SIM008)
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_disable_absorbs(self):
        source = (
            "s = set()\n"
            "x = list(s)  # simlint: disable=SIM003 -- membership only\n"
        )
        result = lint_plain(source)
        assert codes_of(result) == []
        assert result.suppressed == 1

    def test_disable_next_line(self):
        source = (
            "import time\n"
            "# simlint: disable-next-line=SIM001 -- fixture needs wall time\n"
            "now = time.time()\n"
        )
        result = lint_sim(source)
        assert codes_of(result) == []
        assert result.suppressed == 1

    def test_disable_all(self):
        source = (
            "import time\n"
            "# simlint: disable-next-line=all -- generated code\n"
            "now = time.time()\n"
        )
        result = lint_sim(source)
        assert codes_of(result) == []

    def test_wrong_code_does_not_absorb(self):
        source = (
            "s = set()\n"
            "x = list(s)  # simlint: disable=SIM001 -- wrong code\n"
        )
        result = lint_plain(source)
        # The finding survives AND the suppression is flagged unused.
        assert sorted(codes_of(result)) == ["SIM003", "SIM008"]

    def test_missing_reason_is_sim007(self):
        source = (
            "s = set()\n"
            "x = list(s)  # simlint: disable=SIM003\n"
        )
        result = lint_plain(source)
        assert codes_of(result) == ["SIM007"]
        assert result.suppressed == 1  # it still absorbs

    def test_unused_suppression_is_sim008(self):
        source = "# simlint: disable=SIM003 -- nothing here\nx = 1\n"
        result = lint_plain(source)
        assert codes_of(result) == ["SIM008"]

    def test_find_suppressions_parses_codes_and_reason(self):
        source = (
            "x = 1  # simlint: disable=SIM001,SIM002 -- multi-code\n"
            "# simlint: disable-next-line=all\n"
            "y = 2\n"
        )
        first, second = find_suppressions(source)
        assert first.codes == frozenset({"SIM001", "SIM002"})
        assert first.reason == "multi-code"
        assert first.target_line == 1
        assert second.codes is None
        assert second.target_line == 3

    def test_disable_absorbs_flow_findings(self):
        # Flow diagnostics run through the same suppression machinery
        # as the syntactic rules.
        source = (
            "def f(a_ns, b_us):\n"
            "    return a_ns + b_us"
            "  # simlint: disable=SIM010 -- legacy mixed units\n"
        )
        result = lint_sim(source)
        assert codes_of(result) == []
        assert result.suppressed == 1

    def test_stale_flow_disable_is_sim008(self):
        source = (
            "def f(a_ns, b_ns):\n"
            "    return a_ns + b_ns"
            "  # simlint: disable=SIM010 -- nothing fires\n"
        )
        assert codes_of(lint_sim(source)) == ["SIM008"]

    def test_select_restricts_rules(self):
        source = "import time\nnow = time.time()\ndef f(x=[]):\n    return x\n"
        result = lint_sim(source, select=["SIM005"])
        assert codes_of(result) == ["SIM005"]


# ----------------------------------------------------------------------
# Path walking + JSON document
# ----------------------------------------------------------------------
class TestPathsAndJson:
    def test_lint_paths_walks_and_reports_relative(self, tmp_path):
        sim_dir = tmp_path / "ssd"
        sim_dir.mkdir()
        (sim_dir / "clocky.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "clean.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import time\n")
        result = lint_paths([tmp_path], root=tmp_path)
        assert result.files_scanned == 2
        assert codes_of(result) == ["SIM001"]
        assert result.diagnostics[0].path == "ssd/clocky.py"

    def test_lint_paths_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_json_document_schema(self):
        result = lint_sim("import time\nt = time.time()\n")
        doc = result.to_dict()
        assert doc["tool"] == "simlint"
        assert doc["version"] == 1
        assert doc["files_scanned"] == 1
        assert doc["suppressed"] == 0
        (diag,) = doc["diagnostics"]
        assert set(diag) == {"path", "line", "col", "code", "message"}
        assert diag["code"] == "SIM001"
        assert diag["line"] == 2
        json.dumps(doc)  # must be serializable as-is

    def test_format_is_editor_clickable(self):
        result = lint_sim("import time\nt = time.time()\n")
        line = result.diagnostics[0].format()
        assert line.startswith("src/repro/ssd/fixture.py:2:")
        assert "SIM001" in line


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert run_lint([str(tmp_path)]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    def test_exit_findings(self, tmp_path, capsys):
        target = tmp_path / "ssd"
        target.mkdir()
        (target / "bad.py").write_text("import time\nt = time.time()\n")
        assert run_lint([str(tmp_path)]) == EXIT_FINDINGS
        assert "SIM001" in capsys.readouterr().out

    def test_exit_usage_on_missing_path(self, tmp_path, capsys):
        assert run_lint([str(tmp_path / "missing")]) == EXIT_USAGE
        assert "lint:" in capsys.readouterr().err

    def test_exit_usage_on_bad_select(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = run_lint([str(tmp_path), "--select", "SIM999"])
        assert code == EXIT_USAGE
        assert "SIM999" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "ssd"
        target.mkdir()
        (target / "bad.py").write_text("import time\nt = time.time()\n")
        assert run_lint([str(tmp_path), "--format", "json"]) == EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "simlint"
        assert [d["code"] for d in doc["diagnostics"]] == ["SIM001"]

    def test_list_rules(self, capsys):
        assert run_lint(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in all_codes():
            assert code in out

    def test_check_aggregates_simlint(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert run_check([str(tmp_path)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "== simlint ==" in out
        assert "check: ok" in out

    def test_check_fails_on_findings(self, tmp_path, capsys):
        target = tmp_path / "ssd"
        target.mkdir()
        (target / "bad.py").write_text("import time\nt = time.time()\n")
        assert run_check([str(tmp_path)]) == EXIT_FINDINGS
        assert "check: FAIL" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The gate this PR ships under: the repo itself is clean.
# ----------------------------------------------------------------------
def test_repo_is_simlint_clean(repo_root):
    result = lint_paths(
        [repo_root / "src", repo_root / "tests"], root=repo_root
    )
    assert codes_of(result) == [], "\n".join(
        d.format() for d in result.diagnostics
    )
