"""Edge-case tests for the HTML report builders (repro.obs.html).

The report builders are pure functions of recorder content and must
render valid, self-contained HTML for every degenerate input: series
with no samples, single-sample series, blame sections with nothing
captured.  A report that divides by a sample count or a value range
breaks here first.
"""

from repro.obs import (
    BlameConfig,
    BlameRecorder,
    SloSpec,
    Telemetry,
    TimeSeries,
    blame_report_html,
    blame_section_html,
    telemetry_report_html,
    write_blame_html,
    write_telemetry_html,
)
from repro.obs.html import _chart_card


def _document_checks(html):
    assert html.startswith("<!DOCTYPE html>")
    assert html.count("<html") == html.count("</html>") == 1
    assert "NaN" not in html
    # Self-contained: no external fetches.
    assert "http://" not in html and "https://" not in html
    assert "<script src" not in html and "<link" not in html


class TestTelemetryEdgeCases:
    def test_series_with_no_samples_renders(self):
        telemetry = Telemetry()
        telemetry.new_sim()
        telemetry.series("q.depth", "level", "ios")  # created, never fed
        html = telemetry_report_html(telemetry)
        _document_checks(html)

    def test_single_sample_series_renders(self):
        telemetry = Telemetry()
        telemetry.new_sim()
        series = telemetry.series("q.depth", "rate", "ios")
        series.add(5_000, 1)
        html = telemetry_report_html(telemetry)
        _document_checks(html)
        assert "q.depth" in html

    def test_single_sample_chart_card_has_svg(self):
        series = TimeSeries("one.sample", "rate", "ios")
        series.add(5_000, 3)
        card = _chart_card(series)
        assert "<svg" in card
        assert "NaN" not in card

    def test_empty_chart_card_does_not_divide_by_zero(self):
        card = _chart_card(TimeSeries("empty", "level", "ios"))
        assert "NaN" not in card

    def test_constant_zero_series_renders(self):
        telemetry = Telemetry()
        telemetry.new_sim()
        series = telemetry.series("flat.zero", "level", "ios")
        series.record(0, 0.0)
        series.record(100_000, 0.0)
        html = telemetry_report_html(telemetry)
        _document_checks(html)

    def test_write_telemetry_html_empty(self, tmp_path):
        path = tmp_path / "report.html"
        write_telemetry_html(Telemetry(), str(path))
        text = path.read_text()
        assert "no telemetry series recorded" in text


class TestBlameSectionEdgeCases:
    def test_zero_outliers_renders_placeholder(self):
        section = blame_section_html(BlameRecorder())
        assert "no I/Os observed" in section
        assert "NaN" not in section

    def test_empty_report_is_valid_document(self, tmp_path):
        recorder = BlameRecorder()
        html = blame_report_html(recorder)
        _document_checks(html)
        path = tmp_path / "blame.html"
        write_blame_html(recorder, str(path))
        assert path.read_text() == html

    def test_slos_without_traffic_render(self):
        recorder = BlameRecorder(
            BlameConfig(slos=(SloSpec.parse("read:150us@0.999"),))
        )
        html = blame_report_html(recorder)
        _document_checks(html)
        assert "no I/Os observed" in html

    def test_report_with_one_outlier_renders(self):
        from repro.obs import WaitEdge

        recorder = BlameRecorder()
        recorder.new_sim()
        recorder.label_device("ull")

        class Stub:
            io_id = 0
            pid = 1
            op = "read"
            offset = 0
            nbytes = 4096
            start_ns = 0
            end_ns = 100
            _waits = [WaitEdge("ssd.die0", "gc", 0, 40)]

            @staticmethod
            def phases():
                return []

        recorder.observe(Stub())
        html = blame_report_html(recorder)
        _document_checks(html)
        assert "ssd.die0" in html and "gc" in html
