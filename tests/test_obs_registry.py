"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestGauge:
    def test_time_weighted_mean(self):
        gauge = Gauge("qd", unit="cmds")
        gauge.set(2, 0)
        gauge.set(4, 100)  # level 2 held for 100 ns
        gauge.set(0, 300)  # level 4 held for 200 ns
        # area = 2*100 + 4*200 = 1000 over 300 ns
        assert gauge.time_mean(300) == pytest.approx(1000 / 300)
        assert gauge.max_value == 4

    def test_add_tracks_level(self):
        gauge = Gauge("qd")
        gauge.add(1, 0)
        gauge.add(1, 10)
        gauge.add(-2, 20)
        assert gauge.value == 0
        assert gauge.max_value == 2

    def test_backwards_clock_is_safe(self):
        # A fresh simulator restarts the clock at zero; the gauge keeps
        # its level and simply accrues no area for the jump.
        gauge = Gauge("qd")
        gauge.set(3, 1000)
        gauge.set(5, 10)
        assert gauge.value == 5

    def test_mean_extends_to_now(self):
        gauge = Gauge("qd")
        gauge.set(2, 0)
        assert gauge.time_mean(50) == pytest.approx(2.0)


class TestHistogram:
    def test_stats(self):
        histogram = Histogram("lat", unit="us")
        for value in (1.0, 2.0, 4.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(3.75)
        assert histogram.min == 1.0 and histogram.max == 8.0

    def test_quantiles_land_in_covering_bucket(self):
        histogram = Histogram("lat")
        for _ in range(99):
            histogram.observe(10.0)
        histogram.observe(1000.0)
        p50 = histogram.quantile(0.50)
        assert 8.0 <= p50 <= 16.0  # 10.0 lives in the (8, 16] bucket
        p999 = histogram.quantile(0.999)
        assert p999 > 100.0

    def test_buckets_ascending(self):
        histogram = Histogram("lat")
        for value in (1.5, 3.0, 300.0):
            histogram.observe(value)
        bounds = [bound for bound, _count in histogram.buckets()]
        assert bounds == sorted(bounds)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("a.b", help="first")
        second = registry.counter("a.b")
        assert first is second
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(TypeError):
            registry.gauge("a.b")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", unit="B").inc(7)
        registry.gauge("g").set(3, 100)
        registry.histogram("h").observe(2.0)
        rows = {row["name"]: row for row in registry.snapshot(200)}
        assert rows["c"]["value"] == 7 and rows["c"]["unit"] == "B"
        assert rows["g"]["max"] == 3
        assert rows["h"]["count"] == 1 and rows["h"]["p50"] > 0

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        registry.counter("x")
        assert "x" in registry and "y" not in registry
        assert registry.get("x").kind == "counter"


class TestNullRegistry:
    def test_shared_noop_instruments(self):
        counter = NULL_REGISTRY.counter("anything")
        gauge = NULL_REGISTRY.gauge("else")
        assert counter is gauge  # one shared instance
        counter.inc()
        gauge.set(9, 1)
        gauge.observe(3.0)
        assert counter.value == 0
        assert NULL_REGISTRY.snapshot() == []
        assert len(NULL_REGISTRY) == 0
        assert not NULL_REGISTRY.enabled
