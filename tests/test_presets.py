"""Behavioral tests of the two device presets (paper Section III-B).

The presets are exercised through the registry (``"ull"``/``"nvme"``) —
the same configs the deprecated preset shims return (shim warning
behavior is covered in test_api.py).
"""

import pytest

from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.ssd.device import IoOp
from repro.ssd.registry import resolve_config


def ull_config():
    return resolve_config("ull")


def nvme_config():
    return resolve_config("nvme")


def fresh(config):
    sim = Simulator()
    device = SsdDevice(sim, config)
    device.precondition(1.0)
    return sim, device


def mean_device_latency(sim, device, op, offsets, nbytes=4096):
    total = 0
    for offset in offsets:
        request = device.submit(op, offset, nbytes)
        sim.run_until_event(request.done)
        total += request.device_latency_ns
    return total / len(offsets)


class TestUllPreset:
    def test_paper_parameters(self):
        config = ull_config()
        assert config.timing.read_ns == 3_000  # Table I
        assert config.suspend_resume and config.super_channel
        assert config.physical_dies_per_die == 2
        assert config.overprovision == pytest.approx(0.20)
        assert config.read_cache_units == 0  # Z-NAND needs no read cache

    def test_random_read_device_latency_near_12us(self):
        import numpy as np

        sim, device = fresh(ull_config())
        rng = np.random.default_rng(1)
        offsets = [int(rng.integers(0, device.logical_pages)) * 4096
                   for _ in range(200)]
        mean = mean_device_latency(sim, device, IoOp.READ, offsets)
        # Paper's 15.9us includes ~4us host software; device-side ~12us.
        assert 9_000 < mean < 14_000

    def test_sequential_reads_faster_than_random(self):
        """The map-segment cache: sequential lookups hit, random miss."""
        sim, device = fresh(ull_config())
        seq = mean_device_latency(
            sim, device, IoOp.READ, [i * 4096 for i in range(200)]
        )
        import numpy as np

        rng = np.random.default_rng(2)
        rand = mean_device_latency(
            sim, device, IoOp.READ,
            [int(rng.integers(0, device.logical_pages)) * 4096 for _ in range(200)],
        )
        assert rand > seq + 2_000  # paper: 15.9 vs 12.6 us

    def test_suspend_resume_fires_under_mixed_load(self):
        import numpy as np

        sim, device = fresh(ull_config())
        rng = np.random.default_rng(3)
        pages = device.logical_pages
        for index in range(600):
            offset = int(rng.integers(0, pages)) * 4096
            if index % 3 == 0:
                request = device.write(offset, 4096)
            else:
                request = device.read(offset, 4096)
            sim.run_until_event(request.done)  # pace like a QD1 host
        sim.run()
        assert sum(die.suspends for die in device.controller.dies) > 0


class TestNvmePreset:
    def test_paper_parameters(self):
        config = nvme_config()
        assert config.timing.read_ns == 70_000  # planar MLC tR
        assert not config.suspend_resume and not config.super_channel
        assert config.read_cache_units > 0 and config.prefetch_ahead > 0
        assert config.write_buffer_units > ull_config().write_buffer_units

    def test_random_read_exposes_raw_flash(self):
        import numpy as np

        sim, device = fresh(nvme_config())
        rng = np.random.default_rng(4)
        offsets = [int(rng.integers(0, device.logical_pages)) * 4096
                   for _ in range(150)]
        mean = mean_device_latency(sim, device, IoOp.READ, offsets)
        # Paper's 82.9us includes ~4us host software; device ~79us.
        assert 70_000 < mean < 90_000

    def test_prefetcher_accelerates_sequential_reads(self):
        sim, device = fresh(nvme_config())
        seq = mean_device_latency(
            sim, device, IoOp.READ, [i * 4096 for i in range(300)]
        )
        assert seq < 30_000  # cache hits, not 80us flash reads
        assert device.stats.cache_read_hits > 100

    def test_buffered_write_hides_millisecond_program(self):
        sim, device = fresh(nvme_config())
        mean = mean_device_latency(
            sim, device, IoOp.WRITE, [i * 4096 for i in range(100)]
        )
        assert mean < 15_000  # tPROG is 1.1ms; the buffer hides it

    def test_both_presets_share_idle_power(self):
        assert ull_config().power.idle_w == nvme_config().power.idle_w == 3.8

    def test_program_power_mlc_above_znand(self):
        # Per *pair*, Z-NAND programs still draw less than one MLC die.
        ull = ull_config()
        nvme = nvme_config()
        assert (
            ull.power.program_op_w * ull.physical_dies_per_die
            < nvme.power.program_op_w
        )
