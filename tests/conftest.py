"""Shared test fixtures.

The sweep engine is process-global state: the CLI configures its job
count and persistent cache directory in place.  Tests must never leak a
persistent cache (stale on-disk measurements would mask regressions) or
a parallel job count into each other, so every test runs against a
serial, disk-cache-free engine.  The in-process memo is deliberately
left alone — figure tests share measurements through it, exactly as a
single CLI invocation would.
"""

from pathlib import Path

import pytest

from repro.core import sweep


@pytest.fixture(scope="session")
def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _serial_uncached_sweep_engine(tmp_path, monkeypatch):
    # Tests invoking the CLI (which defaults the persistent cache on)
    # must not touch ~/.cache/repro: a stale entry written by another
    # checkout would mask regressions.
    monkeypatch.setattr(sweep, "DEFAULT_CACHE_DIR", tmp_path / "sweep-cache")
    engine = sweep.default_engine()
    jobs, cache = engine.jobs, engine.cache
    engine.jobs, engine.cache = 1, None
    yield engine
    engine.jobs, engine.cache = jobs, cache
